//! Tour of the synthetic PlanetLab testbed: the Table-1 roster, the
//! calibrated SC profiles, and the synthesized RTT matrix between the
//! broker and every measured peer.
//!
//! ```text
//! cargo run --release --example testbed_tour
//! ```

use planetlab::builder::{build, TestbedConfig};
use planetlab::rtt::RttModel;
use planetlab::sites::{simple_clients, BROKER};
use workloads::experiments::table1;

fn main() {
    println!("{}", table1::run());

    // Pairwise RTT matrix over the measured peers.
    let rtt = RttModel::default();
    let scs = simple_clients();
    println!("== Synthesized RTT matrix (ms) ==");
    print!("{:>8}", "");
    for j in 1..=scs.len() {
        print!("{:>8}", format!("SC{j}"));
    }
    println!();
    for (i, a) in scs.iter().enumerate() {
        print!("{:>8}", format!("SC{}", i + 1));
        for b in &scs {
            print!("{:>8.1}", rtt.rtt_ms(a, b));
        }
        println!();
    }
    print!("{:>8}", "broker");
    for b in &scs {
        print!("{:>8.1}", rtt.rtt_ms(&BROKER, b));
    }
    println!("\n");

    // Full-slice build: all 25 Table-1 hosts plus the broker.
    let full = build(&TestbedConfig::full_slice());
    println!(
        "full slice: {} hosts ({} SCs, {} other members, 1 broker)",
        full.len(),
        full.scs.len(),
        full.others.len()
    );
}
