//! Selection audit: *why* did each model pick its peer?
//!
//! Recreates the Fig 6 decision moment — warm history for all eight SCs,
//! a backlog on the historically-fastest peer — and prints every model's
//! score for every candidate, so the information asymmetry behind the
//! paper's ordering is visible number by number.
//!
//! ```text
//! cargo run --release --example selection_audit
//! ```

use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};
use overlay::selector::{CandidateView, InteractionHistory, Purpose, SelectionRequest};
use overlay::stats::StatsSnapshot;
use peer_selection::model::ScoringModel;
use peer_selection::prelude::*;
use planetlab::calibration::{sc_profiles, PAPER_FIG2_PETITION_SECS, SC_LABELS};
use workloads::spec::MB;

/// Builds the candidate set as the broker would see it at the Fig 6
/// decision moment: throughput/wake-up history from a warm-up, SC4
/// backlogged with 25 MB.
fn fig6_candidates() -> Vec<CandidateView> {
    let mut g = overlay::id::IdGenerator::new(1);
    sc_profiles()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut history = InteractionHistory::empty();
            // Warm-up observations ≈ the profile's ground truth.
            history.observe_throughput(p.down_bytes_per_sec() * 0.8, 1.0);
            history.observe_petition(PAPER_FIG2_PETITION_SECS[i], 1.0);
            if i == 3 {
                // SC4 carries the 25 MB background backlog.
                history.queued_bytes = 25 * MB;
            }
            let mut snapshot = StatsSnapshot::empty(p.cpu_gops);
            snapshot.msg_success_total = Some(100.0);
            snapshot.files_sent_total = Some(100.0);
            snapshot.pending_transfers = if i == 3 { 1.0 } else { 0.0 };
            CandidateView {
                peer: overlay::id::PeerId::generate(&mut g),
                node: NodeId(i as u32 + 1),
                name: SC_LABELS[i].into(),
                cpu_gops: p.cpu_gops,
                snapshot,
                history,
            }
        })
        .collect()
}

fn main() {
    let candidates = fig6_candidates();
    let req = SelectionRequest {
        now: SimTime::ZERO + SimDuration::from_secs(662),
        purpose: Purpose::FileTransfer { bytes: 10 * MB },
        candidates: &candidates,
    };

    let mut models: Vec<(&str, Box<dyn ScoringModel>)> = vec![
        ("economic", Box::new(EconomicModel::new())),
        (
            "same-priority",
            Box::new(DataEvaluatorModel::same_priority()),
        ),
        ("quick-peer", Box::new(UserPreferenceModel::quick_peer())),
    ];

    println!("deciding: 10 MB transfer; SC4 is historically fastest but backlogged\n");
    print!("{:<16}", "model \\ peer");
    for c in &candidates {
        print!("{:>9}", c.name);
    }
    println!("{:>10}", "pick");
    for (name, model) in &mut models {
        let scores = model.scores(&req);
        let pick = peer_selection::model::argmax_with_tiebreak(&req, &scores).unwrap();
        print!("{name:<16}");
        // Normalize for display so different score units compare visually.
        let mut display = scores.clone();
        peer_selection::model::min_max_normalize(&mut display);
        for s in &display {
            print!("{s:>9.3}");
        }
        println!("{:>10}", candidates[pick].name);
    }

    println!(
        "\neconomic sees SC4's backlog AND wake-up history → picks a prompt idle peer;\n\
         same-priority sees only the §2.2 statistics → cpu tie-break lands on SC5 (5.19 s wake);\n\
         quick-peer sees only history → returns to the backlogged SC4."
    );
}
