//! Reproduce every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release --example reproduce_paper                 # 5 reps (paper)
//! cargo run --release --example reproduce_paper -- --quick      # 2 reps (smoke)
//! cargo run --release --example reproduce_paper -- --extensions # + future-work studies
//! ```
//!
//! Output: one paper-vs-measured block per artifact, suitable for pasting
//! into EXPERIMENTS.md.

use workloads::experiments::{
    self, ablation, adaptation, extensions, fig5, fig6, fig7, table1, transfer_study,
};
use workloads::spec::ExperimentSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let with_extensions = std::env::args().any(|a| a == "--extensions");
    let spec = if quick {
        ExperimentSpec::quick()
    } else {
        ExperimentSpec::paper_defaults()
    };
    println!(
        "reproducing ICPPW'07 peer-selection study ({} repetitions per experiment)\n",
        spec.repetitions()
    );

    println!("{}", table1::run());

    // Figures 2–4 share one workload (the blind 50 MB study).
    let study = transfer_study::run(&spec);
    println!("{}", experiments::fig2::report(&study).render());
    println!("{}", experiments::fig3::report(&study).render());
    println!("{}", experiments::fig4::report(&study).render());

    println!("{}", fig5::run(&spec).render());
    match fig6::run(&spec) {
        Ok(report) => println!("{}", report.render()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    println!("{}", fig7::run(&spec).render());

    if with_extensions {
        println!("{}", extensions::scaling::run(&spec).render());
        println!("{}", extensions::request::run(&spec).render());
        println!("{}", extensions::profiles::run(&spec).render());
        println!("{}", adaptation::run(&spec).render());
        println!("{}", ablation::run(&spec).render());
        let churn = extensions::churn::run_experiment(1);
        println!("== Extension: churn ==");
        println!(
            "selected transfers: {}/{} completed; departed peer re-selected: {}\n",
            churn.completed, churn.started, churn.leaver_chosen_after_departure
        );
    }

    println!("done. see EXPERIMENTS.md for the shape criteria each artifact must satisfy.");
}
