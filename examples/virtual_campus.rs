//! The paper's motivating application: processing large files of a virtual
//! campus. A term's worth of lecture recordings must be transcoded; each
//! job ships its input file to a peer and runs there. We submit the batch
//! through each selection model and compare makespans.
//!
//! ```text
//! cargo run --release --example virtual_campus
//! ```

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use overlay::selector::{PeerSelector, RandomSelector};
use peer_selection::prelude::*;
use workloads::scenario::{run_scenario, ScenarioConfig, SelectorFactory};
use workloads::spec::MB;

const JOBS: usize = 12;
const INPUT: u64 = 20 * MB;
const WORK_GOPS: f64 = 120.0;

fn factory(model: &'static str) -> SelectorFactory {
    Box::new(move |seed| -> Box<dyn PeerSelector> {
        match model {
            "economic" => Box::new(Scored::new(EconomicModel::new())),
            "data evaluator" => Box::new(Scored::new(DataEvaluatorModel::same_priority())),
            "quick peer" => Box::new(Scored::new(UserPreferenceModel::quick_peer())),
            "ucb1 (extension)" => Box::new(Ucb1Selector::new(std::f64::consts::SQRT_2, 2e6)),
            _ => Box::new(RandomSelector::new(seed)),
        }
    })
}

fn campaign(model: &'static str, seed: u64) -> (f64, f64, usize) {
    let mut cfg = ScenarioConfig::measurement_setup().with_selector(factory(model));
    // A small warm-up so history-based models have data.
    cfg = cfg.at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 4 * MB,
            num_parts: 4,
            label: "warmup".into(),
        },
    );
    // The batch: one transcoding job every 30 s, peer chosen by the model.
    for j in 0..JOBS {
        cfg = cfg.at(
            SimDuration::from_secs(300 + 30 * j as u64),
            BrokerCommand::SubmitTask {
                target: TargetSpec::Selected,
                work_gops: WORK_GOPS,
                input_bytes: INPUT,
                input_parts: 20,
                label: format!("lecture-{j:02}"),
            },
        );
    }
    let result = run_scenario(&cfg, seed);
    let done: Vec<&overlay::records::TaskRecord> = result
        .log
        .tasks
        .iter()
        .filter(|t| t.success && t.input_bytes > 0)
        .collect();
    let makespan = done
        .iter()
        .filter_map(|t| t.result_at)
        .max()
        .map(|end| {
            end.duration_since(
                done.iter()
                    .map(|t| t.submitted_at)
                    .min()
                    .unwrap_or(netsim::time::SimTime::ZERO),
            )
            .as_secs_f64()
                / 60.0
        })
        .unwrap_or(f64::NAN);
    let mean_job: f64 =
        done.iter().filter_map(|t| t.total_secs()).sum::<f64>() / done.len().max(1) as f64 / 60.0;
    (makespan, mean_job, done.len())
}

fn main() {
    println!(
        "virtual campus batch: {JOBS} transcoding jobs, {} MB input each, {WORK_GOPS} gops\n",
        INPUT / MB
    );
    println!(
        "{:<20} {:>14} {:>16} {:>10}",
        "selection model", "makespan(min)", "mean job(min)", "completed"
    );
    for model in [
        "economic",
        "data evaluator",
        "quick peer",
        "ucb1 (extension)",
        "random",
    ] {
        let (makespan, mean_job, done) = campaign(model, 42);
        println!("{model:<20} {makespan:>14.1} {mean_job:>16.1} {done:>10}");
    }
    println!("\nthe broker learns each peer's speed; models differ in how they use it.");
}
