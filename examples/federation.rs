//! Broker federation: two governors, one network.
//!
//! The paper's platform has several brokers "acting as governors of the P2P
//! network". Here broker A (nozomi, Barcelona) governs SC1–SC4 and a second
//! broker governs SC5–SC8; the brokers gossip their rosters, so A's
//! selection model can place work on peers it has never seen join.
//!
//! ```text
//! cargo run --release --example federation
//! ```

use netsim::engine::Engine;
use netsim::time::{SimDuration, SimTime};
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, TargetSpec};
use overlay::client::{ClientConfig, SimpleClient};
use overlay::federation::FederationBuilder;
use overlay::message::OverlayMsg;
use overlay::records::RecordSink;
use peer_selection::prelude::*;
use planetlab::builder::{build, TestbedConfig};
use workloads::spec::MB;

fn main() {
    // Build the standard 9-node testbed, then repurpose SC8's host slot as
    // nothing special — the broker split is purely logical: SC1–4 join A
    // (the nozomi broker node), SC5–8 join B (we run the second broker on
    // SC8's well-connected host by registering a broker actor there is not
    // possible — each host runs one actor — so instead we use the full
    // slice and promote one spare member to broker B).
    // Promote the first spare slice member to governor duty, with a
    // broker-grade profile (fat link, prompt, lightly loaded) — a governor
    // measuring its peers through a thin access link would skew the
    // throughput history it gossips.
    let mut tb_cfg = TestbedConfig::slice_with_others(1);
    let broker_b_host = "planet1.cs.huji.ac.il";
    tb_cfg = tb_cfg.with_override(broker_b_host, planetlab::calibration::broker_profile());
    let tb = build(&tb_cfg);
    let broker_a = tb.broker;
    let broker_b = tb.others[0]; // the promoted governor

    let sink = RecordSink::new();
    let mut cfg_a = BrokerConfig::new(1)
        .with_selector(Box::new(Scored::new(EconomicModel::new())))
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "warmup".into(),
            },
        );
    for r in 0..6u64 {
        cfg_a = cfg_a.at(
            SimDuration::from_secs(200 + 60 * r),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: 6 * MB,
                num_parts: 6,
                label: format!("fed-{r}"),
            },
        );
    }
    // Mid-campaign, congest A's local favourite (SC4) with a long
    // background transfer: the economic model must look across the broker
    // boundary for the remaining rounds.
    for sc in [2u8, 4] {
        cfg_a = cfg_a.at(
            SimDuration::from_secs(300),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Node(tb.sc(sc)),
                size_bytes: 200 * MB,
                num_parts: 40,
                label: format!("background-sc{sc}"),
            },
        );
    }
    // Wire the two governors together through the typed builder: each
    // gossips its roster to the other every 30 s (forwarding stays off —
    // this example shows gossip-informed selection, not failover).
    let federation = FederationBuilder::new(vec![broker_a, broker_b])
        .gossip_interval(SimDuration::from_secs(30))
        .forward_hops(0)
        .build()
        .expect("two brokers and a positive gossip interval are valid");
    federation.configure(0, &mut cfg_a);
    cfg_a.stop_when_idle = false;

    let mut cfg_b = BrokerConfig::new(2).at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 4 * MB,
            num_parts: 4,
            label: "warmup-b".into(),
        },
    );
    federation.configure(1, &mut cfg_b);
    cfg_b.stop_when_idle = false;

    let mut engine: Engine<OverlayMsg> = Engine::new(tb.topology.clone(), Default::default(), 11);
    engine.register(broker_a, Box::new(Broker::new(cfg_a, sink.clone())));
    engine.register(broker_b, Box::new(Broker::new(cfg_b, sink.clone())));
    for (i, &sc) in tb.scs.iter().enumerate() {
        let broker = if i < 4 { broker_a } else { broker_b };
        engine.register(
            sc,
            Box::new(SimpleClient::new(ClientConfig::new(broker), 100 + i as u64)),
        );
    }

    engine.run_until(SimTime::from_secs_f64(800.0));
    let log = sink.drain();

    println!("broker A governs SC1–SC4; broker B governs SC5–SC8\n");
    println!("selected transfers placed by broker A (economic model):");
    println!(
        "{:<8} {:<28} {:>10} {:>12}",
        "round", "chosen peer", "domain", "transfer(s)"
    );
    for (sel, xfer) in log
        .selections
        .iter()
        .zip(log.transfers.iter().filter(|t| t.label.starts_with("fed-")))
    {
        let domain = if tb.scs[..4].contains(&sel.chosen) {
            "A-local"
        } else {
            "B-remote"
        };
        println!(
            "{:<8} {:<28} {:>10} {:>12.2}",
            xfer.label,
            sel.chosen_name,
            domain,
            xfer.total_secs().unwrap_or(f64::NAN)
        );
    }
    let remote = log
        .selections
        .iter()
        .filter(|s| !tb.scs[..4].contains(&s.chosen))
        .count();
    println!(
        "\n{} of {} selections crossed the broker boundary — federation at work.",
        remote,
        log.selections.len()
    );
}
