//! Selection-model playground: run a long sequence of selected transfers
//! and watch each model's cumulative behaviour — including the adaptive
//! bandit extensions learning the testbed from scratch.
//!
//! ```text
//! cargo run --release --example selection_playground
//! ```

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use overlay::selector::{PeerSelector, RandomSelector, RoundRobinSelector};
use peer_selection::prelude::*;
use workloads::scenario::{run_scenario, ScenarioConfig, SelectorFactory};
use workloads::spec::MB;

const ROUNDS: u64 = 30;

fn factory(name: &'static str) -> SelectorFactory {
    Box::new(move |seed| -> Box<dyn PeerSelector> {
        match name {
            "economic" => Box::new(Scored::new(EconomicModel::new())),
            "evaluator" => Box::new(Scored::new(DataEvaluatorModel::same_priority())),
            "quick-peer" => Box::new(Scored::new(UserPreferenceModel::quick_peer())),
            "eps-greedy" => Box::new(EpsilonGreedySelector::new(0.1, seed)),
            "ucb1" => Box::new(Ucb1Selector::new(std::f64::consts::SQRT_2, 2e6)),
            "hybrid" => Box::new(Scored::new(
                CompositeModel::new("economic+evaluator")
                    .plus(Box::new(EconomicModel::new()), 0.7)
                    .plus(Box::new(DataEvaluatorModel::same_priority()), 0.3),
            )),
            "sticky" => Box::new(StickySelector::new(EconomicModel::new(), 0.15)),
            "round-robin" => Box::new(RoundRobinSelector::new()),
            _ => Box::new(RandomSelector::new(seed)),
        }
    })
}

fn run_model(name: &'static str, seed: u64) -> (f64, Vec<(String, usize)>) {
    let mut cfg = ScenarioConfig::measurement_setup().with_selector(factory(name));
    for r in 0..ROUNDS {
        cfg = cfg.at(
            SimDuration::from_secs(60 + 45 * r),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: 5 * MB,
                num_parts: 5,
                label: format!("round-{r:02}"),
            },
        );
    }
    let result = run_scenario(&cfg, seed);
    let mean_secs = {
        let done: Vec<f64> = result
            .log
            .transfers
            .iter()
            .filter_map(|t| t.total_secs())
            .collect();
        done.iter().sum::<f64>() / done.len().max(1) as f64
    };
    // Pick distribution.
    let mut counts: Vec<(String, usize)> = Vec::new();
    for sel in &result.log.selections {
        let short = sel
            .chosen_name
            .split('.')
            .next()
            .unwrap_or(&sel.chosen_name)
            .to_string();
        match counts.iter_mut().find(|(n, _)| *n == short) {
            Some((_, c)) => *c += 1,
            None => counts.push((short, 1)),
        }
    }
    counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    (mean_secs, counts)
}

fn main() {
    println!("{ROUNDS} selected 5 MB transfers per model, seed 7\n");
    println!("{:<12} {:>14}  picks", "model", "mean xfer (s)");
    for name in [
        "economic",
        "evaluator",
        "quick-peer",
        "eps-greedy",
        "ucb1",
        "hybrid",
        "sticky",
        "round-robin",
        "random",
    ] {
        let (mean, picks) = run_model(name, 7);
        let dist: Vec<String> = picks
            .iter()
            .take(4)
            .map(|(n, c)| format!("{n}×{c}"))
            .collect();
        println!("{name:<12} {mean:>14.2}  {}", dist.join(" "));
    }
    println!("\nbandits start blind and converge; economic exploits its completion estimates.");
}
