//! Quickstart: boot the synthetic PlanetLab testbed, distribute a file to
//! every SimpleClient peer with no selection, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::MB;

fn main() {
    // A 10 MB file, split into 10 parts, sent to all eight SC peers —
    // blindly, exactly like the paper's first experiment.
    let cfg = ScenarioConfig::measurement_setup().at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 10 * MB,
            num_parts: 10,
            label: "quickstart".into(),
        },
    );

    println!("running one blind 10 MB distribution to SC1..SC8 (seed 1)…\n");
    let result = run_scenario(&cfg, 1);

    println!(
        "{:<6} {:<28} {:>12} {:>12} {:>12}",
        "peer", "hostname", "petition(s)", "total(s)", "MB/s"
    );
    for (i, &sc) in result.testbed.scs.iter().enumerate() {
        let rec = result
            .log
            .transfers
            .iter()
            .find(|t| t.to == sc)
            .expect("transfer record");
        println!(
            "{:<6} {:<28} {:>12.2} {:>12.2} {:>12.2}",
            format!("SC{}", i + 1),
            rec.to_name,
            rec.petition_latency_secs().unwrap_or(f64::NAN),
            rec.total_secs().unwrap_or(f64::NAN),
            rec.throughput_bytes_per_sec().unwrap_or(0.0) / 1e6,
        );
    }
    println!(
        "\nsimulated {:.1} s of virtual time; {} messages on the wire",
        result.elapsed.as_secs_f64(),
        result.metrics.counter("net.messages_sent")
    );
    println!("note the outlier: SC7 (planetlab1.itwm.fhg.de), the paper's bottleneck peer.");
}
