//! Cross-crate integration tests: full testbed boot, end-to-end protocol
//! flows, and experiment shape criteria on the real stack.

use netsim::engine::RunOutcome;
use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::{ExperimentSpec, MB};

#[test]
fn full_slice_boot_and_broadcast() {
    // All 25 Table-1 hosts plus the broker; a file reaches every client.
    let cfg = ScenarioConfig::builder()
        .testbed(planetlab::builder::TestbedConfig::full_slice())
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 2 * MB,
                num_parts: 2,
                label: "slice-broadcast".into(),
            },
        )
        .build()
        .expect("valid scenario");
    let result = run_scenario(&cfg, 3);
    assert_eq!(result.outcome, RunOutcome::Stopped);
    assert_eq!(result.testbed.len(), 26);
    assert_eq!(result.log.transfers.len(), 25, "one transfer per client");
    let completed = result
        .log
        .transfers
        .iter()
        .filter(|t| t.completed_at.is_some())
        .count();
    assert_eq!(completed, 25, "every transfer completes");
}

#[test]
fn mixed_workload_transfers_and_tasks() {
    let cfg = ScenarioConfig::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "files".into(),
            },
        )
        .at(
            SimDuration::from_secs(90),
            BrokerCommand::SubmitTask {
                target: TargetSpec::AllClients,
                work_gops: 20.0,
                input_bytes: MB,
                input_parts: 2,
                label: "jobs".into(),
            },
        )
        .at(
            SimDuration::from_secs(95),
            BrokerCommand::SendInstant {
                target: TargetSpec::AllClients,
                text: "hello overlay".into(),
            },
        );
    let result = run_scenario(&cfg, 9);
    assert_eq!(result.outcome, RunOutcome::Stopped);
    // 8 file transfers + 8 task-input transfers.
    assert_eq!(result.log.transfers.len(), 16);
    assert_eq!(result.log.tasks.len(), 8);
    for task in &result.log.tasks {
        assert!(task.success, "task on {} failed", task.on_name);
        assert!(task.exec_secs.unwrap() > 0.0);
        assert!(task.input_done_at.is_some());
        assert!(task.total_secs().unwrap() > task.exec_secs.unwrap());
    }
}

#[test]
fn selection_on_real_testbed_avoids_the_bottleneck_peer() {
    // With warm history, every informed model must avoid SC7 for transfers.
    use overlay::selector::PeerSelector;
    use peer_selection::prelude::*;

    let models: Vec<(&str, workloads::scenario::SelectorFactory)> = vec![
        (
            "economic",
            Box::new(|_| -> Box<dyn PeerSelector> { Box::new(Scored::new(EconomicModel::new())) }),
        ),
        (
            "quick-peer",
            Box::new(|_| -> Box<dyn PeerSelector> {
                Box::new(Scored::new(UserPreferenceModel::quick_peer()))
            }),
        ),
    ];
    for (name, factory) in models {
        let cfg = ScenarioConfig::measurement_setup()
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: "warmup".into(),
                },
            )
            .at(
                SimDuration::from_secs(400),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 8 * MB,
                    num_parts: 8,
                    label: "selected".into(),
                },
            )
            .with_selector(factory);
        let result = run_scenario(&cfg, 11);
        let pick = &result.log.selections[0];
        assert_ne!(
            &*pick.chosen_name, "planetlab1.itwm.fhg.de",
            "{name} must not pick SC7"
        );
        let selected = result
            .log
            .transfers
            .iter()
            .find(|t| t.label == "selected")
            .unwrap();
        assert!(selected.completed_at.is_some());
        // A selected transfer beats the blind mean.
        let blind_mean: f64 = {
            let ts: Vec<f64> = result
                .log
                .transfers
                .iter()
                .filter(|t| t.label == "warmup")
                .filter_map(|t| t.total_secs())
                .collect();
            ts.iter().sum::<f64>() / ts.len() as f64
        };
        let sel_per_mb = selected.total_secs().unwrap() / 8.0;
        let blind_per_mb = blind_mean / 4.0;
        assert!(
            sel_per_mb < blind_per_mb,
            "{name}: selected {sel_per_mb} s/MB should beat blind {blind_per_mb} s/MB"
        );
    }
}

#[test]
fn experiments_run_end_to_end_with_single_seed() {
    // One-seed smoke pass over every figure driver (fast but complete).
    let spec = ExperimentSpec {
        seeds: vec![5],
        ..ExperimentSpec::quick()
    };
    let study = workloads::experiments::transfer_study::run(&spec);
    assert!(workloads::experiments::fig2::report(&study)
        .render()
        .contains("Figure 2"));
    let f5 = workloads::experiments::fig5::run(&spec);
    assert!(f5.render().contains("Figure 5"));
    let f7 = workloads::experiments::fig7::run(&spec);
    assert!(f7.render().contains("Figure 7"));
    assert!(workloads::experiments::table1::run().contains("Table 1"));
}

#[test]
fn facade_crate_reexports_work() {
    // The root crate exposes the whole stack.
    use p2p_peer_selection::*;
    let _ = netsim::time::SimDuration::from_secs(1);
    let _ = planetlab::sites::BROKER.hostname;
    let _ = overlay::filetransfer::split_parts(10, 2);
    let m = peer_selection::prelude::EconomicModel::new();
    let _ = m;
    let _ = workloads::spec::MB;
}
