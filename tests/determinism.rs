//! Reproducibility guarantees across the whole stack: a run is a pure
//! function of its seed.

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::MB;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 12 * MB,
                num_parts: 12,
                label: "det".into(),
            },
        )
        .at(
            SimDuration::from_secs(70),
            BrokerCommand::SubmitTask {
                target: TargetSpec::AllClients,
                work_gops: 30.0,
                input_bytes: 0,
                input_parts: 1,
                label: "det-task".into(),
            },
        )
}

fn fingerprint(seed: u64) -> Vec<u64> {
    let r = run_scenario(&scenario(), seed);
    let mut fp = vec![r.elapsed.as_nanos()];
    for t in &r.log.transfers {
        fp.push(t.completed_at.map(|x| x.as_nanos()).unwrap_or(0));
        fp.push(t.petition_acked_at.map(|x| x.as_nanos()).unwrap_or(0));
        for p in &t.parts {
            fp.push(p.confirmed_at.map(|x| x.as_nanos()).unwrap_or(0));
        }
    }
    for t in &r.log.tasks {
        fp.push(t.result_at.map(|x| x.as_nanos()).unwrap_or(0));
    }
    fp
}

#[test]
fn identical_seeds_identical_histories() {
    assert_eq!(fingerprint(1), fingerprint(1));
    assert_eq!(fingerprint(77), fingerprint(77));
}

#[test]
fn different_seeds_different_histories() {
    assert_ne!(fingerprint(1), fingerprint(2));
}

#[test]
fn parallel_replication_matches_sequential() {
    let seeds = [3u64, 4, 5];
    let parallel = workloads::runner::run_replications(&seeds, fingerprint);
    let sequential: Vec<Vec<u64>> = seeds.iter().map(|&s| fingerprint(s)).collect();
    assert_eq!(parallel, sequential);
}

#[test]
fn experiment_aggregates_are_reproducible() {
    use workloads::experiments::fig5;
    use workloads::spec::ExperimentSpec;
    let spec = ExperimentSpec {
        seeds: vec![2],
        ..ExperimentSpec::quick()
    };
    let a = fig5::run_experiment(&spec);
    let b = fig5::run_experiment(&spec);
    for (sa, sb) in a.per_granularity.iter().zip(&b.per_granularity) {
        assert_eq!(sa.means(), sb.means());
    }
}
