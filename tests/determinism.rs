//! Reproducibility guarantees across the whole stack: a run is a pure
//! function of its seed.

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::MB;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 12 * MB,
                num_parts: 12,
                label: "det".into(),
            },
        )
        .at(
            SimDuration::from_secs(70),
            BrokerCommand::SubmitTask {
                target: TargetSpec::AllClients,
                work_gops: 30.0,
                input_bytes: 0,
                input_parts: 1,
                label: "det-task".into(),
            },
        )
}

fn fingerprint(seed: u64) -> Vec<u64> {
    let r = run_scenario(&scenario(), seed);
    let mut fp = vec![r.elapsed.as_nanos()];
    for t in &r.log.transfers {
        fp.push(t.completed_at.map(|x| x.as_nanos()).unwrap_or(0));
        fp.push(t.petition_acked_at.map(|x| x.as_nanos()).unwrap_or(0));
        for p in &t.parts {
            fp.push(p.confirmed_at.map(|x| x.as_nanos()).unwrap_or(0));
        }
    }
    for t in &r.log.tasks {
        fp.push(t.result_at.map(|x| x.as_nanos()).unwrap_or(0));
    }
    fp
}

#[test]
fn identical_seeds_identical_histories() {
    assert_eq!(fingerprint(1), fingerprint(1));
    assert_eq!(fingerprint(77), fingerprint(77));
}

#[test]
fn different_seeds_different_histories() {
    assert_ne!(fingerprint(1), fingerprint(2));
}

#[test]
fn parallel_replication_matches_sequential() {
    let seeds = [3u64, 4, 5];
    let parallel = workloads::runner::run_replications(&seeds, fingerprint);
    let sequential: Vec<Vec<u64>> = seeds.iter().map(|&s| fingerprint(s)).collect();
    assert_eq!(parallel, sequential);
}

#[test]
fn golden_metrics_render_is_reproducible() {
    // The full metrics report — every counter and stat the engine and
    // broker recorded through the interned-id fast path — must come out
    // byte-identical for the same seed.
    let a = run_scenario(&scenario(), 11);
    let b = run_scenario(&scenario(), 11);
    assert_eq!(a.metrics.render(), b.metrics.render());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.peak_queue_len, b.peak_queue_len);
}

#[test]
fn golden_metrics_interned_and_string_paths_agree() {
    // Replaying one run's counters/stats through the string-keyed
    // compatibility API must render byte-identically to the interned-id
    // original: the id layer is an encoding, not a semantic change.
    use netsim::metrics::Metrics;
    let run = run_scenario(&scenario(), 11);
    let counter_names: Vec<String> = run.metrics.counter_names().map(String::from).collect();
    let stat_names: Vec<String> = run.metrics.stat_names().map(String::from).collect();

    let mut via_strings = Metrics::new();
    for name in &counter_names {
        via_strings.incr(name, run.metrics.counter(name));
    }
    for name in &stat_names {
        let id = via_strings.stat_id(name);
        via_strings
            .stat_by_id_mut(id)
            .merge(&run.metrics.stat(name));
    }
    assert_eq!(run.metrics.render(), via_strings.render());

    // And a fresh registry populated in reverse name order still renders
    // the same report: output ordering is by name, never by intern order.
    let mut reversed = Metrics::new();
    for name in counter_names.iter().rev() {
        let id = reversed.counter_id(name);
        reversed.incr_id(id, run.metrics.counter(name));
    }
    for name in stat_names.iter().rev() {
        let id = reversed.stat_id(name);
        reversed.stat_by_id_mut(id).merge(&run.metrics.stat(name));
    }
    assert_eq!(run.metrics.render(), reversed.render());
}

#[test]
fn traced_lossy_runs_emit_byte_identical_jsonl() {
    // Two same-seed traced runs of the lossy Fig-5 scenario — drops,
    // retransmissions, watchdogs and all — must export byte-for-byte
    // identical JSONL and equal digests. This is the contract `psim trace`
    // (and the CI determinism job) rely on.
    use workloads::runner::run_traced;

    let cfg = || ScenarioConfig::named("fig5-lossy").expect("known scenario");
    let a = run_traced(&cfg(), 7);
    let b = run_traced(&cfg(), 7);
    assert!(!a.jsonl.is_empty(), "traced run produced no events");
    assert_eq!(a.jsonl, b.jsonl, "same-seed JSONL must be byte-identical");
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.result.trace.len(), b.result.trace.len());

    // Loss must actually have occurred for this to exercise anything.
    assert!(
        a.jsonl.contains("\"ev\":\"message_lost\""),
        "lossy scenario lost no messages"
    );
    assert!(
        a.jsonl.contains("\"ev\":\"retransmission\""),
        "lossy scenario retransmitted nothing"
    );

    // A different seed must produce a different history.
    let c = run_traced(&cfg(), 8);
    assert_ne!(a.digest, c.digest, "different seeds, same trace digest");

    // The reconstructed timelines agree with the sender-side records:
    // every completed transfer's last part lands at the recorded instant.
    let timelines = workloads::report::transfer_timelines(&a.result.trace);
    assert_eq!(timelines.len(), 8, "one timeline per SC");
    for tl in &timelines {
        assert_eq!(tl.ok, Some(true));
        let rec = a
            .result
            .log
            .transfers
            .iter()
            .find(|t| t.id.raw() == tl.transfer)
            .expect("timeline matches a recorded transfer");
        let rec_last = rec
            .parts
            .iter()
            .max_by_key(|p| p.index)
            .and_then(|p| p.confirmed_at);
        let tl_last = tl
            .parts
            .iter()
            .max_by_key(|p| p.index)
            .and_then(|p| p.confirmed_at);
        assert_eq!(rec_last, tl_last, "last-part confirm instant diverged");
    }
}

#[test]
fn experiment_aggregates_are_reproducible() {
    use workloads::experiments::fig5;
    use workloads::spec::ExperimentSpec;
    let spec = ExperimentSpec {
        seeds: vec![2],
        ..ExperimentSpec::quick()
    };
    let a = fig5::run_experiment(&spec);
    let b = fig5::run_experiment(&spec);
    for (sa, sb) in a.per_granularity.iter().zip(&b.per_granularity) {
        assert_eq!(sa.means(), sb.means());
    }
}
