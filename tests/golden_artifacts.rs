//! Pins the stdout artifacts of the harness-hosted drivers to goldens
//! captured from the pre-harness implementations.
//!
//! The `workloads::harness` refactor moved testbed construction,
//! federation wiring, engine assembly, and artifact rendering out of the
//! individual drivers; its contract is that not one byte of the churn,
//! multiregion, or federation determinism artifacts moved. These tests
//! rebuild each artifact exactly as `psim churn` / `psim multiregion` /
//! `psim federate` do — same configs as the golden capture commands —
//! and byte-compare against `tests/goldens/*.txt` at 1, 2, and 4
//! workers, so they pin worker-count invariance and the refactor's
//! byte-compatibility in one assertion.
//!
//! If a golden diff is ever *intended* (a deliberate artifact change),
//! re-capture with the commands documented on each constant.

use netsim::time::SimDuration;
use workloads::churn::{run_churn, ChurnConfig};
use workloads::federation::{run_federation, BrokerOutage, FederationConfig};
use workloads::harness::stdout_artifact;
use workloads::multiregion::{phase_csv, run_multiregion, MultiRegionConfig};
use workloads::synthtopo::SynthTopoConfig;

/// `psim churn --regions 4 --peers 24 --num-shards 4 --horizon-secs 600
/// --seed 11 > tests/goldens/churn.txt`
const CHURN_GOLDEN: &str = include_str!("goldens/churn.txt");

/// `psim multiregion --regions 3 --clients 2 --seed 11 >
/// tests/goldens/multiregion.txt`
const MULTIREGION_GOLDEN: &str = include_str!("goldens/multiregion.txt");

/// `psim federate --brokers 3 --peers 12 --num-shards 3
/// --horizon-secs 600 --seed 11 > tests/goldens/federation.txt`
const FEDERATION_GOLDEN: &str = include_str!("goldens/federation.txt");

/// `psim federate --brokers 3 --peers 12 --num-shards 3
/// --horizon-secs 900 --kill-broker-at 300 --seed 11 >
/// tests/goldens/federation_kill.txt`
const FEDERATION_KILL_GOLDEN: &str = include_str!("goldens/federation_kill.txt");

const SEED: u64 = 11;

/// Asserts `artifact == golden` with a diagnosis that names the first
/// differing line instead of dumping hundreds of kilobytes.
fn assert_matches_golden(name: &str, workers: usize, artifact: &str, golden: &str) {
    if artifact == golden {
        return;
    }
    let line = artifact
        .lines()
        .zip(golden.lines())
        .position(|(a, g)| a != g)
        .map(|i| i + 1);
    panic!(
        "{name} artifact at {workers} workers diverged from the golden: \
         {} vs {} bytes, first differing line {:?}",
        artifact.len(),
        golden.len(),
        line
    );
}

#[test]
fn churn_artifact_matches_pre_harness_golden() {
    let base = ChurnConfig {
        topo: SynthTopoConfig {
            regions: 4,
            peers: 24,
            ..SynthTopoConfig::default()
        },
        horizon: SimDuration::from_secs(600),
        num_shards: 4,
        trace_capacity: Some(1 << 16),
        ..ChurnConfig::default()
    };
    for workers in [1usize, 2, 4] {
        let cfg = ChurnConfig {
            shard_workers: workers,
            ..base.clone()
        };
        let result = run_churn(&cfg, SEED).expect("golden config is valid");
        let mut tail = workloads::churn::summary_json(&cfg, SEED, &result);
        tail.push('\n');
        let artifact = stdout_artifact(&result.trace, &result.metrics, &tail);
        assert_matches_golden("churn", workers, &artifact, CHURN_GOLDEN);
    }
}

#[test]
fn multiregion_artifact_matches_pre_harness_golden() {
    for workers in [1usize, 2, 4] {
        let cfg = MultiRegionConfig {
            regions: 3,
            clients_per_region: 2,
            shard_workers: workers,
            trace_capacity: Some(1 << 16),
            ..MultiRegionConfig::default()
        };
        let result = run_multiregion(&cfg, SEED).expect("golden config is valid");
        let tail = phase_csv(&result.trace, &result.node_names);
        let artifact = stdout_artifact(&result.trace, &result.metrics, &tail);
        assert_matches_golden("multiregion", workers, &artifact, MULTIREGION_GOLDEN);
    }
}

/// The federate golden configs: `--brokers 3 --peers 12 --num-shards 3`
/// with the psim flag defaults (region homing, 30 s gossip, 2 forward
/// hops).
fn federate_base() -> FederationConfig {
    FederationConfig {
        topo: SynthTopoConfig {
            regions: 3,
            peers: 12,
            ..SynthTopoConfig::default()
        },
        num_shards: 3,
        trace_capacity: Some(1 << 16),
        ..FederationConfig::default()
    }
}

fn federate_artifact(cfg: &FederationConfig) -> String {
    let result = run_federation(cfg, SEED).expect("golden config is valid");
    let mut tail = workloads::federation::summary_json(cfg, SEED, &result);
    tail.push('\n');
    stdout_artifact(&result.trace, &result.metrics, &tail)
}

#[test]
fn federation_artifact_matches_pre_harness_golden() {
    for workers in [1usize, 2, 4] {
        let cfg = FederationConfig {
            horizon: SimDuration::from_secs(600),
            shard_workers: workers,
            ..federate_base()
        };
        assert_matches_golden(
            "federation",
            workers,
            &federate_artifact(&cfg),
            FEDERATION_GOLDEN,
        );
    }
}

#[test]
fn federation_failover_artifact_matches_pre_harness_golden() {
    for workers in [1usize, 2, 4] {
        let cfg = FederationConfig {
            horizon: SimDuration::from_secs(900),
            kill: Some(BrokerOutage {
                region: 0,
                down_at: SimDuration::from_secs(300),
                restart_at: None,
            }),
            shard_workers: workers,
            ..federate_base()
        };
        assert_matches_golden(
            "federation_kill",
            workers,
            &federate_artifact(&cfg),
            FEDERATION_KILL_GOLDEN,
        );
    }
}
