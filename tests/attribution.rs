//! Latency attribution invariants over full traced runs: the phase
//! decomposition must partition every completed transfer's end-to-end
//! latency exactly (integer nanoseconds, no residue), and the exported
//! artefacts must be byte-deterministic per seed.

use netsim::node::NodeId;
use netsim::time::SimDuration;
use workloads::attribution::{
    aggregate_metrics, attribute_trace, breakdown_by_peer, phase_table_csv, Phase,
    TransferAttribution,
};
use workloads::runner::run_traced;
use workloads::scenario::ScenarioConfig;

fn attributed(name: &str, seed: u64) -> Vec<TransferAttribution> {
    let cfg = ScenarioConfig::named(name).expect("known scenario");
    let run = run_traced(&cfg, seed);
    assert_eq!(
        run.result.trace.dropped(),
        0,
        "trace ring dropped events; the attribution below would be partial"
    );
    attribute_trace(&run.result.trace)
}

/// Acceptance property: for every completed transfer of a traced fig5 run,
/// the five phases sum *exactly* to the end-to-end latency. All phase
/// arithmetic is integer-nanosecond, so this is equality, not tolerance.
#[test]
fn phases_sum_exactly_to_end_to_end() {
    for seed in [1, 2, 7, 42] {
        let attrs = attributed("fig5", seed);
        assert_eq!(attrs.len(), 8, "one transfer per SC under seed {seed}");
        for a in &attrs {
            assert!(a.ok, "fig5 transfers complete under seed {seed}");
            let sum: SimDuration = a.phases.iter().copied().sum();
            assert_eq!(
                sum,
                a.end_to_end(),
                "phase residue on transfer {:#x} (seed {seed})",
                a.transfer
            );
        }
    }
}

/// Same invariant under loss: retransmission stalls and timeout idle must
/// still partition the window, never overlap or leak.
#[test]
fn phases_sum_exactly_under_loss() {
    let attrs = attributed("fig5-lossy", 3);
    assert!(!attrs.is_empty());
    for a in &attrs {
        let sum: SimDuration = a.phases.iter().copied().sum();
        assert_eq!(sum, a.end_to_end(), "lossy residue on {:#x}", a.transfer);
    }
}

/// The paper's story: the small fig2 petition is wake-up-bound on SC7,
/// while the bulk fig234 run is transmission-bound everywhere.
#[test]
fn attribution_reproduces_the_paper_story() {
    let fig2 = attributed("fig2", 1);
    let slowest = fig2
        .iter()
        .max_by_key(|a| a.phase(Phase::Wakeup))
        .expect("transfers");
    assert_eq!(slowest.dominant_phase(), Phase::Wakeup);

    let fig234 = attributed("fig234", 1);
    for a in &fig234 {
        assert_eq!(
            a.dominant_phase(),
            Phase::Transmission,
            "bulk transfer {:#x} should be transmission-bound",
            a.transfer
        );
    }
}

/// Exposition determinism: identical seeds yield byte-identical CSV and
/// Prometheus exports (the CI job checks the CLI path; this guards the
/// library path the CLI is built on).
#[test]
fn exports_are_byte_deterministic() {
    let label = |node: NodeId| format!("n{}", node.0);
    let render = || {
        let attrs = attributed("fig5", 11);
        let breakdowns = breakdown_by_peer(&attrs, &label);
        let csv = phase_table_csv(&breakdowns);
        let prom = aggregate_metrics(&attrs, &label).render_prometheus("psim");
        (csv, prom)
    };
    let (csv_a, prom_a) = render();
    let (csv_b, prom_b) = render();
    assert_eq!(csv_a, csv_b);
    assert_eq!(prom_a, prom_b);
    assert!(csv_a.starts_with("peer,phase,transfers,"));
    assert!(prom_a.contains("# TYPE psim_attr_all_transmission_seconds histogram"));
}
