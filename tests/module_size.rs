//! Module-size guard: no Rust source file under any `src/` tree may
//! exceed [`MAX_LINES`] lines.
//!
//! The broker decomposition (DESIGN.md §3.3) replaced a monolithic
//! `broker.rs` with a layered module tree; this guard keeps the next
//! monolith from accreting. CI runs the same check as a shell job
//! (`module-hygiene`) so the failure names the offending file even when
//! the build is broken.

use std::fs;
use std::path::{Path, PathBuf};

/// Hard cap on lines per source file, tests and comments included.
const MAX_LINES: usize = 1_200;

/// Tighter cap for the sharded-engine modules: the parallel engine was
/// born layered (shard map / lookahead table / coordinator) and this
/// keeps each layer small enough to audit the determinism argument in
/// one sitting.
const SHARD_MAX_LINES: usize = 800;

/// Files under the tighter cap, relative to the workspace root.
const SHARD_MODULES: &[&str] = &[
    "crates/netsim/src/shard.rs",
    "crates/netsim/src/parallel.rs",
];

/// The churn layer carries the byte-determinism argument for scripted
/// lifecycles (pre-sampled scripts, node-id-derived seeds), so each of
/// its modules gets the same audit-in-one-sitting cap as the sharded
/// engine.
const CHURN_MODULES: &[&str] = &[
    "crates/overlay/src/lifecycle.rs",
    "crates/workloads/src/synthtopo.rs",
    "crates/workloads/src/churn.rs",
];

/// The harness is the single place every driver's determinism contract
/// flows through, and the streaming modules carry the playback-clock
/// argument; both get the same audit-in-one-sitting cap.
const HARNESS_MODULES: &[&str] = &[
    "crates/workloads/src/harness.rs",
    "crates/workloads/src/streaming.rs",
    "crates/overlay/src/streaming.rs",
];

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_source_file_exceeds_the_module_size_cap() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut src_dirs = vec![root.join("src")];
    for entry in fs::read_dir(root.join("crates")).expect("crates/ exists") {
        let src = entry.expect("readable dir entry").path().join("src");
        if src.is_dir() {
            src_dirs.push(src);
        }
    }

    let mut files = Vec::new();
    for dir in &src_dirs {
        rust_files_under(dir, &mut files);
    }
    files.sort();
    assert!(
        files.len() > 30,
        "guard walked only {} files — src discovery is broken",
        files.len()
    );

    let mut oversized = Vec::new();
    for path in &files {
        let lines = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
            .lines()
            .count();
        if lines > MAX_LINES {
            oversized.push(format!(
                "  {} — {lines} lines (cap {MAX_LINES})",
                path.strip_prefix(&root).unwrap_or(path).display()
            ));
        }
    }
    assert!(
        oversized.is_empty(),
        "source files over the {MAX_LINES}-line cap — split them into submodules:\n{}",
        oversized.join("\n")
    );
}

#[test]
fn shard_engine_modules_stay_under_the_tight_cap() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for rel in SHARD_MODULES {
        let path = root.join(rel);
        let lines = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
            .lines()
            .count();
        assert!(
            lines <= SHARD_MAX_LINES,
            "{rel} has {lines} lines (cap {SHARD_MAX_LINES}) — keep the \
             parallel-engine layers small enough to audit"
        );
    }
}

#[test]
fn churn_modules_stay_under_the_tight_cap() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for rel in CHURN_MODULES {
        let path = root.join(rel);
        let lines = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
            .lines()
            .count();
        assert!(
            lines <= SHARD_MAX_LINES,
            "{rel} has {lines} lines (cap {SHARD_MAX_LINES}) — keep the \
             churn determinism argument auditable in one sitting"
        );
    }
}

#[test]
fn harness_modules_stay_under_the_tight_cap() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for rel in HARNESS_MODULES {
        let path = root.join(rel);
        let lines = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
            .lines()
            .count();
        assert!(
            lines <= SHARD_MAX_LINES,
            "{rel} has {lines} lines (cap {SHARD_MAX_LINES}) — keep the \
             harness and streaming layers auditable in one sitting"
        );
    }
}
