//! Integration tests for the overlay features beyond the paper's
//! evaluation, exercised on the calibrated PlanetLab testbed.

use netsim::engine::Engine;
use netsim::time::{SimDuration, SimTime};
use overlay::broker::{Broker, BrokerConfig};
use overlay::client::{ClientCommand, ClientConfig, SimpleClient};
use overlay::gui::{GuiClient, UserBehavior};
use overlay::message::OverlayMsg;
use overlay::records::RecordSink;
use peer_selection::prelude::*;
use planetlab::builder::{build, TestbedConfig};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::MB;

#[test]
fn file_request_flows_peer_to_peer_on_the_testbed() {
    // SC4 shares a dataset; SC1 requests it twice; the transfers flow
    // SC4 → SC1 without touching the broker's data plane.
    let cfg = ScenarioConfig::builder()
        .shared_file(4, "corpus.tar", 6 * MB)
        .client_command(
            1,
            SimDuration::from_secs(120),
            ClientCommand::RequestFile {
                name: "corpus.tar".into(),
            },
        )
        .client_command(
            1,
            SimDuration::from_secs(400),
            ClientCommand::RequestFile {
                name: "corpus.tar".into(),
            },
        )
        .stop_when_idle(false)
        .horizon(SimDuration::from_secs(900))
        .build()
        .expect("valid scenario");
    let result = run_scenario(&cfg, 3);
    let served: Vec<_> = result
        .log
        .transfers
        .iter()
        .filter(|t| t.label == "corpus.tar")
        .collect();
    assert_eq!(served.len(), 2);
    for t in &served {
        assert_eq!(t.to, result.testbed.sc(1));
        assert!(t.completed_at.is_some(), "request unserved");
    }
    assert_eq!(result.metrics.counter("overlay.file_requests_served"), 2);
}

#[test]
fn client_job_runs_remotely_with_selection() {
    // SC5 submits a job; the economic selector places it on a fast peer,
    // never on the submitter or SC7.
    let cfg = ScenarioConfig::builder()
        .client_command(
            5,
            SimDuration::from_secs(200),
            ClientCommand::SubmitJob {
                work_gops: 30.0,
                input_bytes: 2 * MB,
                input_parts: 4,
                label: "analysis".into(),
            },
        )
        .stop_when_idle(false)
        .horizon(SimDuration::from_secs(2000))
        .build()
        .expect("valid scenario")
        .with_selector(Box::new(|_| -> Box<dyn PeerSelector> {
            Box::new(Scored::new(EconomicModel::new()))
        }));
    let result = run_scenario(&cfg, 5);
    assert_eq!(result.log.jobs.len(), 1);
    let job = &result.log.jobs[0];
    assert!(job.success);
    assert_eq!(job.submitter, result.testbed.sc(5));
    assert_ne!(job.executor, result.testbed.sc(5));
    assert_ne!(job.executor, result.testbed.sc(7), "SC7 must not be chosen");
}

#[test]
fn gui_user_session_on_the_testbed() {
    // A GUI client on SC6's host browses, chats, requests a file shared by
    // SC2, and submits jobs, against the real broker.
    let tb = build(&TestbedConfig::measurement_setup());
    let sink = RecordSink::new();
    let mut bcfg = BrokerConfig::new(71);
    bcfg.stop_when_idle = false;
    let mut engine: Engine<OverlayMsg> = Engine::new(tb.topology.clone(), Default::default(), 21);
    engine.register(tb.broker, Box::new(Broker::new(bcfg, sink.clone())));
    for (i, &sc) in tb.scs.iter().enumerate() {
        if i == 5 {
            let behavior = UserBehavior {
                mean_think_secs: 30.0,
                max_actions: Some(40),
                ..UserBehavior::default()
            };
            engine.register(
                sc,
                Box::new(GuiClient::new(ClientConfig::new(tb.broker), behavior, 500)),
            );
        } else {
            let cfg = if i == 1 {
                ClientConfig::new(tb.broker).sharing("lecture-01.mp4", 3 * MB)
            } else {
                ClientConfig::new(tb.broker)
            };
            engine.register(
                sc,
                Box::new(SimpleClient::new(cfg, 500 + i as u64).with_sink(sink.clone())),
            );
        }
    }
    engine.run_until(SimTime::from_secs_f64(3600.0));
    // The user's browsing found the shared file and requested it at least
    // once over ~40 actions with request weight 1/6.5 (p≈0.998 of ≥1).
    let log = sink.drain();
    let requested = log
        .transfers
        .iter()
        .filter(|t| t.label == "lecture-01.mp4")
        .count();
    assert!(
        requested >= 1,
        "GUI user should have requested the discovered file"
    );
    assert!(engine.metrics().counter("net.messages_sent") > 100);
}

#[test]
fn lossy_testbed_still_reproduces_fig2_shape() {
    // With 2% message loss and retransmissions enabled, the petition-time
    // ordering survives (SC7 worst, SC2/4/8 best).
    use overlay::broker::{BrokerCommand, RetryPolicy, TargetSpec};
    let cfg = ScenarioConfig::builder()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 10 * MB,
                num_parts: 10,
                label: "lossy".into(),
            },
        )
        .drop_probability(0.02)
        .build()
        .expect("valid scenario");
    let result = {
        // This test drives the broker directly with a custom retry policy,
        // reading the built scenario back through its accessors.
        let tb = build(cfg.testbed());
        let sink = RecordSink::new();
        let mut bcfg = BrokerConfig::new(81);
        bcfg.commands = cfg.commands().to_vec();
        bcfg.retry = Some(RetryPolicy {
            timeout: SimDuration::from_secs(90),
            max_attempts: 6,
        });
        let mut engine: Engine<OverlayMsg> =
            Engine::new(tb.topology.clone(), cfg.transport().clone(), 31);
        engine.register(tb.broker, Box::new(Broker::new(bcfg, sink.clone())));
        for (i, node) in tb.clients().into_iter().enumerate() {
            engine.register(
                node,
                Box::new(SimpleClient::new(
                    ClientConfig::new(tb.broker),
                    700 + i as u64,
                )),
            );
        }
        engine.run_until(SimTime::from_secs_f64(7200.0));
        (sink.drain(), tb)
    };
    let (log, tb) = result;
    let completed = log
        .transfers
        .iter()
        .filter(|t| t.completed_at.is_some())
        .count();
    assert!(
        completed >= 7,
        "loss must not break most transfers: {completed}/8"
    );
    // SC7 still slowest among completed transfers.
    let sc7_total = log
        .transfers
        .iter()
        .find(|t| t.to == tb.sc(7))
        .and_then(|t| t.total_secs());
    if let Some(sc7) = sc7_total {
        for t in &log.transfers {
            if t.to != tb.sc(7) {
                if let Some(other) = t.total_secs() {
                    assert!(sc7 > other, "SC7 must remain the bottleneck");
                }
            }
        }
    }
}
