//! # p2p-peer-selection — facade crate
//!
//! Re-exports the whole stack of the ICPPW'07 peer-selection reproduction:
//!
//! * [`netsim`] — deterministic discrete-event network simulator;
//! * [`planetlab`] — the synthetic PlanetLab testbed (Table-1 catalog,
//!   calibrated SC1…SC8 profiles, geographic RTT synthesis);
//! * [`overlay`] — the JXTA-Overlay reimplementation (broker, clients,
//!   chunked file transfer, tasks, statistics, federation);
//! * [`peer_selection`] — the paper's three selection models plus the
//!   adaptive/composite/sticky extensions;
//! * [`workloads`] — experiment drivers reproducing every table and figure.
//!
//! See `README.md` for the architecture and `EXPERIMENTS.md` for
//! paper-vs-measured results. The `psim` binary in this package drives
//! everything from the command line.

pub use netsim;
pub use overlay;
pub use peer_selection;
pub use planetlab;
pub use workloads;
