//! `psim` — command-line front end to the peer-selection study.
//!
//! ```text
//! psim table1                               # the slice roster + testbed
//! psim fig all --quick                      # reproduce every figure
//! psim fig 5                                # one figure, paper settings
//! psim extensions --quick                   # future-work studies
//! psim transfer --size-mb 50 --parts 50     # one blind distribution
//! psim transfer --model economic ...        # one selected transfer
//! psim csv --out target/figures --quick     # machine-readable series
//! ```

use std::collections::HashMap;

use netsim::node::NodeId;
use netsim::time::SimDuration;
use netsim::trace::Trace;
use overlay::broker::{BrokerCommand, TargetSpec};
use overlay::selector::PeerSelector;
use peer_selection::prelude::*;
use workloads::attribution::{
    aggregate_metrics, attribute_trace, breakdown_by_peer, phase_table_csv, render_phase_table,
};
use workloads::experiments::{
    self, ablation, adaptation, extensions, fig5, fig6, fig7, table1, transfer_study,
};
use workloads::report::{metrics_snapshot_json, render_timelines, transfer_timelines};
use workloads::runner::run_traced;
use workloads::scenario::{named_scenario_list, run_scenario, ScenarioConfig};
use workloads::spec::{ExperimentSpec, MB};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            usage();
            return;
        }
    };
    let flags = parse_flags(rest);
    let spec = if flags.contains_key("quick") {
        ExperimentSpec::quick()
    } else {
        ExperimentSpec::paper_defaults()
    };
    match command {
        "table1" => println!("{}", table1::run()),
        "fig" => cmd_fig(rest.first().map(String::as_str).unwrap_or("all"), &spec),
        "extensions" => cmd_extensions(&spec),
        "ablation" => println!("{}", ablation::run(&spec).render()),
        "transfer" => cmd_transfer(&flags),
        "task" => cmd_task(&flags),
        "csv" => cmd_csv(&flags, &spec),
        "bench-engine" => cmd_bench_engine(&flags),
        "trace" => cmd_trace(rest, &flags),
        "report" => cmd_report(rest, &flags),
        "attribute" => cmd_attribute(rest, &flags),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "psim — peer selection study (ICPPW'07 reproduction)\n\n\
         commands:\n\
         \x20 table1                      print the slice roster and calibrated testbed\n\
         \x20 fig <2|3|4|5|6|7|all>       reproduce a figure (add --quick for 2 reps)\n\
         \x20 extensions                  run the future-work studies\n\
         \x20 ablation                    transport-model ablation table\n\
         \x20 transfer [opts]             run one file distribution\n\
         \x20    --size-mb N (10)  --parts P (10)  --seed S (1)\n\
         \x20    --model <economic|evaluator|quick-peer|random>   (default: blind, all peers)\n\
         \x20 task [opts]                 run one task campaign\n\
         \x20    --work G (120)  --input-mb N (0)  --seed S (1)  --model <...>\n\
         \x20 csv --out DIR               write every figure's series as CSV\n\
         \x20 bench-engine [opts]         measure engine throughput, write BENCH_engine.json\n\
         \x20    --messages N (1000000)  --out FILE (BENCH_engine.json)\n\
         \x20 trace <scenario> [opts]     run a traced scenario, emit JSONL events\n\
         \x20    scenarios: smoke, fig2, fig234, fig5, fig5-lossy\n\
         \x20    --seed S (1)  --out FILE (stdout)  --strict (exit 3 on trace drops)\n\
         \x20 report <scenario> [opts]    traced run → metrics snapshot + transfer timelines\n\
         \x20    --seed S (1)  --strict\n\
         \x20 attribute <scenario> [opts] traced run → per-peer latency phase breakdown\n\
         \x20    --seed S (1)  --csv FILE  --prom FILE  --strict\n\
         \x20 help                        this text"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if value != "true" {
                i += 1;
            }
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> f64 {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Models `psim transfer`/`psim task` accept (a superset of the fig6
/// figure models — the CLI also exposes the evaluator and UCB1 selectors).
const CLI_MODELS: &str = "economic, evaluator, quick-peer, random, ucb1";

/// Resolves `--model` for the one-shot commands, exiting with the valid
/// list when the spelling is unknown (silently running blind instead
/// would misattribute the numbers).
#[allow(clippy::type_complexity)] // mirrors workloads::scenario::SelectorFactory
fn selector_or_exit(
    model: Option<&str>,
) -> Option<Box<dyn Fn(u64) -> Box<dyn PeerSelector> + Sync>> {
    let name = model?;
    match selector_for(name) {
        Some(factory) => Some(factory),
        None => {
            eprintln!("unknown model `{name}`; valid models: {CLI_MODELS}");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::type_complexity)] // mirrors workloads::scenario::SelectorFactory
fn selector_for(model: &str) -> Option<Box<dyn Fn(u64) -> Box<dyn PeerSelector> + Sync>> {
    let model = model.to_string();
    match model.as_str() {
        "economic" | "evaluator" | "quick-peer" | "random" | "ucb1" => {
            Some(Box::new(move |seed| -> Box<dyn PeerSelector> {
                match model.as_str() {
                    "economic" => Box::new(Scored::new(EconomicModel::new())),
                    "evaluator" => Box::new(Scored::new(DataEvaluatorModel::same_priority())),
                    "quick-peer" => Box::new(Scored::new(UserPreferenceModel::quick_peer())),
                    "ucb1" => Box::new(Ucb1Selector::new(std::f64::consts::SQRT_2, 2e6)),
                    _ => Box::new(RandomSelector::new(seed)),
                }
            }))
        }
        _ => None,
    }
}

/// Unwraps a fig6 run, reporting unknown-model errors (with the valid
/// model list) instead of panicking.
fn fig6_or_exit(
    result: Result<workloads::report::FigureReport, fig6::UnknownModelError>,
) -> workloads::report::FigureReport {
    match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_fig(which: &str, spec: &ExperimentSpec) {
    // Figures 2–4 read off the same shared study; run it inside the arm
    // that needs it so every dispatch path is total — no Option to unwrap,
    // and unknown figures take the error path below instead of panicking.
    match which {
        "2" | "3" | "4" => {
            let study = transfer_study::run(spec);
            let report = match which {
                "2" => experiments::fig2::report(&study),
                "3" => experiments::fig3::report(&study),
                _ => experiments::fig4::report(&study),
            };
            println!("{}", report.render());
        }
        "5" => println!("{}", fig5::run(spec).render()),
        "6" => println!("{}", fig6_or_exit(fig6::run(spec)).render()),
        "7" => println!("{}", fig7::run(spec).render()),
        "all" => {
            let study = transfer_study::run(spec);
            println!("{}", experiments::fig2::report(&study).render());
            println!("{}", experiments::fig3::report(&study).render());
            println!("{}", experiments::fig4::report(&study).render());
            println!("{}", fig5::run(spec).render());
            println!("{}", fig6_or_exit(fig6::run(spec)).render());
            println!("{}", fig7::run(spec).render());
        }
        other => {
            eprintln!("unknown figure: {other} (expected 2..7 or all)");
            std::process::exit(2);
        }
    }
}

fn cmd_extensions(spec: &ExperimentSpec) {
    println!("{}", extensions::scaling::run(spec).render());
    println!("{}", extensions::request::run(spec).render());
    println!("{}", extensions::profiles::run(spec).render());
    println!("{}", adaptation::run(spec).render());
    let churn = extensions::churn::run_experiment(1);
    println!("== Extension: churn ==");
    println!(
        "selected transfers: {}/{} completed; departed peer re-selected: {}",
        churn.completed, churn.started, churn.leaver_chosen_after_departure
    );
}

fn cmd_transfer(flags: &HashMap<String, String>) {
    let size = (flag_f64(flags, "size-mb", 10.0).max(0.001) * MB as f64) as u64;
    let parts = flag_f64(flags, "parts", 10.0).max(1.0) as u32;
    let seed = flag_f64(flags, "seed", 1.0) as u64;
    let model = flags.get("model").cloned();

    let mut cfg = ScenarioConfig::measurement_setup();
    match selector_or_exit(model.as_deref()) {
        Some(factory) => {
            cfg.selector = Some(factory);
            cfg = cfg
                .at(
                    SimDuration::from_secs(60),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::AllClients,
                        size_bytes: 4 * MB,
                        num_parts: 4,
                        label: "warmup".into(),
                    },
                )
                .at(
                    SimDuration::from_secs(400),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Selected,
                        size_bytes: size,
                        num_parts: parts,
                        label: "cli".into(),
                    },
                );
        }
        None => {
            cfg = cfg.at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: size,
                    num_parts: parts,
                    label: "cli".into(),
                },
            );
        }
    }
    let result = run_scenario(&cfg, seed);
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>9}",
        "peer", "petition(s)", "total(s)", "MB/s", "status"
    );
    for t in result.log.transfers.iter().filter(|t| t.label == "cli") {
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>10.2} {:>9}",
            t.to_name,
            t.petition_latency_secs().unwrap_or(f64::NAN),
            t.total_secs().unwrap_or(f64::NAN),
            t.throughput_bytes_per_sec().unwrap_or(0.0) / 1e6,
            if t.cancelled {
                "cancelled"
            } else if t.completed_at.is_some() {
                "ok"
            } else {
                "pending"
            }
        );
    }
    for s in &result.log.selections {
        println!("selected by {}: {}", s.model, s.chosen_name);
    }
}

fn cmd_task(flags: &HashMap<String, String>) {
    let work = flag_f64(flags, "work", 120.0).max(0.001);
    let input = (flag_f64(flags, "input-mb", 0.0).max(0.0) * MB as f64) as u64;
    let seed = flag_f64(flags, "seed", 1.0) as u64;
    let model = flags.get("model").cloned();

    let target = if model.is_some() {
        TargetSpec::Selected
    } else {
        TargetSpec::AllClients
    };
    let mut cfg = ScenarioConfig::measurement_setup();
    if let Some(factory) = selector_or_exit(model.as_deref()) {
        cfg.selector = Some(factory);
        cfg = cfg.at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "warmup".into(),
            },
        );
    }
    cfg = cfg.at(
        SimDuration::from_secs(400),
        BrokerCommand::SubmitTask {
            target,
            work_gops: work,
            input_bytes: input,
            input_parts: 16,
            label: "cli-task".into(),
        },
    );
    let result = run_scenario(&cfg, seed);
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "peer", "exec(min)", "total(min)", "xfer(min)", "ok"
    );
    for t in result.log.tasks.iter().filter(|t| t.label == "cli-task") {
        let xfer = t
            .input_done_at
            .map(|d| d.duration_since(t.submitted_at).as_secs_f64() / 60.0);
        println!(
            "{:<28} {:>10.2} {:>12.2} {:>12} {:>8}",
            t.on_name,
            t.exec_secs.unwrap_or(f64::NAN) / 60.0,
            t.total_secs().unwrap_or(f64::NAN) / 60.0,
            xfer.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            t.success
        );
    }
}

fn cmd_bench_engine(flags: &HashMap<String, String>) {
    use workloads::enginebench;

    let messages = flag_f64(flags, "messages", 1_000_000.0).max(1_000.0) as u64;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    eprintln!("bench-engine: ping-pong {messages} messages (interned metrics) ...");
    let interned = enginebench::pingpong(messages, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event  peak queue {}",
        interned.events_per_sec(),
        interned.ns_per_event(),
        interned.peak_queue_len
    );
    eprintln!("bench-engine: ping-pong {messages} messages (string-keyed baseline) ...");
    let strings = enginebench::pingpong_string_metrics(messages, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event",
        strings.events_per_sec(),
        strings.ns_per_event()
    );
    eprintln!("bench-engine: 8-client broker scenario ...");
    let broker = enginebench::broker_scenario(3, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event  {} events  peak queue {}",
        broker.events_per_sec(),
        broker.ns_per_event(),
        broker.events,
        broker.peak_queue_len
    );
    eprintln!("bench-engine: metrics layer (string vs interned) ...");
    let overhead = enginebench::metrics_overhead(2_000_000);
    eprintln!(
        "  string {:.1} ns/event, interned {:.1} ns/event — {:.2}x",
        overhead.string_ns_per_event,
        overhead.interned_ns_per_event,
        overhead.speedup()
    );

    let json = enginebench::render_json(&interned, &strings, &broker, &overhead);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

/// Resolves the positional scenario-name argument for `trace`/`report`,
/// exiting with the valid list when missing or unknown.
fn named_scenario_or_exit(rest: &[String]) -> ScenarioConfig {
    let name = rest.first().filter(|a| !a.starts_with("--"));
    let valid = named_scenario_list().join(", ");
    let Some(name) = name else {
        eprintln!("missing scenario name; valid scenarios: {valid}");
        std::process::exit(2);
    };
    match ScenarioConfig::named(name) {
        Some(cfg) => cfg,
        None => {
            eprintln!("unknown scenario `{name}`; valid scenarios: {valid}");
            std::process::exit(2);
        }
    }
}

/// Surfaces trace-ring drops: anything derived from a truncated trace
/// (timelines, attribution) is silently missing the evicted events. Always
/// warns on stderr; exits 3 under `--strict`.
fn check_trace_drops(trace: &Trace, strict: bool) {
    let dropped = trace.dropped();
    if dropped == 0 {
        return;
    }
    eprintln!(
        "warning: trace ring dropped {dropped} events; derived output is incomplete \
         (raise the trace capacity to keep the full history)"
    );
    if strict {
        eprintln!("error: --strict refuses a truncated trace");
        std::process::exit(3);
    }
}

fn cmd_trace(rest: &[String], flags: &HashMap<String, String>) {
    let cfg = named_scenario_or_exit(rest);
    let seed = flag_f64(flags, "seed", 1.0) as u64;
    let run = run_traced(&cfg, seed);
    let trace = &run.result.trace;
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &run.jsonl) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        None => print!("{}", run.jsonl),
    }
    eprintln!(
        "trace: {} events ({} dropped), digest {:016x}, elapsed {:.1}s virtual",
        trace.len(),
        trace.dropped(),
        run.digest,
        run.result.elapsed.as_secs_f64(),
    );
    check_trace_drops(trace, flags.contains_key("strict"));
}

fn cmd_report(rest: &[String], flags: &HashMap<String, String>) {
    let cfg = named_scenario_or_exit(rest);
    let seed = flag_f64(flags, "seed", 1.0) as u64;
    let run = run_traced(&cfg, seed);
    let timelines = transfer_timelines(&run.result.trace);
    println!("{}", metrics_snapshot_json(&run.result.metrics));
    println!();
    print!("{}", render_timelines(&timelines));
    eprintln!(
        "report: {} transfers reconstructed from {} trace events, digest {:016x}",
        timelines.len(),
        run.result.trace.len(),
        run.digest,
    );
    check_trace_drops(&run.result.trace, flags.contains_key("strict"));
}

fn cmd_attribute(rest: &[String], flags: &HashMap<String, String>) {
    let cfg = named_scenario_or_exit(rest);
    let seed = flag_f64(flags, "seed", 1.0) as u64;
    let run = run_traced(&cfg, seed);
    check_trace_drops(&run.result.trace, flags.contains_key("strict"));

    let attrs = attribute_trace(&run.result.trace);
    let scs = run.result.testbed.scs;
    let label_of = |node: NodeId| {
        scs.iter()
            .position(|&sc| sc == node)
            .map(|i| format!("SC{}", i + 1))
            .unwrap_or_else(|| format!("n{}", node.0))
    };
    let breakdowns = breakdown_by_peer(&attrs, label_of);
    print!("{}", render_phase_table(&breakdowns));

    if let Some(path) = flags.get("csv") {
        if let Err(e) = std::fs::write(path, phase_table_csv(&breakdowns)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("prom") {
        // The exposition carries the run's engine metrics plus the
        // attribution histograms, one deterministic text artifact.
        let mut metrics = run.result.metrics.clone();
        metrics.merge(&aggregate_metrics(&attrs, label_of));
        if let Err(e) = std::fs::write(path, metrics.render_prometheus("psim")) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    eprintln!(
        "attribute: {} transfers attributed from {} trace events, digest {:016x}",
        attrs.len(),
        run.result.trace.len(),
        run.digest,
    );
}

fn cmd_csv(flags: &HashMap<String, String>, spec: &ExperimentSpec) {
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "target/figures".to_string());
    std::fs::create_dir_all(&out).expect("create output dir");
    let study = transfer_study::run(spec);
    let reports = vec![
        ("fig2", experiments::fig2::report(&study)),
        ("fig3", experiments::fig3::report(&study)),
        ("fig4", experiments::fig4::report(&study)),
        ("fig5", fig5::run(spec)),
        ("fig6", fig6_or_exit(fig6::run(spec))),
        ("fig7", fig7::run(spec)),
    ];
    for (name, report) in reports {
        let path = format!("{out}/{name}.csv");
        std::fs::write(&path, report.to_csv()).expect("write csv");
        println!("wrote {path}");
    }
}
