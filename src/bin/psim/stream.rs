//! The streaming subcommands: `psim stream` (determinism artifact) and
//! `psim bench-streaming` (startup delay and rebuffering across the
//! piece-policy × window grid → `BENCH_streaming.json`).
//!
//! `psim stream` writes only worker-count-invariant bytes to stdout —
//! trace JSONL, metrics snapshot, summary JSON — so the CI
//! workload-determinism job can byte-diff two runs that differ only in
//! `--shard-workers`. Wall-clock numbers and diagnostics go to stderr.

use netsim::time::SimDuration;
use peer_selection::service::try_piece_policy_for;
use workloads::harness::stdout_artifact;
use workloads::streaming::{
    run_streaming, summary_json, PiecePolicy, StartupQuantiles, StreamingConfig, StreamingResult,
    UploadProfile,
};
use workloads::synthtopo::SynthTopoConfig;

use crate::{write_or_exit, Flags};

/// Parses `--policy` through the shared `peer_selection::service` table,
/// exiting with the valid list on anything else.
fn policy_or_exit(flags: &Flags) -> PiecePolicy {
    let name = flags.get("policy").expect("table default");
    try_piece_policy_for(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Parses `--upload`, exiting with the valid list on anything else.
fn upload_or_exit(flags: &Flags) -> UploadProfile {
    let name = flags.get("upload").expect("table default");
    UploadProfile::parse(name).unwrap_or_else(|| {
        let valid: Vec<&str> = UploadProfile::ALL.iter().map(|p| p.name()).collect();
        eprintln!(
            "unknown upload profile `{name}`; valid profiles: {}",
            valid.join(", ")
        );
        std::process::exit(2);
    })
}

/// Builds the [`StreamingConfig`] shared by both subcommands from the
/// common flag set.
pub(crate) fn streaming_config(flags: &Flags) -> StreamingConfig {
    let regions = flags.usize("regions").max(1);
    let peers = flags.usize("peers").max(regions);
    let num_shards = flags.usize("num-shards").max(1).min(regions);
    StreamingConfig {
        topo: SynthTopoConfig {
            regions,
            peers,
            ..SynthTopoConfig::default()
        },
        policy: policy_or_exit(flags),
        window: flags.u64("window").max(1) as u32,
        upload: upload_or_exit(flags),
        horizon: SimDuration::from_secs(flags.u64("horizon-secs").max(1)),
        num_shards,
        total_pieces: flags.u64("pieces").max(1) as u32,
        trace_capacity: Some(1 << 16),
        ..StreamingConfig::default()
    }
}

/// Runs one streaming replication, exiting with a flag diagnostic when
/// the configuration is rejected instead of panicking.
fn run_streaming_or_exit(cfg: &StreamingConfig, seed: u64) -> StreamingResult {
    run_streaming(cfg, seed).unwrap_or_else(|e| {
        eprintln!("stream: {e}");
        std::process::exit(2);
    })
}

/// `psim stream`: one streaming run; stdout carries the determinism
/// artifact (trace JSONL + metrics snapshot + summary JSON), stderr the
/// human summary. Byte-identical stdout for any `--shard-workers`.
pub(crate) fn cmd_stream(flags: &Flags) {
    let cfg = StreamingConfig {
        shard_workers: flags.usize("shard-workers").max(1),
        ..streaming_config(flags)
    };
    let seed = flags.u64("seed");
    let result = run_streaming_or_exit(&cfg, seed);

    let mut tail = summary_json(&cfg, seed, &result);
    tail.push('\n');
    print!("{}", stdout_artifact(&result.trace, &result.metrics, &tail));
    eprintln!(
        "stream: {:?} at t={:.1}s, {} viewers / {} regions / {} shards, {} events, \
         {} trace events ({} dropped), digest {:016x}, {} workers",
        result.outcome,
        result.elapsed.as_secs_f64(),
        cfg.topo.peers,
        cfg.topo.regions,
        cfg.num_shards,
        result.events_processed,
        result.trace.len(),
        result.trace.dropped(),
        result.trace.digest(),
        cfg.shard_workers,
    );
    let s = result.stats;
    match StartupQuantiles::from_samples(&result.startup_delays()) {
        Some(q) => eprintln!(
            "playback: {} streams, {} started ({} completed), startup p50 {:.2}s / \
             p90 {:.2}s / max {:.2}s, {} rebuffers ({:.1}s stalled)",
            s.streams,
            s.playbacks_started,
            s.completions,
            q.p50_s,
            q.p90_s,
            q.max_s,
            s.rebuffer_events,
            s.rebuffer_secs,
        ),
        None => eprintln!(
            "playback: {} streams, none reached the startup buffer inside the horizon",
            s.streams
        ),
    }
}

/// `psim bench-streaming`: startup delay and rebuffering across the
/// piece-policy × window grid (the sequential rows double as a
/// window-insensitivity baseline). Writes `BENCH_streaming.json`.
pub(crate) fn cmd_bench_streaming(flags: &Flags) {
    let base = streaming_config(flags);
    let seed = flags.u64("seed");
    let out = flags.get("out").expect("table default").to_string();
    let windows = [2u32, 8];

    eprintln!(
        "bench-streaming: {} viewers / {} regions, {} pieces, upload `{}`, \
         policies {:?} x windows {windows:?} ...",
        base.topo.peers,
        base.topo.regions,
        base.total_pieces,
        base.upload,
        PiecePolicy::ALL.map(|p| p.name()),
    );
    let mut points = Vec::new();
    for policy in PiecePolicy::ALL {
        for &window in &windows {
            let cfg = StreamingConfig {
                policy,
                window,
                // The bench reads playback records, not the trace.
                trace_capacity: None,
                ..base.clone()
            };
            let result = run_streaming_or_exit(&cfg, seed);
            let s = result.stats;
            let q = StartupQuantiles::from_samples(&result.startup_delays());
            let (p50, p90, max) = q.map(|q| (q.p50_s, q.p90_s, q.max_s)).unwrap_or_default();
            eprintln!(
                "  {policy:>13} w={window}: startup p50 {p50:.2}s / p90 {p90:.2}s, \
                 {} rebuffers ({:.1}s), {} completed",
                s.rebuffer_events, s.rebuffer_secs, s.completions,
            );
            points.push(format!(
                "{{\"policy\":\"{policy}\",\"window\":{window},\
                 \"effective_window\":{},\"streams\":{},\"playbacks_started\":{},\
                 \"completions\":{},\"startup_p50_s\":{p50},\"startup_p90_s\":{p90},\
                 \"startup_max_s\":{max},\"rebuffer_events\":{},\
                 \"rebuffering_seconds\":{}}}",
                policy.effective_window(window),
                s.streams,
                s.playbacks_started,
                s.completions,
                s.rebuffer_events,
                s.rebuffer_secs,
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"streaming\",\n  \"peers\": {},\n  \"regions\": {},\n  \
         \"num_shards\": {},\n  \"horizon_secs\": {},\n  \"pieces\": {},\n  \
         \"upload\": \"{}\",\n  \"seed\": {},\n  \"rss_bytes\": {},\n  \
         \"points\": [{}]\n}}\n",
        base.topo.peers,
        base.topo.regions,
        base.num_shards,
        base.horizon.as_secs_f64(),
        base.total_pieces,
        base.upload,
        seed,
        crate::churn::rss_bytes(),
        points.join(", "),
    );
    write_or_exit(&out, &json);
}
