//! The federation subcommands: `psim federate` (determinism artifact)
//! and `psim bench-federation` (petition latency vs broker count and
//! gossip staleness, plus failover recovery → `BENCH_federation.json`).
//!
//! `psim federate` writes only worker-count-invariant bytes to stdout —
//! trace JSONL, metrics snapshot, summary JSON — so the CI
//! federation-determinism job can byte-diff two runs that differ only in
//! `--shard-workers`, including a `--kill-broker-at` run. Wall-clock
//! numbers and diagnostics go to stderr.

use netsim::time::SimDuration;
use overlay::federation::HomingPolicy;
use workloads::federation::{
    run_federation, summary_json, BrokerOutage, FederationConfig, FederationResult, LatencySummary,
};
use workloads::harness::stdout_artifact;
use workloads::synthtopo::SynthTopoConfig;

use crate::{write_or_exit, Flags};

/// Parses `--homing` (region|hash), exiting 2 on anything else.
fn homing_or_exit(flags: &Flags) -> HomingPolicy {
    match flags.get("homing").expect("table default") {
        "region" => HomingPolicy::RegionAffinity,
        "hash" => HomingPolicy::ConsistentHash,
        other => {
            eprintln!("invalid value `{other}` for --homing (expected region|hash)");
            std::process::exit(2);
        }
    }
}

/// Builds the [`FederationConfig`] shared by both subcommands from the
/// common flag set.
pub(crate) fn federation_config(flags: &Flags) -> FederationConfig {
    let brokers = flags.usize("brokers").max(1);
    let peers = flags.usize("peers").max(brokers);
    let num_shards = flags.usize("num-shards").max(1).min(brokers);
    let gossip = SimDuration::from_millis(flags.u64("gossip-ms").max(1));
    let staleness = flags
        .has("staleness-ms")
        .then(|| SimDuration::from_millis(flags.u64("staleness-ms").max(1)));
    let kill = flags.has("kill-broker-at").then(|| BrokerOutage {
        region: flags.usize("kill-region"),
        down_at: SimDuration::from_secs_f64(flags.f64("kill-broker-at").max(0.0)),
        restart_at: flags
            .has("restart-broker-at")
            .then(|| SimDuration::from_secs_f64(flags.f64("restart-broker-at").max(0.0))),
    });
    FederationConfig {
        topo: SynthTopoConfig {
            regions: brokers,
            peers,
            ..SynthTopoConfig::default()
        },
        homing: homing_or_exit(flags),
        gossip_interval: gossip,
        staleness_bound: staleness,
        forward_hops: flags.u64("forward-hops") as u32,
        horizon: SimDuration::from_secs(flags.u64("horizon-secs").max(1)),
        num_shards,
        kill,
        trace_capacity: Some(1 << 16),
        ..FederationConfig::default()
    }
}

/// Runs one federation replication, exiting with a flag diagnostic when
/// the configuration is rejected instead of panicking.
fn run_federation_or_exit(cfg: &FederationConfig, seed: u64) -> FederationResult {
    run_federation(cfg, seed).unwrap_or_else(|e| {
        eprintln!("federate: {e}");
        std::process::exit(2);
    })
}

/// `psim federate`: one federation run; stdout carries the determinism
/// artifact (trace JSONL + metrics snapshot + summary JSON), stderr the
/// human summary. Byte-identical stdout for any `--shard-workers`.
pub(crate) fn cmd_federate(flags: &Flags) {
    let cfg = FederationConfig {
        shard_workers: flags.usize("shard-workers").max(1),
        ..federation_config(flags)
    };
    let seed = flags.u64("seed");
    let result = run_federation_or_exit(&cfg, seed);

    let mut tail = summary_json(&cfg, seed, &result);
    tail.push('\n');
    print!("{}", stdout_artifact(&result.trace, &result.metrics, &tail));
    eprintln!(
        "federate: {:?} at t={:.1}s, {} peers / {} brokers / {} shards, {} events, \
         {} trace events ({} dropped), digest {:016x}, {} workers",
        result.outcome,
        result.elapsed.as_secs_f64(),
        cfg.topo.peers,
        cfg.topo.regions,
        cfg.num_shards,
        result.events_processed,
        result.trace.len(),
        result.trace.dropped(),
        result.trace.digest(),
        cfg.shard_workers,
    );
    let d = result.dynamics;
    eprintln!(
        "federation dynamics: {} joins, {} rehomes, {} forwarded ({} served, \
         {} exhausted), {} stale views dropped",
        d.joins,
        d.rehomes,
        d.petitions_forwarded,
        d.forwards_served,
        d.forwards_exhausted,
        d.stale_views_dropped,
    );
    if let Some(kill) = cfg.kill {
        match result.recovery {
            Some(r) => eprintln!(
                "failover: broker of region {} down at {:.0}s; {} re-homes, \
                 recovery {:.1}s mean / {:.1}s max",
                kill.region,
                kill.down_at.as_secs_f64(),
                r.count,
                r.mean_s,
                r.max_s,
            ),
            None => eprintln!(
                "failover: broker of region {} down at {:.0}s; no client re-homed \
                 (horizon too short for the probe timeout?)",
                kill.region,
                kill.down_at.as_secs_f64(),
            ),
        }
    }
}

/// `psim bench-federation`: petition latency and forwarding volume as the
/// broker count and the gossip/staleness cadence vary, plus one scripted
/// failover run for the recovery-time distribution. Writes
/// `BENCH_federation.json`.
pub(crate) fn cmd_bench_federation(flags: &Flags) {
    let peers = flags.usize("peers").max(8);
    let horizon = SimDuration::from_secs(flags.u64("horizon-secs").max(1));
    let seed = flags.u64("seed");
    let out = flags.get("out").expect("table default").to_string();

    // The grid couples gossip interval and staleness bound (staleness =
    // cadence): a slow cadence is what leaves brokers blind between
    // rounds, so it is the axis that actually moves forwarding volume.
    let broker_counts = [2usize, 4];
    let staleness_secs = [30u64, 240];
    eprintln!(
        "bench-federation: {peers} peers, horizon {:.0}s, brokers {broker_counts:?} x \
         gossip/staleness {staleness_secs:?}s ...",
        horizon.as_secs_f64()
    );

    let base = |brokers: usize| FederationConfig {
        topo: SynthTopoConfig {
            regions: brokers,
            peers,
            ..SynthTopoConfig::default()
        },
        num_shards: brokers,
        horizon,
        // One region's peers arrive late: its broker faces scheduled
        // rounds with an empty local registry, so slow gossip forces
        // cross-broker forwarding while fast gossip serves remote views.
        late_region: Some((1, SimDuration::from_secs_f64(horizon.as_secs_f64() * 0.6))),
        trace_capacity: None,
        ..FederationConfig::default()
    };

    let mut points = Vec::new();
    for &brokers in &broker_counts {
        for &s in &staleness_secs {
            let cfg = FederationConfig {
                gossip_interval: SimDuration::from_secs(s),
                staleness_bound: Some(SimDuration::from_secs(s)),
                ..base(brokers)
            };
            let result = run_federation_or_exit(&cfg, seed);
            let petition = LatencySummary::from_samples(&result.petition_latencies());
            let mean = petition.map(|p| p.mean_s).unwrap_or(0.0);
            let d = result.dynamics;
            eprintln!(
                "  {brokers} brokers, staleness {s:>3}s: {} transfers, petition mean \
                 {mean:.3}s, {} forwarded / {} served remote",
                result.log.transfers.len(),
                d.petitions_forwarded,
                d.forwards_served,
            );
            points.push(format!(
                "{{\"brokers\":{brokers},\"gossip_secs\":{s},\"staleness_secs\":{s},\
                 \"transfers\":{},\"petition_latency_mean_s\":{mean},\
                 \"forwarded\":{},\"served_remote\":{}}}",
                result.log.transfers.len(),
                d.petitions_forwarded,
                d.forwards_served,
            ));
        }
    }

    // The failover run: four brokers, one killed mid-run, recovery times
    // from the traced re-home events.
    let kill_at = flags.u64("kill-at-secs").max(1);
    let failover_cfg = FederationConfig {
        kill: Some(BrokerOutage {
            region: 0,
            down_at: SimDuration::from_secs(kill_at),
            restart_at: None,
        }),
        late_region: None,
        trace_capacity: Some(1 << 16),
        ..base(4)
    };
    let failover = run_federation_or_exit(&failover_cfg, seed);
    let recovery = failover.recovery;
    eprintln!(
        "  failover: kill at {kill_at}s -> {} re-homes, recovery mean {:.1}s / max {:.1}s",
        failover.dynamics.rehomes,
        recovery.map(|r| r.mean_s).unwrap_or(0.0),
        recovery.map(|r| r.max_s).unwrap_or(0.0),
    );

    let json = format!(
        "{{\n  \"bench\": \"federation\",\n  \"peers\": {},\n  \"horizon_secs\": {},\n  \
         \"seed\": {},\n  \"rss_bytes\": {},\n  \"points\": [{}],\n  \
         \"failover\": {{\"brokers\": 4, \"kill_at_secs\": {}, \"rehomes\": {}, \
         \"recovery_mean_s\": {}, \"recovery_max_s\": {}}}\n}}\n",
        peers,
        horizon.as_secs_f64(),
        seed,
        crate::churn::rss_bytes(),
        points.join(", "),
        kill_at,
        failover.dynamics.rehomes,
        recovery.map(|r| r.mean_s).unwrap_or(0.0),
        recovery.map(|r| r.max_s).unwrap_or(0.0),
    );
    write_or_exit(&out, &json);
}
