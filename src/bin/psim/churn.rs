//! The churn subcommands: `psim churn` (determinism artifact) and
//! `psim bench-churn` (throughput + memory, `BENCH_churn.json`).
//!
//! `psim churn` writes only worker-count-invariant bytes to stdout —
//! trace JSONL, metrics snapshot, summary JSON — so the CI
//! churn-determinism job can byte-diff two runs that differ only in
//! `--shard-workers`. Wall-clock numbers and diagnostics go to stderr.

use workloads::churn::{run_churn, summary_json, ChurnConfig, ChurnResult};
use workloads::harness::stdout_artifact;
use workloads::synthtopo::SynthTopoConfig;

use crate::{write_or_exit, Flags};

/// Builds the [`ChurnConfig`] shared by both subcommands from the common
/// flag set (`--regions`, `--peers`, `--horizon-secs`, `--num-shards`).
pub(crate) fn churn_config(flags: &Flags) -> ChurnConfig {
    let regions = flags.usize("regions").max(1);
    let peers = flags.usize("peers").max(regions);
    let num_shards = flags.usize("num-shards").max(1).min(regions);
    ChurnConfig {
        topo: SynthTopoConfig {
            regions,
            peers,
            ..SynthTopoConfig::default()
        },
        horizon: netsim::time::SimDuration::from_secs(flags.u64("horizon-secs").max(1)),
        num_shards,
        trace_capacity: Some(1 << 16),
        ..ChurnConfig::default()
    }
}

/// Runs one churn replication, exiting with a flag diagnostic when the
/// configuration cannot be sharded instead of panicking.
pub(crate) fn run_churn_or_exit(cfg: &ChurnConfig, seed: u64) -> ChurnResult {
    run_churn(cfg, seed).unwrap_or_else(|e| {
        eprintln!("churn: {e}");
        std::process::exit(2);
    })
}

/// Resident-set proxy from `/proc/self/statm` (pages × 4 KiB); 0 when the
/// proc filesystem is unavailable (non-Linux hosts).
pub(crate) fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|v| v.parse::<u64>().ok())
        })
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// `psim churn`: one churn run; stdout carries the determinism artifact
/// (trace JSONL + metrics snapshot + summary JSON), stderr the human
/// summary. Byte-identical stdout for any `--shard-workers`.
pub(crate) fn cmd_churn(flags: &Flags) {
    let cfg = ChurnConfig {
        shard_workers: flags.usize("shard-workers").max(1),
        ..churn_config(flags)
    };
    let seed = flags.u64("seed");
    let result = run_churn_or_exit(&cfg, seed);

    let mut tail = summary_json(&cfg, seed, &result);
    tail.push('\n');
    print!("{}", stdout_artifact(&result.trace, &result.metrics, &tail));
    eprintln!(
        "churn: {:?} at t={:.1}s, {} peers / {} regions / {} shards, {} events, \
         {} trace events ({} dropped), digest {:016x}, {} workers",
        result.outcome,
        result.elapsed.as_secs_f64(),
        cfg.topo.peers,
        cfg.topo.regions,
        cfg.num_shards,
        result.events_processed,
        result.trace.len(),
        result.trace.dropped(),
        result.trace.digest(),
        cfg.shard_workers,
    );
    eprintln!(
        "swap dynamics: {} joins, {} rejoins, {} leaves, {} refused petitions, \
         {} refused tasks",
        result.swap.joins,
        result.swap.rejoins,
        result.swap.leaves,
        result.swap.refused_petitions,
        result.swap.refused_tasks,
    );
}

/// `psim bench-churn`: the churn workload at 1, 2, and 4 workers, wall
/// clock measured, plus a resident-memory proxy. Writes `BENCH_churn.json`.
pub(crate) fn cmd_bench_churn(flags: &Flags) {
    let base = churn_config(flags);
    let seed = flags.u64("seed");
    let out = flags.get("out").expect("table default").to_string();
    let workers_list = [1usize, 2, 4];

    eprintln!(
        "bench-churn: {} peers / {} regions / {} shards, horizon {:.0}s, workers 1/2/4 ...",
        base.topo.peers,
        base.topo.regions,
        base.num_shards,
        base.horizon.as_secs_f64()
    );
    let mut points = Vec::new();
    let mut swap = None;
    for &workers in &workers_list {
        let cfg = ChurnConfig {
            shard_workers: workers,
            // The bench measures raw event throughput; tracing off keeps
            // the ring out of the measurement.
            trace_capacity: None,
            ..base.clone()
        };
        let start = std::time::Instant::now();
        let result = run_churn_or_exit(&cfg, seed);
        let wall = start.elapsed().as_secs_f64();
        let events_per_sec = if wall > 0.0 {
            result.events_processed as f64 / wall
        } else {
            0.0
        };
        eprintln!(
            "  {} workers  {:>10.0} events/s  ({} events, {:.3} s wall, {} windows)",
            workers, events_per_sec, result.events_processed, wall, result.profile.rounds
        );
        points.push(format!(
            "{{\"workers\":{workers},\"events\":{},\"wall_secs\":{wall},\
             \"events_per_sec\":{events_per_sec}}}",
            result.events_processed
        ));
        swap = Some(result.swap);
    }
    crate::bench::warn_if_saturated(*workers_list.iter().max().unwrap_or(&1));

    let swap = swap.expect("at least one bench point ran");
    let json = format!(
        "{{\n  \"bench\": \"churn\",\n  \"peers\": {},\n  \"regions\": {},\n  \
         \"num_shards\": {},\n  \"horizon_secs\": {},\n  \"seed\": {},\n  \
         \"rss_bytes\": {},\n  \"swap\": {{\"joins\": {}, \"rejoins\": {}, \
         \"leaves\": {}, \"refused_petitions\": {}, \"refused_tasks\": {}}},\n  \
         \"points\": [{}]\n}}\n",
        base.topo.peers,
        base.topo.regions,
        base.num_shards,
        base.horizon.as_secs_f64(),
        seed,
        rss_bytes(),
        swap.joins,
        swap.rejoins,
        swap.leaves,
        swap.refused_petitions,
        swap.refused_tasks,
        points.join(", "),
    );
    write_or_exit(&out, &json);
}
