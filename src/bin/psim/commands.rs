//! The declarative command table: one row per subcommand, one row per
//! flag. The parser, the `--help` text, and the flag validation in
//! `main.rs` all derive from [`COMMANDS`], so a flag cannot exist
//! without documentation or vice versa.

/// One `--flag` a subcommand accepts.
pub(crate) struct FlagDef {
    pub(crate) name: &'static str,
    /// `true`: the flag consumes the next argument; `false`: boolean switch.
    pub(crate) takes_value: bool,
    /// Default inserted before parsing (`None` = absent unless given).
    pub(crate) default: Option<&'static str>,
    pub(crate) help: &'static str,
}

/// One subcommand.
pub(crate) struct CommandDef {
    pub(crate) name: &'static str,
    /// Placeholder for the positional argument, if the command takes one.
    pub(crate) positional: Option<&'static str>,
    pub(crate) flags: &'static [FlagDef],
    pub(crate) help: &'static str,
}

pub(crate) const SEED: FlagDef = FlagDef {
    name: "seed",
    takes_value: true,
    default: Some("1"),
    help: "RNG seed",
};
pub(crate) const QUICK: FlagDef = FlagDef {
    name: "quick",
    takes_value: false,
    default: None,
    help: "fewer repetitions (smoke settings)",
};
pub(crate) const STRICT: FlagDef = FlagDef {
    name: "strict",
    takes_value: false,
    default: None,
    help: "exit 3 when the trace ring dropped events",
};
pub(crate) const SHARDS: FlagDef = FlagDef {
    name: "shards",
    takes_value: true,
    default: Some("1"),
    help: "shard domains for the parallel engine (1 = serial)",
};
pub(crate) const SHARD_WORKERS: FlagDef = FlagDef {
    name: "shard-workers",
    takes_value: true,
    default: Some("1"),
    help: "threads for a sharded run (never changes the numbers)",
};

/// `--model` choices shown in the flag help. The canonical table is
/// `ModelKind::ALL` (resolved through `peer_selection::service`); the
/// round-trip test below keeps this string in lock step with it, so the
/// CLI cannot drift from what actually parses.
pub(crate) const MODEL_FLAG_CHOICES: &str =
    "economic|same-priority|quick-peer|random|ucb1|eps-greedy (alias: evaluator; default: blind)";

pub(crate) static COMMANDS: &[CommandDef] = &[
    CommandDef {
        name: "table1",
        positional: None,
        flags: &[],
        help: "print the slice roster and calibrated testbed",
    },
    CommandDef {
        name: "fig",
        positional: Some("<2|3|4|5|6|7|all>"),
        flags: &[QUICK],
        help: "reproduce a figure (default: all)",
    },
    CommandDef {
        name: "extensions",
        positional: None,
        flags: &[QUICK],
        help: "run the future-work studies",
    },
    CommandDef {
        name: "ablation",
        positional: None,
        flags: &[QUICK],
        help: "transport-model ablation table",
    },
    CommandDef {
        name: "transfer",
        positional: None,
        flags: &[
            FlagDef {
                name: "size-mb",
                takes_value: true,
                default: Some("10"),
                help: "file size in MB",
            },
            FlagDef {
                name: "parts",
                takes_value: true,
                default: Some("10"),
                help: "number of file parts",
            },
            SEED,
            FlagDef {
                name: "model",
                takes_value: true,
                default: None,
                help: MODEL_FLAG_CHOICES,
            },
        ],
        help: "run one file distribution",
    },
    CommandDef {
        name: "task",
        positional: None,
        flags: &[
            FlagDef {
                name: "work",
                takes_value: true,
                default: Some("120"),
                help: "task size in Gops",
            },
            FlagDef {
                name: "input-mb",
                takes_value: true,
                default: Some("0"),
                help: "task input size in MB",
            },
            SEED,
            FlagDef {
                name: "model",
                takes_value: true,
                default: None,
                help: MODEL_FLAG_CHOICES,
            },
        ],
        help: "run one task campaign",
    },
    CommandDef {
        name: "sweep",
        positional: Some("<grid>"),
        flags: &[
            FlagDef {
                name: "workers",
                takes_value: true,
                default: Some("0"),
                help: "worker threads; 0 = auto (never changes the numbers)",
            },
            SEED,
            QUICK,
            FlagDef {
                name: "csv",
                takes_value: true,
                default: None,
                help: "also write the CSV to FILE",
            },
            FlagDef {
                name: "json",
                takes_value: true,
                default: None,
                help: "write the campaign JSON to FILE",
            },
            FlagDef {
                name: "prom",
                takes_value: true,
                default: None,
                help: "write cell-tagged metrics exposition to FILE",
            },
        ],
        help: "run a named grid campaign (fig345, fig67); CSV on stdout",
    },
    CommandDef {
        name: "csv",
        positional: None,
        flags: &[
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("target/figures"),
                help: "output directory",
            },
            QUICK,
        ],
        help: "write every figure's series as CSV",
    },
    CommandDef {
        name: "bench-engine",
        positional: None,
        flags: &[
            FlagDef {
                name: "messages",
                takes_value: true,
                default: Some("1000000"),
                help: "ping-pong message count",
            },
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_engine.json"),
                help: "output file",
            },
        ],
        help: "measure engine throughput, write BENCH_engine.json",
    },
    CommandDef {
        name: "bench-sweep",
        positional: None,
        flags: &[
            FlagDef {
                name: "tasks",
                takes_value: true,
                default: Some("16"),
                help: "wait-bound cells in the pool mode",
            },
            FlagDef {
                name: "cell-ms",
                takes_value: true,
                default: Some("25"),
                help: "per-cell wait in milliseconds",
            },
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_sweep.json"),
                help: "output file",
            },
        ],
        help: "measure sweep cells/second vs workers, write BENCH_sweep.json",
    },
    CommandDef {
        name: "bench-parallel-engine",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("4"),
                help: "shard regions in the multi-region workload",
            },
            FlagDef {
                name: "clients",
                takes_value: true,
                default: Some("8"),
                help: "clients per region",
            },
            FlagDef {
                name: "rounds",
                takes_value: true,
                default: Some("6"),
                help: "distribution rounds per broker",
            },
            SEED,
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_parallel_engine.json"),
                help: "output file",
            },
        ],
        help: "measure sharded-engine events/s at 1,2,4 workers",
    },
    CommandDef {
        name: "churn",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("8"),
                help: "synthetic regions (one broker each)",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("1000"),
                help: "lifecycle peers across all regions",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("1800"),
                help: "virtual-time horizon in seconds",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains (fixed across worker counts)",
            },
            SEED,
            SHARD_WORKERS,
        ],
        help: "churn run on a synthetic testbed -> trace JSONL + metrics + summary",
    },
    CommandDef {
        name: "bench-churn",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("8"),
                help: "synthetic regions (one broker each)",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("20000"),
                help: "lifecycle peers across all regions",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("1800"),
                help: "virtual-time horizon in seconds",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains (fixed across worker counts)",
            },
            SEED,
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_churn.json"),
                help: "output file",
            },
        ],
        help: "measure churn events/s at 1,2,4 workers, write BENCH_churn.json",
    },
    CommandDef {
        name: "profile",
        positional: Some("<churn|scenario>"),
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("8"),
                help: "synthetic regions for the churn workload",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("20000"),
                help: "lifecycle peers for the churn workload",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("1800"),
                help: "virtual-time horizon in seconds",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains for the churn workload",
            },
            FlagDef {
                name: "interval-secs",
                takes_value: true,
                default: Some("60"),
                help: "time-series sampling interval (virtual seconds)",
            },
            FlagDef {
                name: "series-csv",
                takes_value: true,
                default: None,
                help: "also write the series CSV to FILE",
            },
            FlagDef {
                name: "chrome-trace",
                takes_value: true,
                default: None,
                help: "write a Chrome trace_event JSON of the barrier rounds to FILE",
            },
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_profile.json"),
                help: "wall-clock summary output file",
            },
            SEED,
            SHARDS,
            SHARD_WORKERS,
        ],
        help: "telemetry run -> series CSV + Prometheus on stdout, BENCH_profile.json",
    },
    CommandDef {
        name: "trace",
        positional: Some("<scenario>"),
        flags: &[
            SEED,
            FlagDef {
                name: "out",
                takes_value: true,
                default: None,
                help: "output file (default: stdout)",
            },
            STRICT,
            SHARDS,
            SHARD_WORKERS,
        ],
        help: "run a traced scenario, emit JSONL events",
    },
    CommandDef {
        name: "report",
        positional: Some("<scenario>"),
        flags: &[SEED, STRICT, SHARDS, SHARD_WORKERS],
        help: "traced run -> metrics snapshot + transfer timelines",
    },
    CommandDef {
        name: "attribute",
        positional: Some("<scenario>"),
        flags: &[
            SEED,
            FlagDef {
                name: "csv",
                takes_value: true,
                default: None,
                help: "write the phase table CSV to FILE",
            },
            FlagDef {
                name: "prom",
                takes_value: true,
                default: None,
                help: "write metrics exposition to FILE",
            },
            STRICT,
            SHARDS,
            SHARD_WORKERS,
        ],
        help: "traced run -> per-peer latency phase breakdown",
    },
    CommandDef {
        name: "multiregion",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("3"),
                help: "regions (one shard and one broker each)",
            },
            FlagDef {
                name: "clients",
                takes_value: true,
                default: Some("3"),
                help: "clients per region",
            },
            SEED,
            SHARD_WORKERS,
        ],
        help: "traced multi-region run -> JSONL + metrics + phase CSV",
    },
    CommandDef {
        name: "federate",
        positional: None,
        flags: &[
            FlagDef {
                name: "brokers",
                takes_value: true,
                default: Some("4"),
                help: "brokers (one region, one shard each)",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("200"),
                help: "peers across the federation",
            },
            FlagDef {
                name: "homing",
                takes_value: true,
                default: Some("region"),
                help: "client->broker homing: region|hash",
            },
            FlagDef {
                name: "gossip-ms",
                takes_value: true,
                default: Some("30000"),
                help: "broker roster gossip interval",
            },
            FlagDef {
                name: "staleness-ms",
                takes_value: true,
                default: None,
                help: "gossiped-view tolerance (default: 3x gossip)",
            },
            FlagDef {
                name: "forward-hops",
                takes_value: true,
                default: Some("2"),
                help: "petition forwarding hop budget (0 = off)",
            },
            FlagDef {
                name: "kill-broker-at",
                takes_value: true,
                default: None,
                help: "crash a broker at this virtual second",
            },
            FlagDef {
                name: "restart-broker-at",
                takes_value: true,
                default: None,
                help: "restart the killed broker at this virtual second",
            },
            FlagDef {
                name: "kill-region",
                takes_value: true,
                default: Some("0"),
                help: "which broker --kill-broker-at crashes",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("900"),
                help: "virtual run length",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains (capped at --brokers)",
            },
            SEED,
            SHARD_WORKERS,
        ],
        help: "federated run -> JSONL + metrics + summary (worker-invariant)",
    },
    CommandDef {
        name: "bench-federation",
        positional: None,
        flags: &[
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("120"),
                help: "peers across the federation",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("900"),
                help: "virtual run length per point",
            },
            FlagDef {
                name: "kill-at-secs",
                takes_value: true,
                default: Some("300"),
                help: "failover point: crash a broker at this second",
            },
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_federation.json"),
                help: "output file",
            },
            SEED,
        ],
        help: "petition latency vs brokers x staleness + failover recovery",
    },
    CommandDef {
        name: "stream",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("4"),
                help: "regions (one broker and one shard each)",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("32"),
                help: "streaming viewers across all regions",
            },
            FlagDef {
                name: "policy",
                takes_value: true,
                default: Some("sequential"),
                help: "piece selection: sequential|windowed|rarest-window",
            },
            FlagDef {
                name: "window",
                takes_value: true,
                default: Some("8"),
                help: "request-window width (sequential pins it to 1)",
            },
            FlagDef {
                name: "upload",
                takes_value: true,
                default: Some("home"),
                help: "peer uplink distribution: home|mixed|campus",
            },
            FlagDef {
                name: "pieces",
                takes_value: true,
                default: Some("48"),
                help: "pieces the stream is divided into",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("900"),
                help: "virtual run length",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains (capped at --regions)",
            },
            SEED,
            SHARD_WORKERS,
        ],
        help: "streaming run -> JSONL + metrics + summary (worker-invariant)",
    },
    CommandDef {
        name: "bench-streaming",
        positional: None,
        flags: &[
            FlagDef {
                name: "regions",
                takes_value: true,
                default: Some("4"),
                help: "regions (one broker and one shard each)",
            },
            FlagDef {
                name: "peers",
                takes_value: true,
                default: Some("32"),
                help: "streaming viewers across all regions",
            },
            FlagDef {
                name: "policy",
                takes_value: true,
                default: Some("sequential"),
                help: "ignored for the grid; fixes the base config",
            },
            FlagDef {
                name: "window",
                takes_value: true,
                default: Some("8"),
                help: "ignored for the grid; fixes the base config",
            },
            FlagDef {
                name: "upload",
                takes_value: true,
                default: Some("home"),
                help: "peer uplink distribution: home|mixed|campus",
            },
            FlagDef {
                name: "pieces",
                takes_value: true,
                default: Some("48"),
                help: "pieces the stream is divided into",
            },
            FlagDef {
                name: "horizon-secs",
                takes_value: true,
                default: Some("900"),
                help: "virtual run length per point",
            },
            FlagDef {
                name: "num-shards",
                takes_value: true,
                default: Some("4"),
                help: "shard domains (capped at --regions)",
            },
            FlagDef {
                name: "out",
                takes_value: true,
                default: Some("BENCH_streaming.json"),
                help: "output file",
            },
            SEED,
        ],
        help: "startup delay + rebuffering across the policy x window grid",
    },
];
