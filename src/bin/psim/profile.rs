//! `psim profile`: end-to-end deterministic telemetry for one workload.
//!
//! Runs the churn workload (default) or a named scenario with the
//! windowed time-series recorder and the per-shard execution profiler
//! attached, then splits the artifacts by determinism:
//!
//! * **stdout** — the series CSV followed by the Prometheus exposition
//!   of the final merged metrics. Both are keyed only by virtual time
//!   and shard-ordered merges, so the bytes are identical at any
//!   `--shard-workers`; the CI `profile-determinism` job diffs exactly
//!   this stream at 1 vs 4 workers.
//! * **`--series-csv` / `--chrome-trace`** — the same series CSV and a
//!   Chrome `trace_event` JSON of the barrier-round schedule (sim-time
//!   spans only; load it in Perfetto or `chrome://tracing`).
//! * **`--out` (`BENCH_profile.json`)** — the non-deterministic wall-
//!   clock summary: RSS proxy, per-shard busy/wait seconds, plus the
//!   registry memory breakdown read back from the final gauges.

use netsim::metrics::Metrics;
use netsim::profile::ExecutionProfile;
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::TimeSeriesRecorder;
use workloads::churn::ChurnConfig;
use workloads::scenario::{run_scenario_telemetry, TelemetryOptions};
use workloads::telemetry::overlay_series;

use crate::churn::{churn_config, rss_bytes, run_churn_or_exit};
use crate::{named_scenario_or_exit, write_or_exit, Flags};

/// The workload-independent outputs `cmd_profile` renders.
struct ProfileRun {
    workload: String,
    peers: usize,
    regions: usize,
    num_shards: usize,
    series: TimeSeriesRecorder,
    exec_profile: Option<ExecutionProfile>,
    metrics: Metrics,
    events: u64,
    elapsed: SimTime,
}

/// Sum of all gauges whose name starts with `prefix` — reconstructs a
/// fleet-wide total from the per-broker `registry.*.<node>` gauges.
fn gauge_prefix_sum(m: &Metrics, prefix: &str) -> f64 {
    m.gauges_sorted()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

fn profile_churn(flags: &Flags, interval: SimDuration, seed: u64) -> ProfileRun {
    let cfg = ChurnConfig {
        shard_workers: flags.usize("shard-workers").max(1),
        // The profiler measures the engine and the registry, not the
        // trace ring; tracing stays off like in bench-churn.
        trace_capacity: None,
        series_interval: Some(interval),
        profile_execution: true,
        ..churn_config(flags)
    };
    let result = run_churn_or_exit(&cfg, seed);
    ProfileRun {
        workload: "churn".into(),
        peers: cfg.topo.peers,
        regions: cfg.topo.regions,
        num_shards: cfg.num_shards,
        series: result.series.expect("series_interval was set"),
        exec_profile: result.exec_profile,
        metrics: result.metrics,
        events: result.events_processed,
        elapsed: result.elapsed,
    }
}

fn profile_scenario(flags: &Flags, interval: SimDuration, seed: u64) -> ProfileRun {
    let cfg = named_scenario_or_exit(flags);
    let recorder = overlay_series(interval).unwrap_or_else(|e| {
        eprintln!("profile: {e:?}");
        std::process::exit(2);
    });
    let telemetry = TelemetryOptions {
        series: Some(recorder),
        profile_execution: true,
    };
    let result = run_scenario_telemetry(&cfg, seed, telemetry).unwrap_or_else(|e| {
        eprintln!("profile: {e}");
        std::process::exit(2);
    });
    ProfileRun {
        workload: flags.positional.clone().unwrap_or_default(),
        peers: result.testbed.len().saturating_sub(1),
        regions: 1,
        num_shards: cfg.shards(),
        series: result.series.expect("recorder was attached"),
        exec_profile: result.exec_profile,
        metrics: result.metrics,
        events: result.events_processed,
        elapsed: result.elapsed,
    }
}

/// `psim profile [churn|<scenario>]`: deterministic telemetry artifacts
/// on stdout, wall-clock summary in `BENCH_profile.json`.
pub(crate) fn cmd_profile(flags: &Flags) {
    let seed = flags.u64("seed");
    let interval = SimDuration::from_secs(flags.u64("interval-secs").max(1));
    let workload = flags.positional.as_deref().unwrap_or("churn");

    let run = if workload == "churn" {
        profile_churn(flags, interval, seed)
    } else {
        profile_scenario(flags, interval, seed)
    };

    let csv = run.series.to_csv();
    print!("{csv}");
    print!("{}", run.metrics.render_prometheus("psim_profile"));

    if let Some(path) = flags.get("series-csv") {
        write_or_exit(path, &csv);
    }
    if let Some(path) = flags.get("chrome-trace") {
        match &run.exec_profile {
            Some(profile) => write_or_exit(path, &profile.chrome_trace_json()),
            None => {
                eprintln!("profile: no execution profile on a serial run; skipping --chrome-trace")
            }
        }
    }

    let registry_bytes = gauge_prefix_sum(&run.metrics, "registry.bytes.");
    let registry_peers = gauge_prefix_sum(&run.metrics, "registry.peers.");
    let bytes_per_peer = if registry_peers > 0.0 {
        registry_bytes / registry_peers
    } else {
        0.0
    };
    let components: Vec<String> = ["roster", "stats", "ads", "content", "gossip", "scripts"]
        .iter()
        .map(|c| {
            format!(
                "\"{c}\": {}",
                gauge_prefix_sum(&run.metrics, &format!("registry.{c}_bytes."))
            )
        })
        .collect();
    let profiler_json = run
        .exec_profile
        .as_ref()
        .map(|p| p.wall_clock_json())
        .unwrap_or_else(|| "null".into());
    let json = format!(
        "{{\n  \"bench\": \"profile\",\n  \"workload\": \"{}\",\n  \"peers\": {},\n  \
         \"regions\": {},\n  \"num_shards\": {},\n  \"shard_workers\": {},\n  \
         \"horizon_secs\": {},\n  \"interval_secs\": {},\n  \"seed\": {},\n  \
         \"events\": {},\n  \"elapsed_secs\": {},\n  \"rss_bytes\": {},\n  \
         \"registry\": {{\"bytes\": {}, \"peers\": {}, \"bytes_per_peer\": {}, \
         \"components\": {{{}}}}},\n  \"series_rows\": {},\n  \"profiler\": {}\n}}\n",
        run.workload,
        run.peers,
        run.regions,
        run.num_shards,
        flags.usize("shard-workers").max(1),
        flags.u64("horizon-secs"),
        interval.as_secs_f64(),
        seed,
        run.events,
        run.elapsed.as_secs_f64(),
        rss_bytes(),
        registry_bytes,
        registry_peers,
        bytes_per_peer,
        components.join(", "),
        run.series.len(),
        profiler_json,
    );
    let out = flags.get("out").expect("table default").to_string();
    write_or_exit(&out, &json);

    eprintln!(
        "profile: {} — {} events to t={:.1}s, {} series rows, registry {:.0} bytes \
         over {:.0} peers ({:.1} B/peer), rss {} MiB",
        run.workload,
        run.events,
        run.elapsed.as_secs_f64(),
        run.series.len(),
        registry_bytes,
        registry_peers,
        bytes_per_peer,
        rss_bytes() >> 20,
    );
}
