//! `psim` — command-line front end to the peer-selection study.
//!
//! ```text
//! psim table1                               # the slice roster + testbed
//! psim fig all --quick                      # reproduce every figure
//! psim fig 5                                # one figure, paper settings
//! psim extensions --quick                   # future-work studies
//! psim transfer --size-mb 50 --parts 50     # one blind distribution
//! psim transfer --model economic ...        # one selected transfer
//! psim sweep fig345 --workers 4             # parallel grid campaign → CSV
//! psim sweep fig67 --quick --json out.json  # machine-readable campaign
//! psim csv --out target/figures --quick     # machine-readable series
//! psim churn --peers 100000 --regions 16    # churn run on a synthetic testbed
//! psim bench-churn --peers 20000            # churn throughput → BENCH_churn.json
//! psim federate --brokers 4 --homing hash   # multi-broker federated run
//! psim federate --kill-broker-at 300        # broker crash + client re-homing
//! psim bench-federation                     # federation → BENCH_federation.json
//! psim profile churn --peers 100000         # windowed series + Chrome trace
//! ```
//!
//! Every subcommand is described by one row of [`COMMANDS`]: the parser,
//! the `--help` text, and the flag validation all derive from that table,
//! so a flag cannot exist without documentation or vice versa.

mod bench;
mod churn;
mod commands;
mod federate;
mod profile;
mod stream;

use std::collections::HashMap;

use commands::{CommandDef, COMMANDS};

use netsim::node::NodeId;
use netsim::time::SimDuration;
use netsim::trace::Trace;
use overlay::broker::{BrokerCommand, TargetSpec};
use workloads::attribution::{
    aggregate_metrics, attribute_trace, breakdown_by_peer, phase_table_csv, render_phase_table,
};
use workloads::experiments::{
    self, ablation, adaptation, extensions, fig5, fig6, fig7, table1, transfer_study,
};
use workloads::report::{metrics_snapshot_json, render_timelines, transfer_timelines};
use workloads::runner::{default_workers, run_traced};
use workloads::scenario::{named_scenario_list, run_scenario, ScenarioConfig};
use workloads::spec::{ExperimentSpec, MB, PAPER_REPETITIONS};
use workloads::sweep::{named_grid, named_grid_list, run_campaign};

/// Parsed arguments for one subcommand: the table-validated flags plus the
/// positional argument, with typed accessors that exit 2 on malformed input.
struct Flags {
    values: HashMap<&'static str, String>,
    positional: Option<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    fn f64(&self, name: &str) -> f64 {
        self.parse(name)
    }

    fn u64(&self, name: &str) -> u64 {
        self.parse(name)
    }

    fn usize(&self, name: &str) -> usize {
        self.parse(name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str) -> T {
        let raw = self.values.get(name).unwrap_or_else(|| {
            panic!("flag --{name} read without a table default");
        });
        match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("invalid value `{raw}` for --{name}");
                std::process::exit(2);
            }
        }
    }
}

/// Parses `args` against the command's flag table. Unknown flags, missing
/// values, and stray extra positionals are usage errors (exit 2).
fn parse_flags(cmd: &CommandDef, args: &[String]) -> Flags {
    let mut values: HashMap<&'static str, String> = HashMap::new();
    for f in cmd.flags {
        if let Some(d) = f.default {
            values.insert(f.name, d.to_string());
        }
    }
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            let Some(def) = cmd.flags.iter().find(|f| f.name == name) else {
                let valid: Vec<String> =
                    cmd.flags.iter().map(|f| format!("--{}", f.name)).collect();
                eprintln!(
                    "unknown flag --{name} for `psim {}`; valid flags: {}",
                    cmd.name,
                    if valid.is_empty() {
                        "(none)".to_string()
                    } else {
                        valid.join(", ")
                    }
                );
                std::process::exit(2);
            };
            if def.takes_value {
                match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(v) => {
                        values.insert(def.name, v.clone());
                        i += 1;
                    }
                    None => {
                        eprintln!("flag --{name} requires a value");
                        std::process::exit(2);
                    }
                }
            } else {
                values.insert(def.name, "true".to_string());
            }
        } else if cmd.positional.is_some() && positional.is_none() {
            positional = Some(arg.clone());
        } else {
            eprintln!("unexpected argument `{arg}` for `psim {}`", cmd.name);
            std::process::exit(2);
        }
        i += 1;
    }
    Flags { values, positional }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            usage();
            return;
        }
    };
    if matches!(command, "help" | "--help" | "-h") {
        usage();
        return;
    }
    let Some(cmd) = COMMANDS.iter().find(|c| c.name == command) else {
        eprintln!("unknown command: {command}\n");
        usage();
        std::process::exit(2);
    };
    let flags = parse_flags(cmd, rest);
    let spec = if flags.has("quick") {
        ExperimentSpec::quick()
    } else {
        ExperimentSpec::paper_defaults()
    };
    match cmd.name {
        "table1" => println!("{}", table1::run()),
        "fig" => cmd_fig(flags.positional.as_deref().unwrap_or("all"), &spec),
        "extensions" => cmd_extensions(&spec),
        "ablation" => println!("{}", ablation::run(&spec).render()),
        "transfer" => cmd_transfer(&flags),
        "task" => cmd_task(&flags),
        "sweep" => cmd_sweep(&flags),
        "csv" => cmd_csv(&flags, &spec),
        "bench-engine" => bench::cmd_bench_engine(&flags),
        "bench-sweep" => bench::cmd_bench_sweep(&flags),
        "bench-parallel-engine" => bench::cmd_bench_parallel_engine(&flags),
        "multiregion" => cmd_multiregion(&flags),
        "churn" => churn::cmd_churn(&flags),
        "bench-churn" => churn::cmd_bench_churn(&flags),
        "federate" => federate::cmd_federate(&flags),
        "bench-federation" => federate::cmd_bench_federation(&flags),
        "stream" => stream::cmd_stream(&flags),
        "bench-streaming" => stream::cmd_bench_streaming(&flags),
        "profile" => profile::cmd_profile(&flags),
        "trace" => cmd_trace(&flags),
        "report" => cmd_report(&flags),
        "attribute" => cmd_attribute(&flags),
        _ => unreachable!("every table row is dispatched"),
    }
}

/// `--help` is generated from [`COMMANDS`], so it cannot drift from the
/// parser: every command, flag, default, and the exit-code contract.
fn usage() {
    println!("psim — peer selection study (ICPPW'07 reproduction)\n");
    println!("commands:");
    for cmd in COMMANDS {
        let head = match cmd.positional {
            Some(p) => format!("{} {}", cmd.name, p),
            None => cmd.name.to_string(),
        };
        println!("  {head:<27} {}", cmd.help);
        for f in cmd.flags {
            let flag = if f.takes_value {
                format!("--{} <v>", f.name)
            } else {
                format!("--{}", f.name)
            };
            let default = match f.default {
                Some(d) => format!(" (default: {d})"),
                None => String::new(),
            };
            println!("     {flag:<24} {}{default}", f.help);
        }
    }
    println!("  {:<27} this text", "help");
    println!(
        "\nscenarios: {}\ngrids:     {}",
        named_scenario_list().join(", "),
        named_grid_list().join(", ")
    );
    println!(
        "\nexit codes:\n\
         \x20 0  success\n\
         \x20 1  I/O error (cannot write an output file)\n\
         \x20 2  usage error (unknown command, flag, figure, model, scenario, or grid)\n\
         \x20 3  --strict violation (truncated trace)"
    );
}

/// Writes `content` to `path`, honouring the exit-code contract (1 = I/O).
/// The confirmation goes to stderr: stdout is reserved for the artifact
/// itself, so two runs' stdout can be diffed byte-for-byte.
fn write_or_exit(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

/// Seed salt for the CLI's stochastic selectors: zero, because the CLI
/// predates salting and its historical random streams mix nothing in.
const CLI_SEED_SALT: u64 = 0;

/// Resolves `--model` for the one-shot commands through the shared
/// [`peer_selection::service`] table, exiting with the valid list when
/// the spelling is unknown (silently running blind instead would
/// misattribute the numbers).
fn selector_or_exit(model: Option<&str>) -> Option<overlay::selector::SelectorFactory> {
    let name = model?;
    match peer_selection::service::try_factory_for(name, CLI_SEED_SALT) {
        Ok(factory) => Some(factory),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Unwraps a fig6 run, reporting unknown-model errors (with the valid
/// model list) instead of panicking.
fn fig6_or_exit(
    result: Result<workloads::report::FigureReport, fig6::UnknownModelError>,
) -> workloads::report::FigureReport {
    match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_fig(which: &str, spec: &ExperimentSpec) {
    // Figures 2–4 read off the same shared study; run it inside the arm
    // that needs it so every dispatch path is total — no Option to unwrap,
    // and unknown figures take the error path below instead of panicking.
    match which {
        "2" | "3" | "4" => {
            let study = transfer_study::run(spec);
            let report = match which {
                "2" => experiments::fig2::report(&study),
                "3" => experiments::fig3::report(&study),
                _ => experiments::fig4::report(&study),
            };
            println!("{}", report.render());
        }
        "5" => println!("{}", fig5::run(spec).render()),
        "6" => println!("{}", fig6_or_exit(fig6::run(spec)).render()),
        "7" => println!("{}", fig7::run(spec).render()),
        "all" => {
            let study = transfer_study::run(spec);
            println!("{}", experiments::fig2::report(&study).render());
            println!("{}", experiments::fig3::report(&study).render());
            println!("{}", experiments::fig4::report(&study).render());
            println!("{}", fig5::run(spec).render());
            println!("{}", fig6_or_exit(fig6::run(spec)).render());
            println!("{}", fig7::run(spec).render());
        }
        other => {
            eprintln!("unknown figure: {other} (expected 2..7 or all)");
            std::process::exit(2);
        }
    }
}

fn cmd_extensions(spec: &ExperimentSpec) {
    println!("{}", extensions::scaling::run(spec).render());
    println!("{}", extensions::request::run(spec).render());
    println!("{}", extensions::profiles::run(spec).render());
    println!("{}", adaptation::run(spec).render());
    let churn = extensions::churn::run_experiment(1);
    println!("== Extension: churn ==");
    println!(
        "selected transfers: {}/{} completed; departed peer re-selected: {}",
        churn.completed, churn.started, churn.leaver_chosen_after_departure
    );
}

fn cmd_transfer(flags: &Flags) {
    let size = (flags.f64("size-mb").max(0.001) * MB as f64) as u64;
    let parts = flags.f64("parts").max(1.0) as u32;
    let seed = flags.u64("seed");

    let cfg = match selector_or_exit(flags.get("model")) {
        Some(factory) => ScenarioConfig::measurement_setup()
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: "warmup".into(),
                },
            )
            .at(
                SimDuration::from_secs(400),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: size,
                    num_parts: parts,
                    label: "cli".into(),
                },
            )
            .with_selector(factory),
        None => ScenarioConfig::measurement_setup().at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: size,
                num_parts: parts,
                label: "cli".into(),
            },
        ),
    };
    let result = run_scenario(&cfg, seed);
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>9}",
        "peer", "petition(s)", "total(s)", "MB/s", "status"
    );
    for t in result.log.transfers.iter().filter(|t| t.label == "cli") {
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>10.2} {:>9}",
            t.to_name,
            t.petition_latency_secs().unwrap_or(f64::NAN),
            t.total_secs().unwrap_or(f64::NAN),
            t.throughput_bytes_per_sec().unwrap_or(0.0) / 1e6,
            if t.cancelled {
                "cancelled"
            } else if t.completed_at.is_some() {
                "ok"
            } else {
                "pending"
            }
        );
    }
    for s in &result.log.selections {
        println!("selected by {}: {}", s.model, s.chosen_name);
    }
}

fn cmd_task(flags: &Flags) {
    let work = flags.f64("work").max(0.001);
    let input = (flags.f64("input-mb").max(0.0) * MB as f64) as u64;
    let seed = flags.u64("seed");
    let model = flags.get("model");

    let target = if model.is_some() {
        TargetSpec::Selected
    } else {
        TargetSpec::AllClients
    };
    let mut cfg = ScenarioConfig::measurement_setup();
    if let Some(factory) = selector_or_exit(model) {
        cfg = cfg
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: "warmup".into(),
                },
            )
            .with_selector(factory);
    }
    cfg = cfg.at(
        SimDuration::from_secs(400),
        BrokerCommand::SubmitTask {
            target,
            work_gops: work,
            input_bytes: input,
            input_parts: 16,
            label: "cli-task".into(),
        },
    );
    let result = run_scenario(&cfg, seed);
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "peer", "exec(min)", "total(min)", "xfer(min)", "ok"
    );
    for t in result.log.tasks.iter().filter(|t| t.label == "cli-task") {
        let xfer = t
            .input_done_at
            .map(|d| d.duration_since(t.submitted_at).as_secs_f64() / 60.0);
        println!(
            "{:<28} {:>10.2} {:>12.2} {:>12} {:>8}",
            t.on_name,
            t.exec_secs.unwrap_or(f64::NAN) / 60.0,
            t.total_secs().unwrap_or(f64::NAN) / 60.0,
            xfer.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            t.success
        );
    }
}

/// `psim sweep <grid>`: expand a named grid, run every cell × replication
/// on the worker pool, and print the deterministic CSV on stdout — two runs
/// with different `--workers` must emit identical bytes.
fn cmd_sweep(flags: &Flags) {
    let valid = named_grid_list().join(", ");
    let Some(name) = flags.positional.as_deref() else {
        eprintln!("missing grid name; valid grids: {valid}");
        std::process::exit(2);
    };
    let seed = flags.u64("seed");
    let replications = if flags.has("quick") {
        2
    } else {
        PAPER_REPETITIONS
    };
    let Some(spec) = named_grid(name, seed, replications) else {
        eprintln!("unknown grid `{name}`; valid grids: {valid}");
        std::process::exit(2);
    };
    let workers = match flags.usize("workers") {
        0 => default_workers(),
        w => w,
    };
    let campaign = match run_campaign(&spec, workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: invalid grid: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", campaign.to_csv());
    eprint!("{}", campaign.render());
    if let Some(path) = flags.get("csv") {
        write_or_exit(path, &campaign.to_csv());
    }
    if let Some(path) = flags.get("json") {
        write_or_exit(path, &campaign.to_json());
    }
    if let Some(path) = flags.get("prom") {
        write_or_exit(
            path,
            &campaign.merged_metrics().render_prometheus("psim_sweep"),
        );
    }
}

/// `psim multiregion`: one traced multi-region run on the sharded engine,
/// emitting the three determinism artifacts (trace JSONL, metrics snapshot,
/// attribution phase CSV) concatenated on stdout. The CI shard-determinism
/// job byte-diffs this output between `--shard-workers 1` and `4`.
fn cmd_multiregion(flags: &Flags) {
    use workloads::harness::stdout_artifact;
    use workloads::multiregion::{phase_csv, run_multiregion, MultiRegionConfig};

    let cfg = MultiRegionConfig {
        regions: flags.usize("regions").max(1),
        clients_per_region: flags.usize("clients").max(1),
        shard_workers: flags.usize("shard-workers").max(1),
        trace_capacity: Some(1 << 16),
        ..MultiRegionConfig::default()
    };
    let seed = flags.u64("seed");
    let result = run_multiregion(&cfg, seed).unwrap_or_else(|e| {
        eprintln!("multiregion: {e}");
        std::process::exit(2);
    });

    let tail = phase_csv(&result.trace, &result.node_names);
    print!("{}", stdout_artifact(&result.trace, &result.metrics, &tail));
    eprintln!(
        "multiregion: {:?} at t={:.1}s, {} events, {} trace events ({} dropped), \
         digest {:016x}, {} windows, {} workers",
        result.outcome,
        result.elapsed.as_secs_f64(),
        result.events_processed,
        result.trace.len(),
        result.trace.dropped(),
        result.trace.digest(),
        result.profile.rounds,
        cfg.shard_workers,
    );
}

/// Resolves the positional scenario-name argument for `trace`/`report`/
/// `attribute`, exiting with the valid list when missing or unknown, and
/// applies the shared `--shards`/`--shard-workers` axis. Any worker count
/// yields byte-identical output for a fixed shard count and seed — the CI
/// shard-determinism job diffs exactly that.
fn named_scenario_or_exit(flags: &Flags) -> ScenarioConfig {
    let valid = named_scenario_list().join(", ");
    let Some(name) = flags.positional.as_deref() else {
        eprintln!("missing scenario name; valid scenarios: {valid}");
        std::process::exit(2);
    };
    match ScenarioConfig::named(name) {
        Some(cfg) => cfg.sharded(flags.usize("shards"), flags.usize("shard-workers")),
        None => {
            eprintln!("unknown scenario `{name}`; valid scenarios: {valid}");
            std::process::exit(2);
        }
    }
}

/// Surfaces trace-ring drops: anything derived from a truncated trace
/// (timelines, attribution) is silently missing the evicted events. Always
/// warns on stderr; exits 3 under `--strict`.
fn check_trace_drops(trace: &Trace, strict: bool) {
    let dropped = trace.dropped();
    if dropped == 0 {
        return;
    }
    eprintln!(
        "warning: trace ring dropped {dropped} events; derived output is incomplete \
         (raise the trace capacity to keep the full history)"
    );
    if strict {
        eprintln!("error: --strict refuses a truncated trace");
        std::process::exit(3);
    }
}

fn cmd_trace(flags: &Flags) {
    let cfg = named_scenario_or_exit(flags);
    let seed = flags.u64("seed");
    let run = run_traced(&cfg, seed);
    let trace = &run.result.trace;
    match flags.get("out") {
        Some(path) => write_or_exit(path, &run.jsonl),
        None => print!("{}", run.jsonl),
    }
    eprintln!(
        "trace: {} events ({} dropped), digest {:016x}, elapsed {:.1}s virtual",
        trace.len(),
        trace.dropped(),
        run.digest,
        run.result.elapsed.as_secs_f64(),
    );
    check_trace_drops(trace, flags.has("strict"));
}

fn cmd_report(flags: &Flags) {
    let cfg = named_scenario_or_exit(flags);
    let seed = flags.u64("seed");
    let run = run_traced(&cfg, seed);
    let timelines = transfer_timelines(&run.result.trace);
    println!("{}", metrics_snapshot_json(&run.result.metrics));
    println!();
    print!("{}", render_timelines(&timelines));
    eprintln!(
        "report: {} transfers reconstructed from {} trace events, digest {:016x}",
        timelines.len(),
        run.result.trace.len(),
        run.digest,
    );
    check_trace_drops(&run.result.trace, flags.has("strict"));
}

fn cmd_attribute(flags: &Flags) {
    let cfg = named_scenario_or_exit(flags);
    let seed = flags.u64("seed");
    let run = run_traced(&cfg, seed);
    check_trace_drops(&run.result.trace, flags.has("strict"));

    let attrs = attribute_trace(&run.result.trace);
    let scs = run.result.testbed.scs;
    let label_of = |node: NodeId| {
        scs.iter()
            .position(|&sc| sc == node)
            .map(|i| format!("SC{}", i + 1))
            .unwrap_or_else(|| format!("n{}", node.0))
    };
    let breakdowns = breakdown_by_peer(&attrs, label_of);
    print!("{}", render_phase_table(&breakdowns));

    if let Some(path) = flags.get("csv") {
        write_or_exit(path, &phase_table_csv(&breakdowns));
    }
    if let Some(path) = flags.get("prom") {
        // The exposition carries the run's engine metrics plus the
        // attribution histograms, one deterministic text artifact.
        let mut metrics = run.result.metrics.clone();
        metrics.merge(&aggregate_metrics(&attrs, label_of));
        write_or_exit(path, &metrics.render_prometheus("psim"));
    }
    eprintln!(
        "attribute: {} transfers attributed from {} trace events, digest {:016x}",
        attrs.len(),
        run.result.trace.len(),
        run.digest,
    );
}

fn cmd_csv(flags: &Flags, spec: &ExperimentSpec) {
    let out = flags.get("out").expect("table default").to_string();
    std::fs::create_dir_all(&out).expect("create output dir");
    let study = transfer_study::run(spec);
    let reports = vec![
        ("fig2", experiments::fig2::report(&study)),
        ("fig3", experiments::fig3::report(&study)),
        ("fig4", experiments::fig4::report(&study)),
        ("fig5", fig5::run(spec)),
        ("fig6", fig6_or_exit(fig6::run(spec))),
        ("fig7", fig7::run(spec)),
    ];
    for (name, report) in reports {
        let path = format!("{out}/{name}.csv");
        std::fs::write(&path, report.to_csv()).expect("write csv");
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commands::{FlagDef, MODEL_FLAG_CHOICES};
    use overlay::selector::ModelKind;

    /// Satellite of the model-name unification: every spelling the CLI
    /// advertises round-trips through `ModelKind` and resolves through
    /// `peer_selection::service`, and every selectable `ModelKind` is
    /// advertised — the flag table cannot drift from the canonical list.
    #[test]
    fn cli_model_names_round_trip_through_model_kind() {
        let choices = MODEL_FLAG_CHOICES
            .split_once(" (")
            .map(|(names, _)| names)
            .unwrap_or(MODEL_FLAG_CHOICES);
        let advertised: Vec<&str> = choices.split('|').collect();
        assert!(!advertised.is_empty());
        for name in &advertised {
            let kind = ModelKind::parse(name)
                .unwrap_or_else(|| panic!("advertised model `{name}` must parse"));
            assert_eq!(kind.name(), *name, "advertised spellings are canonical");
            assert!(
                peer_selection::service::try_factory_for(name, CLI_SEED_SALT).is_ok(),
                "advertised model `{name}` must resolve to a selector"
            );
        }
        for name in peer_selection::service::selectable_model_names() {
            assert!(
                advertised.contains(&name.as_str()),
                "selectable model `{name}` missing from MODEL_FLAG_CHOICES"
            );
        }
        // The historical alias keeps working but is not canonical.
        assert_eq!(ModelKind::parse("evaluator"), Some(ModelKind::SamePriority));
        assert!(peer_selection::service::try_factory_for("evaluator", CLI_SEED_SALT).is_ok());
    }

    /// The flag table's `--model` entries all point at the shared help
    /// string, so there is exactly one list to keep in sync.
    #[test]
    fn model_flags_share_the_single_help_string() {
        let model_flags: Vec<&FlagDef> = COMMANDS
            .iter()
            .flat_map(|c| c.flags.iter())
            .filter(|f| f.name == "model")
            .collect();
        assert!(model_flags.len() >= 2, "transfer and task expose --model");
        for f in model_flags {
            assert_eq!(f.help, MODEL_FLAG_CHOICES);
        }
    }
}
