//! The engine/sweep benchmark subcommands (`bench-engine`, `bench-sweep`,
//! `bench-parallel-engine`). Each measures wall-clock throughput and
//! writes a machine-readable `BENCH_*.json` artifact the CI bench-check
//! job asserts over.

use workloads::sweep::named_grid;
use workloads::sweepbench::{measure_campaign_scaling, measure_pool_scaling, render_scaling_json};

use crate::{write_or_exit, Flags};

pub(crate) fn cmd_bench_engine(flags: &Flags) {
    use workloads::enginebench;

    let messages = (flags.f64("messages") as u64).max(1_000);
    let out = flags.get("out").expect("table default").to_string();

    eprintln!("bench-engine: ping-pong {messages} messages (interned metrics) ...");
    let interned = enginebench::pingpong(messages, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event  peak queue {}",
        interned.events_per_sec(),
        interned.ns_per_event(),
        interned.peak_queue_len
    );
    eprintln!("bench-engine: ping-pong {messages} messages (string-keyed baseline) ...");
    let strings = enginebench::pingpong_string_metrics(messages, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event",
        strings.events_per_sec(),
        strings.ns_per_event()
    );
    eprintln!("bench-engine: 8-client broker scenario ...");
    let broker = enginebench::broker_scenario(3, 1);
    eprintln!(
        "  {:>12.0} events/sec  {:>8.1} ns/event  {} events  peak queue {}",
        broker.events_per_sec(),
        broker.ns_per_event(),
        broker.events,
        broker.peak_queue_len
    );
    eprintln!("bench-engine: metrics layer (string vs interned) ...");
    let overhead = enginebench::metrics_overhead(2_000_000);
    eprintln!(
        "  string {:.1} ns/event, interned {:.1} ns/event — {:.2}x",
        overhead.string_ns_per_event,
        overhead.interned_ns_per_event,
        overhead.speedup()
    );
    eprintln!("bench-engine: per-message names (String clone vs Arc<str>) ...");
    let names = enginebench::name_clone_overhead(2_000_000);
    eprintln!(
        "  string {:.1} ns/event, arc {:.1} ns/event — {:.2}x",
        names.string_ns_per_event,
        names.arc_ns_per_event,
        names.speedup()
    );

    let json = enginebench::render_json(&interned, &strings, &broker, &overhead, &names);
    write_or_exit(&out, &json);
}

/// `psim bench-sweep`: the two scaling modes of the campaign driver.
/// Wait-bound cells (the PlanetLab shape: wall-clock-bound remote runs)
/// demonstrate pool scaling on any host; CPU-bound simulated cells show
/// what the local core count allows.
pub(crate) fn cmd_bench_sweep(flags: &Flags) {
    let tasks = flags.usize("tasks").max(1);
    let cell_ms = flags.u64("cell-ms").max(1);
    let out = flags.get("out").expect("table default").to_string();
    let workers_list = [1usize, 2, 4];

    eprintln!("bench-sweep: pool mode, {tasks} wait-bound cells x {cell_ms} ms ...");
    let pool = measure_pool_scaling(
        tasks,
        std::time::Duration::from_millis(cell_ms),
        &workers_list,
    );
    for p in &pool {
        eprintln!(
            "  {} workers  {:>8.2} cells/s  ({:.3} s wall)",
            p.workers, p.cells_per_sec, p.wall_secs
        );
    }

    let grid = "fig345";
    let spec = named_grid(grid, 1, 2).expect("built-in grid");
    let campaign_tasks = spec.expand().map(|c| c.len()).unwrap_or(0) * spec.replications();
    eprintln!("bench-sweep: campaign mode, {grid} x 2 reps ({campaign_tasks} sim cells) ...");
    let campaign = measure_campaign_scaling(&spec, &workers_list).expect("built-in grid is valid");
    for p in &campaign {
        eprintln!(
            "  {} workers  {:>8.2} cells/s  ({:.3} s wall)",
            p.workers, p.cells_per_sec, p.wall_secs
        );
    }

    let json = render_scaling_json(&pool, tasks, cell_ms, &campaign, grid, campaign_tasks);
    warn_if_saturated(*workers_list.iter().max().unwrap_or(&1));
    write_or_exit(&out, &json);
}

/// Warns on stderr when a scaling bench ran with more workers than the host
/// has cores: CPU-bound points past that are expected to be flat, and the
/// JSON's `saturated` flag records the same condition for machine readers.
pub(crate) fn warn_if_saturated(max_workers: usize) {
    let host = workloads::runner::detect_host_parallelism();
    if max_workers > host {
        eprintln!(
            "warning: bench ran with up to {max_workers} workers on a host with \
             {host} usable core(s); CPU-bound speedups are capped at {host}x and \
             flat points past that reflect saturation, not a regression \
             (the JSON carries \"saturated\": true)"
        );
    }
}

/// `psim bench-parallel-engine`: wall-clock events/s of the sharded engine
/// on the multi-region workload at 1, 2, and 4 workers, plus the
/// critical-path model. Writes `BENCH_parallel_engine.json`.
pub(crate) fn cmd_bench_parallel_engine(flags: &Flags) {
    use workloads::enginebench;
    use workloads::multiregion::MultiRegionConfig;

    let cfg = MultiRegionConfig {
        regions: flags.usize("regions").max(1),
        clients_per_region: flags.usize("clients").max(1),
        rounds: flags.usize("rounds").max(1),
        ..MultiRegionConfig::default()
    };
    let seed = flags.u64("seed");
    let out = flags.get("out").expect("table default").to_string();
    let workers_list = [1usize, 2, 4];

    eprintln!(
        "bench-parallel-engine: {} regions x {} clients, {} rounds, workers 1/2/4 ...",
        cfg.regions, cfg.clients_per_region, cfg.rounds
    );
    let points = enginebench::parallel_engine(&cfg, &workers_list, seed);
    let base = points.first().map(|p| p.events_per_sec()).unwrap_or(0.0);
    for p in &points {
        eprintln!(
            "  {} workers  {:>10.0} events/s  ({:.2}x measured, {:.2}x occupancy, {} rounds)",
            p.workers,
            p.events_per_sec(),
            if base > 0.0 {
                p.events_per_sec() / base
            } else {
                0.0
            },
            p.occupancy(),
            p.rounds,
        );
    }
    warn_if_saturated(*workers_list.iter().max().unwrap_or(&1));
    let json = enginebench::render_parallel_json(&cfg, &points);
    write_or_exit(&out, &json);
}
