//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the real rand cannot be
//! fetched. This crate vendors the tiny subset the workspace uses: the
//! [`RngCore`] trait (implemented by `netsim::SimRng`), the [`Error`] type
//! its `try_fill_bytes` signature requires, and [`rngs::mock::StepRng`]
//! used by benches. The simulator's own generators do all the real random
//! number work; this crate only supplies the trait vocabulary.

use std::fmt;

/// Error type for fallible RNG operations (mirrors `rand::Error`).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random number generator trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Mock generators (mirrors `rand::rngs::mock`).
pub mod rngs {
    /// Mock generators for testing.
    pub mod mock {
        use super::super::{Error, RngCore};

        /// A deterministic counter "generator": yields `initial`,
        /// `initial + increment`, `initial + 2*increment`, ... (wrapping).
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial` stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(8);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_u64().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let bytes = self.next_u64().to_le_bytes();
                    rem.copy_from_slice(&bytes[..rem.len()]);
                }
            }

            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::RngCore;

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(1, 7);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u32(), 15);
        let mut buf = [0u8; 11];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(&buf[..8], &22u64.to_le_bytes());
    }
}
