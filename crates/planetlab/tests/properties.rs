//! Property-based tests for the testbed synthesis.

use planetlab::builder::{build, TestbedConfig};
use planetlab::profile::{synthetic_profile, NodeProfile};
use planetlab::rtt::{haversine_km, RttModel};
use planetlab::sites::{Role, Site};
use proptest::prelude::*;

fn site(lat: f64, lon: f64) -> Site {
    Site {
        hostname: "x.example",
        city: "X",
        country: "XX",
        lat,
        lon,
        role: Role::SliceMember,
    }
}

proptest! {
    /// Haversine distance is symmetric, non-negative and bounded by half
    /// the Earth's circumference.
    #[test]
    fn haversine_metric_properties(
        lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
        lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
    ) {
        let d12 = haversine_km(lat1, lon1, lat2, lon2);
        let d21 = haversine_km(lat2, lon2, lat1, lon1);
        prop_assert!(d12 >= 0.0);
        prop_assert!((d12 - d21).abs() < 1e-9);
        prop_assert!(d12 <= 20_037.6, "exceeds half circumference: {d12}");
        let self_d = haversine_km(lat1, lon1, lat1, lon1);
        prop_assert!(self_d < 1e-9);
    }

    /// Synthesized RTT is symmetric, at least the floor, and monotone in
    /// path inflation.
    #[test]
    fn rtt_synthesis_properties(
        lat1 in -60.0f64..70.0, lon1 in -170.0f64..170.0,
        lat2 in -60.0f64..70.0, lon2 in -170.0f64..170.0,
        inflation in 1.0f64..4.0,
    ) {
        let a = site(lat1, lon1);
        let b = site(lat2, lon2);
        let m = RttModel { path_inflation: inflation, floor_ms: 1.5, jitter_frac: 0.1 };
        let rtt = m.rtt_ms(&a, &b);
        prop_assert!(rtt >= 2.0 * m.floor_ms);
        prop_assert!((m.rtt_ms(&b, &a) - rtt).abs() < 1e-9);
        let bigger = RttModel { path_inflation: inflation * 1.5, ..m.clone() };
        prop_assert!(bigger.rtt_ms(&a, &b) >= rtt - 1e-9);
    }

    /// Synthetic profiles are pure functions of the hostname and always
    /// land inside the documented parameter bands.
    #[test]
    fn synthetic_profiles_stable_and_banded(name in "[a-z]{1,20}\\.[a-z]{2,10}\\.[a-z]{2,3}") {
        let p1 = synthetic_profile(&name);
        let p2 = synthetic_profile(&name);
        prop_assert_eq!(&p1, &p2);
        prop_assert!((4.0..=16.0).contains(&p1.up_mbps));
        prop_assert!(p1.loss >= 0.0001 && p1.loss <= 0.0012);
        prop_assert!((0.8..=3.0).contains(&p1.cpu_gops));
        prop_assert!(p1.mean_responsiveness_secs() > 0.0);
        prop_assert!(p1.effective_gops() > 0.0);
    }

    /// Every slice size builds a consistent testbed: SCs keep ids 1..=8,
    /// all paths are populated symmetric, and the broker is node 0.
    #[test]
    fn any_slice_size_builds_consistently(others in 0usize..17) {
        let tb = build(&TestbedConfig::slice_with_others(others));
        prop_assert_eq!(tb.len(), 9 + others);
        prop_assert_eq!(tb.broker, netsim::node::NodeId(0));
        for n in 1..=8u8 {
            prop_assert_eq!(tb.sc(n), netsim::node::NodeId(n as u32));
        }
        for a in tb.topology.node_ids() {
            for b in tb.topology.node_ids() {
                let p = tb.topology.path(a, b);
                prop_assert_eq!(p, tb.topology.path(b, a));
                if a != b {
                    prop_assert!(p.one_way_delay.as_nanos() > 0);
                }
            }
        }
    }

    /// Profile → netsim conversion round-trips the key quantities.
    #[test]
    fn profile_conversion_roundtrips(mbps in 0.1f64..1000.0, loss in 0.0f64..0.5) {
        let p = NodeProfile::healthy().with_bandwidth_mbps(mbps).with_loss(loss);
        let link = p.to_access_link();
        prop_assert!((link.up_bytes_per_sec - mbps * 125_000.0).abs() < 1.0);
        prop_assert!((link.loss - loss).abs() < 1e-12);
        let spec = p.to_node_spec("h");
        prop_assert_eq!(spec.cpu.base_gops, p.cpu_gops);
    }
}
