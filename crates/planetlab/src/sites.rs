//! The node catalog: every host from the paper's Table 1, plus the broker.
//!
//! The paper's slice contained 25 PlanetLab hosts; eight of them — SC1…SC8,
//! spread over seven EU countries — were used as SimpleClient peers for the
//! measurements, and the `nozomi.lsi.upc.edu` cluster head acted as a broker.
//! Coordinates are approximate university-campus locations, good to a few km,
//! which is far below the precision the RTT synthesis needs.

/// Role a host plays in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Broker / governor peer (the nozomi cluster head).
    Broker,
    /// One of the eight measured SimpleClient peers; payload is 1..=8.
    SimpleClient(u8),
    /// Slice member not used as a measurement endpoint.
    SliceMember,
}

/// One catalogued host.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Fully qualified hostname as listed in Table 1.
    pub hostname: &'static str,
    /// City of the hosting institution.
    pub city: &'static str,
    /// ISO-ish country code.
    pub country: &'static str,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Role in the experiments.
    pub role: Role,
}

impl Site {
    /// Short label: `SCn` for measured peers, `broker`, or the hostname.
    pub fn label(&self) -> String {
        match self.role {
            Role::Broker => "broker".to_string(),
            Role::SimpleClient(n) => format!("SC{n}"),
            Role::SliceMember => self.hostname.to_string(),
        }
    }
}

/// The broker host (nozomi cluster head at UPC, Barcelona).
pub const BROKER: Site = Site {
    hostname: "nozomi.lsi.upc.edu",
    city: "Barcelona",
    country: "ES",
    lat: 41.389,
    lon: 2.113,
    role: Role::Broker,
};

/// All 25 PlanetLab hosts of Table 1, in the paper's reading order
/// (left column top-to-bottom, then right column).
pub const TABLE1: [Site; 25] = [
    Site {
        hostname: "ait05.us.es",
        city: "Seville",
        country: "ES",
        lat: 37.389,
        lon: -5.986,
        role: Role::SimpleClient(1),
    },
    Site {
        hostname: "planet1.cs.huji.ac.il",
        city: "Jerusalem",
        country: "IL",
        lat: 31.776,
        lon: 35.198,
        role: Role::SliceMember,
    },
    Site {
        hostname: "system18.ncl-ext.net",
        city: "Newcastle",
        country: "GB",
        lat: 54.980,
        lon: -1.615,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab01.cs.tcd.ie",
        city: "Dublin",
        country: "IE",
        lat: 53.344,
        lon: -6.254,
        role: Role::SimpleClient(3),
    },
    Site {
        hostname: "planetlab01.ethz.ch",
        city: "Zurich",
        country: "CH",
        lat: 47.377,
        lon: 8.548,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.esi.ucm.es",
        city: "Madrid",
        country: "ES",
        lat: 40.452,
        lon: -3.728,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.poly.edu",
        city: "New York",
        country: "US",
        lat: 40.694,
        lon: -73.987,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab2.ls.fi.upm.es",
        city: "Madrid",
        country: "ES",
        lat: 40.405,
        lon: -3.839,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab2.upc.es",
        city: "Barcelona",
        country: "ES",
        lat: 41.389,
        lon: 2.113,
        role: Role::SliceMember,
    },
    Site {
        hostname: "lsirextpc01.epfl.ch",
        city: "Lausanne",
        country: "CH",
        lat: 46.519,
        lon: 6.567,
        role: Role::SimpleClient(6),
    },
    Site {
        hostname: "ricepl1.cs.rice.edu",
        city: "Houston",
        country: "US",
        lat: 29.717,
        lon: -95.402,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planet2.seattle.intel-research.net",
        city: "Seattle",
        country: "US",
        lat: 47.610,
        lon: -122.333,
        role: Role::SliceMember,
    },
    Site {
        hostname: "edi.tkn.tu-berlin.de",
        city: "Berlin",
        country: "DE",
        lat: 52.512,
        lon: 13.327,
        role: Role::SimpleClient(5),
    },
    Site {
        hostname: "planet01.hhi.fraunhofer.de",
        city: "Berlin",
        country: "DE",
        lat: 52.525,
        lon: 13.314,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planet1.manchester.ac.uk",
        city: "Manchester",
        country: "GB",
        lat: 53.467,
        lon: -2.234,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.net-research.org.uk",
        city: "London",
        country: "GB",
        lat: 51.507,
        lon: -0.128,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planet2.scs.stanford.edu",
        city: "Stanford",
        country: "US",
        lat: 37.428,
        lon: -122.169,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.ssvl.kth.se",
        city: "Stockholm",
        country: "SE",
        lat: 59.347,
        lon: 18.073,
        role: Role::SimpleClient(8),
    },
    Site {
        hostname: "planetlab1.csg.unizh.ch",
        city: "Zurich",
        country: "CH",
        lat: 47.374,
        lon: 8.551,
        role: Role::SimpleClient(4),
    },
    Site {
        hostname: "planetlab1.cslab.ece.ntua.gr",
        city: "Athens",
        country: "GR",
        lat: 37.979,
        lon: 23.783,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.eecs.iu-bremen.de",
        city: "Bremen",
        country: "DE",
        lat: 53.168,
        lon: 8.652,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.hiit.fi",
        city: "Helsinki",
        country: "FI",
        lat: 60.187,
        lon: 24.821,
        role: Role::SimpleClient(2),
    },
    Site {
        hostname: "planetlab5.upc.es",
        city: "Barcelona",
        country: "ES",
        lat: 41.389,
        lon: 2.113,
        role: Role::SliceMember,
    },
    Site {
        hostname: "planetlab1.itwm.fhg.de",
        city: "Kaiserslautern",
        country: "DE",
        lat: 49.430,
        lon: 7.752,
        role: Role::SimpleClient(7),
    },
    Site {
        hostname: "planetlab1.informatik.uni-erlangen.de",
        city: "Erlangen",
        country: "DE",
        lat: 49.573,
        lon: 11.028,
        role: Role::SliceMember,
    },
];

/// The eight SimpleClient hosts, ordered SC1…SC8 (as §4.1 lists them).
pub fn simple_clients() -> Vec<&'static Site> {
    let mut scs: Vec<&'static Site> = TABLE1
        .iter()
        .filter(|s| matches!(s.role, Role::SimpleClient(_)))
        .collect();
    scs.sort_by_key(|s| match s.role {
        Role::SimpleClient(n) => n,
        _ => u8::MAX,
    });
    scs
}

/// Looks up a Table-1 site by hostname.
pub fn find(hostname: &str) -> Option<&'static Site> {
    TABLE1.iter().find(|s| s.hostname == hostname)
}

/// Looks up the SCn site (n in 1..=8).
pub fn simple_client(n: u8) -> Option<&'static Site> {
    TABLE1.iter().find(|s| s.role == Role::SimpleClient(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_25_unique_hosts() {
        assert_eq!(TABLE1.len(), 25);
        let mut names: Vec<&str> = TABLE1.iter().map(|s| s.hostname).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "hostnames must be unique");
    }

    #[test]
    fn exactly_eight_simple_clients_in_order() {
        let scs = simple_clients();
        assert_eq!(scs.len(), 8);
        let expected = [
            "ait05.us.es",
            "planetlab1.hiit.fi",
            "planetlab01.cs.tcd.ie",
            "planetlab1.csg.unizh.ch",
            "edi.tkn.tu-berlin.de",
            "lsirextpc01.epfl.ch",
            "planetlab1.itwm.fhg.de",
            "planetlab1.ssvl.kth.se",
        ];
        for (i, sc) in scs.iter().enumerate() {
            assert_eq!(sc.hostname, expected[i], "SC{}", i + 1);
            assert_eq!(sc.role, Role::SimpleClient(i as u8 + 1));
        }
    }

    #[test]
    fn simple_clients_span_six_countries() {
        // The paper's prose says "seven EU countries", but its own host list
        // has two Swiss and two German SCs: ES, FI, IE, CH, DE, SE = 6
        // distinct countries. We encode what the host list actually says.
        let mut countries: Vec<&str> = simple_clients().iter().map(|s| s.country).collect();
        countries.sort_unstable();
        countries.dedup();
        assert_eq!(countries.len(), 6);
    }

    #[test]
    fn coordinates_are_plausible() {
        for s in &TABLE1 {
            assert!((-90.0..=90.0).contains(&s.lat), "{}", s.hostname);
            assert!((-180.0..=180.0).contains(&s.lon), "{}", s.hostname);
        }
        // All SCs are in Europe (the paper's seven EU countries).
        for sc in simple_clients() {
            assert!(sc.lat > 35.0 && sc.lat < 65.0, "{}", sc.hostname);
            assert!(sc.lon > -10.0 && sc.lon < 30.0, "{}", sc.hostname);
        }
    }

    #[test]
    fn lookup_functions() {
        assert!(find("ait05.us.es").is_some());
        assert!(find("nonexistent.example").is_none());
        assert_eq!(simple_client(7).unwrap().hostname, "planetlab1.itwm.fhg.de");
        assert!(simple_client(0).is_none());
        assert!(simple_client(9).is_none());
    }

    #[test]
    fn labels_render() {
        assert_eq!(BROKER.label(), "broker");
        assert_eq!(simple_client(3).unwrap().label(), "SC3");
        assert_eq!(
            find("ricepl1.cs.rice.edu").unwrap().label(),
            "ricepl1.cs.rice.edu"
        );
    }
}
