//! Calibration of the SC1…SC8 profiles against the paper's measurements.
//!
//! The paper reports exact per-peer numbers only for Fig 2 (time to receive
//! a file-transfer petition); Figs 3–5 and 7 are published as bar charts with
//! qualitative statements (SC7 slowest; last Mb 2–4× slower on SC7; 16-part
//! transfer of 100 Mb averages 1.7 min; whole-file transfer "not worth it").
//! We therefore:
//!
//! * fit each SC's **responsiveness** distribution so its *mean* equals the
//!   paper's Fig 2 value exactly;
//! * choose per-sliver **bandwidth caps** so the average effective transfer
//!   rate is ≈1 MB/s (which reproduces the 1.7 min figure for 100 Mb in 16
//!   parts) with SC7 ~5× slower than the pack;
//! * choose **CPU/load** so "just execution" lands in the paper's
//!   minutes-scale band with SC7 the clear outlier (Fig 7).
//!
//! The paper's published series are kept here as constants so experiment
//! reports can print paper-vs-measured side by side.

use netsim::node::LoadModel;
use netsim::rng::DelayDistribution;

use crate::profile::NodeProfile;

/// Fig 2 — "time in receiving the petition" per SC peer, seconds
/// (SC1…SC8, exactly as printed on the figure).
pub const PAPER_FIG2_PETITION_SECS: [f64; 8] = [12.86, 0.04, 2.79, 0.07, 5.19, 0.35, 27.13, 0.06];

/// Fig 6 — file transmission time by selection model, **4-part** division,
/// seconds: economic, data evaluator (same priority), user preference
/// (quick peer).
pub const PAPER_FIG6_4PARTS_SECS: [f64; 3] = [0.16, 0.25, 0.33];

/// Fig 6 — same, **16-part** division.
pub const PAPER_FIG6_16PARTS_SECS: [f64; 3] = [0.14, 0.14, 0.14];

/// Fig 5 — average transmission time of a 100 Mb file split into 16 parts,
/// minutes ("the transmission time is in average 1.7 minutes").
pub const PAPER_FIG5_16PARTS_AVG_MIN: f64 = 1.7;

/// Fig 4 — the paper states SC7's last-Mb time is 2–4× the other peers'.
pub const PAPER_FIG4_SC7_SLOWDOWN_BAND: (f64, f64) = (2.0, 4.0);

/// Labels SC1…SC8 for report rendering.
pub const SC_LABELS: [&str; 8] = ["SC1", "SC2", "SC3", "SC4", "SC5", "SC6", "SC7", "SC8"];

/// A lognormal whose **mean** is exactly `mean` with shape `sigma`
/// (mean = median · e^{σ²/2} ⇒ median = mean · e^{−σ²/2}).
pub fn lognormal_with_mean(mean: f64, sigma: f64) -> DelayDistribution {
    DelayDistribution::Lognormal {
        median: mean * (-sigma * sigma / 2.0).exp(),
        sigma,
    }
}

/// Shape parameter for each SC's responsiveness: slow, contended nodes have
/// heavier tails (the petition times the paper averaged over 5 runs vary a
/// lot on such nodes).
const SC_RESP_SIGMA: [f64; 8] = [0.8, 0.3, 0.6, 0.3, 0.7, 0.4, 0.9, 0.3];

/// Per-sliver bandwidth cap in Mbit/s for each SC, fitted as described in
/// the module docs (≈1 MB/s pack, SC7 ~5× slower). SC4 — low-RTT Zurich on
/// a fat campus link — is the unambiguous fastest peer, which Fig 6's
/// history-driven models gravitate to.
const SC_BANDWIDTH_MBPS: [f64; 8] = [7.2, 11.2, 8.8, 12.0, 8.0, 9.6, 1.76, 10.8];

/// Access-link loss probability per SC (SC7's path was visibly lossy).
const SC_LOSS: [f64; 8] = [
    0.0010, 0.0003, 0.0005, 0.0003, 0.0008, 0.0004, 0.0040, 0.0003,
];

/// Idle CPU rate (gops) per SC. Advertised CPU deliberately does not track
/// network quality — SC5 has the biggest CPU but sluggish wake-ups — which
/// is exactly the trap the paper's Fig 6 exposes in models that tie-break
/// on CPU speed without responsiveness history.
const SC_CPU_GOPS: [f64; 8] = [1.2, 1.6, 1.3, 1.5, 1.7, 1.4, 1.0, 1.5];

/// Mean background load per SC (SC7 is an oversubscribed node).
const SC_LOAD_MEAN: [f64; 8] = [0.30, 0.15, 0.25, 0.15, 0.35, 0.20, 0.80, 0.15];

/// The calibrated profile of SCn (n in 1..=8). Panics on out-of-range n.
pub fn sc_profile(n: u8) -> NodeProfile {
    assert!((1..=8).contains(&n), "SC index {n} out of range");
    let i = (n - 1) as usize;
    let load_mean = SC_LOAD_MEAN[i];
    let spread = (load_mean * 0.15).min(0.05);
    NodeProfile::healthy()
        .with_bandwidth_mbps(SC_BANDWIDTH_MBPS[i])
        .with_loss(SC_LOSS[i])
        .with_responsiveness(lognormal_with_mean(
            PAPER_FIG2_PETITION_SECS[i],
            SC_RESP_SIGMA[i],
        ))
        .with_cpu(
            SC_CPU_GOPS[i],
            LoadModel::Uniform {
                lo: (load_mean - spread).max(0.0),
                hi: (load_mean + spread).min(0.99),
            },
        )
}

/// All eight calibrated profiles, SC1 first.
pub fn sc_profiles() -> Vec<NodeProfile> {
    (1..=8).map(sc_profile).collect()
}

/// The broker's profile: the nozomi cluster head is a dedicated machine on
/// a university LAN — fast, responsive, lightly loaded.
pub fn broker_profile() -> NodeProfile {
    NodeProfile::healthy()
        .with_bandwidth_mbps(80.0)
        .with_loss(0.0001)
        .with_responsiveness(DelayDistribution::Lognormal {
            median: 0.004,
            sigma: 0.3,
        })
        .with_cpu(3.0, LoadModel::Uniform { lo: 0.0, hi: 0.1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    #[test]
    fn responsiveness_means_match_fig2_exactly() {
        for (i, p) in sc_profiles().iter().enumerate() {
            let mean = p.mean_responsiveness_secs();
            let target = PAPER_FIG2_PETITION_SECS[i];
            assert!(
                (mean - target).abs() / target < 1e-9,
                "SC{}: mean {mean} vs target {target}",
                i + 1
            );
        }
    }

    #[test]
    fn empirical_responsiveness_tracks_fig2() {
        // Sampled means converge to the Fig 2 values (law of large numbers
        // check on the lognormal parameterisation).
        let mut rng = SimRng::new(1234);
        for (i, p) in sc_profiles().iter().enumerate() {
            let n = 60_000;
            let mean: f64 = (0..n)
                .map(|_| p.responsiveness.sample_secs(&mut rng))
                .sum::<f64>()
                / n as f64;
            let target = PAPER_FIG2_PETITION_SECS[i];
            assert!(
                (mean - target).abs() / target < 0.08,
                "SC{}: empirical {mean} vs {target}",
                i + 1
            );
        }
    }

    #[test]
    fn sc7_is_the_bandwidth_outlier() {
        let profiles = sc_profiles();
        let sc7 = &profiles[6];
        for (i, p) in profiles.iter().enumerate() {
            if i != 6 {
                assert!(
                    p.down_bytes_per_sec() > 3.0 * sc7.down_bytes_per_sec(),
                    "SC{} should be much faster than SC7",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn pack_throughput_near_one_mbyte_per_sec() {
        // Mean of the seven healthy SCs ≈ 1 MB/s → 100 MB in 16 parts ≈ 1.7 min.
        let profiles = sc_profiles();
        let pack_mean: f64 = profiles
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 6)
            .map(|(_, p)| p.down_bytes_per_sec())
            .sum::<f64>()
            / 7.0;
        assert!(
            (0.9e6..1.5e6).contains(&pack_mean),
            "pack mean {pack_mean} B/s"
        );
    }

    #[test]
    fn sc7_cpu_is_heavily_loaded() {
        let profiles = sc_profiles();
        let sc7_eff = profiles[6].effective_gops();
        for (i, p) in profiles.iter().enumerate() {
            if i != 6 {
                assert!(p.effective_gops() > 3.0 * sc7_eff, "SC{}", i + 1);
            }
        }
    }

    #[test]
    fn lognormal_with_mean_is_exact() {
        let d = lognormal_with_mean(5.19, 0.7);
        assert!((d.mean_secs() - 5.19).abs() < 1e-12);
        let d0 = lognormal_with_mean(1.0, 0.0);
        assert!((d0.mean_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sc_profile_rejects_zero() {
        sc_profile(0);
    }

    #[test]
    fn broker_is_fast() {
        let b = broker_profile();
        assert!(b.down_bytes_per_sec() > 5e6);
        assert!(b.mean_responsiveness_secs() < 0.01);
        assert!(b.effective_gops() > 2.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the paper's printed ordering
    fn paper_constants_self_consistent() {
        assert_eq!(PAPER_FIG2_PETITION_SECS.len(), SC_LABELS.len());
        // Fig 6 orderings as printed: economic < same priority < quick peer
        // at 4 parts, all equal at 16 parts.
        assert!(PAPER_FIG6_4PARTS_SECS[0] < PAPER_FIG6_4PARTS_SECS[1]);
        assert!(PAPER_FIG6_4PARTS_SECS[1] < PAPER_FIG6_4PARTS_SECS[2]);
        assert!(PAPER_FIG6_16PARTS_SECS.iter().all(|&v| v == 0.14));
    }
}
