//! # planetlab — a synthetic PlanetLab testbed
//!
//! The paper ran on a real PlanetLab slice; this crate rebuilds that testbed
//! as simulation inputs:
//!
//! * [`sites`] — the 25 hosts of the paper's Table 1 (plus the nozomi broker),
//!   with geographic coordinates and their experimental roles (SC1…SC8).
//! * [`rtt`] — great-circle RTT synthesis with path inflation and jitter.
//! * [`profile`] — per-node performance profiles (bandwidth caps, loss,
//!   responsiveness, CPU) convertible to `netsim` types.
//! * [`sliver`] — the sliver-contention model mapping co-tenant population to
//!   background load and wake-up delays.
//! * [`calibration`] — SC profiles fitted to the paper's measured values,
//!   plus the paper's published series as constants.
//! * [`builder`] — assembles a ready-to-run [`netsim::topology::Topology`].
//!
//! ```
//! use planetlab::builder::{build, TestbedConfig};
//!
//! let tb = build(&TestbedConfig::measurement_setup());
//! assert_eq!(tb.len(), 9); // broker + SC1..SC8
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod calibration;
pub mod profile;
pub mod rtt;
pub mod sites;
pub mod sliver;

pub use builder::{build, Testbed, TestbedConfig};
