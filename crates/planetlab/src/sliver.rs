//! Sliver contention: how co-resident slivers degrade a PlanetLab node.
//!
//! PlanetLab virtualizes each node into up to ~100 *slivers* (one per slice).
//! CPU is proportionally shared and the scheduler quantum is coarse, so a
//! node hosting many active slivers exhibits (a) a high background-load
//! fraction and (b) long, heavy-tailed application wake-up delays. This
//! module maps an assumed sliver population onto those two effects, so
//! profiles can be expressed as "this host runs N active slivers" instead of
//! hand-tuning distributions.

use netsim::node::LoadModel;
use netsim::rng::DelayDistribution;

/// Maximum concurrent slivers a PlanetLab node supports (per the paper §4.1).
pub const MAX_SLIVERS: u32 = 100;

/// Contention state of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliverContention {
    /// Active (CPU-consuming) slivers co-resident with ours.
    pub active_slivers: u32,
    /// Fraction of active slivers that are CPU-hungry (vs mostly idle).
    pub hot_fraction: f64,
}

impl SliverContention {
    /// A quiet node: few co-tenants.
    pub fn quiet() -> Self {
        SliverContention {
            active_slivers: 3,
            hot_fraction: 0.2,
        }
    }

    /// A typically loaded node.
    pub fn typical() -> Self {
        SliverContention {
            active_slivers: 12,
            hot_fraction: 0.3,
        }
    }

    /// A badly oversubscribed node (the SC7 pathology).
    pub fn overloaded() -> Self {
        SliverContention {
            active_slivers: 60,
            hot_fraction: 0.6,
        }
    }

    /// Effective number of CPU-hungry competitors.
    pub fn hot_competitors(&self) -> f64 {
        self.active_slivers.min(MAX_SLIVERS) as f64 * self.hot_fraction.clamp(0.0, 1.0)
    }

    /// The background-load model implied by proportional CPU sharing:
    /// with `k` hot competitors our sliver gets `1/(k+1)` of the CPU, i.e.
    /// load `k/(k+1)`, with some spread since populations churn.
    pub fn load_model(&self) -> LoadModel {
        let k = self.hot_competitors();
        let mean = k / (k + 1.0);
        let spread = (mean * 0.2).min(0.1);
        LoadModel::Uniform {
            lo: (mean - spread).max(0.0),
            hi: (mean + spread).min(0.99),
        }
    }

    /// The application wake-up (service) delay implied by scheduler
    /// contention: the median grows linearly with the hot population on top
    /// of a `base` quantum, and the tail gets heavier as the node fills up.
    pub fn responsiveness(&self, base_secs: f64) -> DelayDistribution {
        let k = self.hot_competitors();
        let median = base_secs * (1.0 + k);
        let sigma = 0.3 + 0.7 * (k / MAX_SLIVERS as f64).min(1.0);
        DelayDistribution::Lognormal { median, sigma }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = SliverContention::quiet();
        let t = SliverContention::typical();
        let o = SliverContention::overloaded();
        assert!(q.hot_competitors() < t.hot_competitors());
        assert!(t.hot_competitors() < o.hot_competitors());
    }

    #[test]
    fn load_grows_with_population() {
        let quiet_load = SliverContention::quiet().load_model().mean();
        let over_load = SliverContention::overloaded().load_model().mean();
        assert!(quiet_load < over_load);
        assert!(over_load > 0.9, "60×0.6=36 hot competitors → ~0.97 load");
        assert!(over_load <= 0.99);
    }

    #[test]
    fn load_model_bounds_valid() {
        for c in [
            SliverContention::quiet(),
            SliverContention::typical(),
            SliverContention::overloaded(),
            SliverContention {
                active_slivers: 500,
                hot_fraction: 1.0,
            },
        ] {
            if let LoadModel::Uniform { lo, hi } = c.load_model() {
                assert!(lo >= 0.0 && hi <= 0.99 && lo <= hi);
            } else {
                panic!("expected uniform load model");
            }
        }
    }

    #[test]
    fn sliver_population_clamped() {
        let c = SliverContention {
            active_slivers: 1000,
            hot_fraction: 1.0,
        };
        assert_eq!(c.hot_competitors(), MAX_SLIVERS as f64);
    }

    #[test]
    fn responsiveness_median_scales_linearly() {
        let q = SliverContention::quiet().responsiveness(0.01);
        let o = SliverContention::overloaded().responsiveness(0.01);
        let (
            DelayDistribution::Lognormal { median: mq, .. },
            DelayDistribution::Lognormal { median: mo, .. },
        ) = (q, o)
        else {
            panic!("expected lognormal");
        };
        assert!(mo > 10.0 * mq);
    }

    #[test]
    fn responsiveness_tail_heavier_when_loaded() {
        let q = SliverContention::quiet().responsiveness(0.01);
        let o = SliverContention::overloaded().responsiveness(0.01);
        let (
            DelayDistribution::Lognormal { sigma: sq, .. },
            DelayDistribution::Lognormal { sigma: so, .. },
        ) = (q, o)
        else {
            panic!("expected lognormal");
        };
        assert!(so > sq);
    }
}
