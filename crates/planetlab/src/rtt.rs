//! Geographic RTT synthesis.
//!
//! Wide-area propagation delay tracks great-circle distance well: light in
//! fiber covers ~200 km/ms, and real Internet routes are longer than the
//! geodesic by an inflation factor of roughly 1.5–2.5 (we default to 2.0,
//! consistent with published PlanetLab all-pairs studies). A small fixed
//! access/serialization floor keeps same-city pairs from being unrealistically
//! instantaneous.

use netsim::link::PathSpec;

use crate::sites::Site;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Speed of light in fiber, km per millisecond (≈ 2/3 c).
const FIBER_KM_PER_MS: f64 = 200.0;

/// Parameters of the RTT synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct RttModel {
    /// Route length / geodesic length (≥ 1).
    pub path_inflation: f64,
    /// Fixed one-way floor in ms (access links, serialization, peering).
    pub floor_ms: f64,
    /// Jitter as a fraction of the one-way delay.
    pub jitter_frac: f64,
}

impl Default for RttModel {
    fn default() -> Self {
        RttModel {
            path_inflation: 2.0,
            floor_ms: 1.5,
            jitter_frac: 0.15,
        }
    }
}

/// Great-circle distance between two points, in kilometres (haversine).
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

impl RttModel {
    /// Synthesized one-way delay between two sites, in milliseconds.
    pub fn one_way_ms(&self, a: &Site, b: &Site) -> f64 {
        let km = haversine_km(a.lat, a.lon, b.lat, b.lon);
        self.floor_ms + km * self.path_inflation / FIBER_KM_PER_MS
    }

    /// Synthesized RTT between two sites, in milliseconds.
    pub fn rtt_ms(&self, a: &Site, b: &Site) -> f64 {
        2.0 * self.one_way_ms(a, b)
    }

    /// Builds the [`PathSpec`] for the a→b overlay path.
    pub fn path(&self, a: &Site, b: &Site) -> PathSpec {
        PathSpec::from_owd_ms(self.one_way_ms(a, b), self.jitter_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{find, BROKER};

    #[test]
    fn haversine_known_distances() {
        // Barcelona ↔ Stockholm ≈ 2275 km.
        let bcn = (41.389, 2.113);
        let sto = (59.347, 18.073);
        let d = haversine_km(bcn.0, bcn.1, sto.0, sto.1);
        assert!((d - 2275.0).abs() < 75.0, "distance {d}");
        // Zero distance for identical points.
        assert!(haversine_km(50.0, 8.0, 50.0, 8.0) < 1e-9);
        // Antipodal-ish sanity: Seville ↔ Seattle is transatlantic-scale.
        let far = haversine_km(37.389, -5.986, 47.610, -122.333);
        assert!(far > 7000.0 && far < 10000.0, "distance {far}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let d1 = haversine_km(41.0, 2.0, 60.0, 25.0);
        let d2 = haversine_km(60.0, 25.0, 41.0, 2.0);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn rtt_has_floor_for_same_city() {
        let m = RttModel::default();
        let upc2 = find("planetlab2.upc.es").unwrap();
        let rtt = m.rtt_ms(&BROKER, upc2);
        assert!(rtt >= 2.0 * m.floor_ms);
        assert!(rtt < 10.0, "same-city RTT should be tiny: {rtt}");
    }

    #[test]
    fn european_rtts_in_plausible_band() {
        let m = RttModel::default();
        let helsinki = find("planetlab1.hiit.fi").unwrap();
        let rtt = m.rtt_ms(&BROKER, helsinki);
        // Barcelona ↔ Helsinki measured RTTs are ~55–70 ms.
        assert!((30.0..110.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn transatlantic_exceeds_intra_eu() {
        let m = RttModel::default();
        let berlin = find("edi.tkn.tu-berlin.de").unwrap();
        let seattle = find("planet2.seattle.intel-research.net").unwrap();
        assert!(m.rtt_ms(&BROKER, seattle) > 2.0 * m.rtt_ms(&BROKER, berlin));
    }

    #[test]
    fn path_spec_carries_jitter() {
        let m = RttModel::default();
        let dublin = find("planetlab01.cs.tcd.ie").unwrap();
        let p = m.path(&BROKER, dublin);
        assert!(!p.jitter.is_zero());
        assert!(p.one_way_delay.as_secs_f64() > 0.001);
    }

    #[test]
    fn inflation_scales_rtt() {
        let a = find("planetlab1.hiit.fi").unwrap();
        let flat = RttModel {
            path_inflation: 1.0,
            floor_ms: 0.0,
            jitter_frac: 0.0,
        };
        let inflated = RttModel {
            path_inflation: 3.0,
            floor_ms: 0.0,
            jitter_frac: 0.0,
        };
        let r1 = flat.rtt_ms(&BROKER, a);
        let r3 = inflated.rtt_ms(&BROKER, a);
        assert!((r3 / r1 - 3.0).abs() < 1e-9);
    }
}
