//! Per-node performance profiles.
//!
//! A [`NodeProfile`] bundles everything that makes one PlanetLab host behave
//! like itself: the per-sliver bandwidth cap on its access link, its packet
//! loss, its *responsiveness* (how long the JXTA application waits before
//! being scheduled on a contended sliver), and its effective CPU. Profiles
//! convert directly into `netsim` node specs and access links.

use netsim::link::AccessLink;
use netsim::node::{CpuModel, LoadModel, NodeSpec};
use netsim::rng::DelayDistribution;

/// Complete performance characterisation of one host.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Uplink cap in Mbit/s (PlanetLab slivers are bandwidth-capped).
    pub up_mbps: f64,
    /// Downlink cap in Mbit/s.
    pub down_mbps: f64,
    /// Per-packet loss probability on the access link.
    pub loss: f64,
    /// Application-level service delay (sliver scheduling + JXTA overhead).
    pub responsiveness: DelayDistribution,
    /// Effective idle compute rate in giga-ops/second.
    pub cpu_gops: f64,
    /// Background load stolen by co-resident slivers.
    pub load: LoadModel,
}

impl NodeProfile {
    /// A healthy, lightly loaded host — the baseline for slice members.
    pub fn healthy() -> Self {
        NodeProfile {
            up_mbps: 10.0,
            down_mbps: 10.0,
            loss: 0.0002,
            responsiveness: DelayDistribution::Lognormal {
                median: 0.04,
                sigma: 0.5,
            },
            cpu_gops: 1.5,
            load: LoadModel::Uniform { lo: 0.05, hi: 0.25 },
        }
    }

    /// Builder-style bandwidth override (symmetric, Mbit/s).
    pub fn with_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.up_mbps = mbps;
        self.down_mbps = mbps;
        self
    }

    /// Builder-style responsiveness override.
    pub fn with_responsiveness(mut self, d: DelayDistribution) -> Self {
        self.responsiveness = d;
        self
    }

    /// Builder-style loss override.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style CPU override.
    pub fn with_cpu(mut self, gops: f64, load: LoadModel) -> Self {
        self.cpu_gops = gops;
        self.load = load;
        self
    }

    /// Converts to a `netsim` node spec named `hostname`.
    pub fn to_node_spec(&self, hostname: impl Into<String>) -> NodeSpec {
        NodeSpec {
            name: hostname.into(),
            cpu: CpuModel {
                base_gops: self.cpu_gops,
                load: self.load.clone(),
            },
            service_delay: self.responsiveness.clone(),
        }
    }

    /// Converts to a `netsim` access link.
    pub fn to_access_link(&self) -> AccessLink {
        AccessLink::asymmetric_mbps(self.up_mbps, self.down_mbps, self.loss)
    }

    /// Mean effective download throughput in bytes/second implied by the
    /// bandwidth cap alone (ignoring the TCP bound).
    pub fn down_bytes_per_sec(&self) -> f64 {
        self.down_mbps * 1_000_000.0 / 8.0
    }

    /// Mean responsiveness in seconds — what the paper's Fig 2 measures.
    pub fn mean_responsiveness_secs(&self) -> f64 {
        self.responsiveness.mean_secs()
    }

    /// Mean effective CPU rate (gops) after background load.
    pub fn effective_gops(&self) -> f64 {
        self.cpu_gops * (1.0 - self.load.mean())
    }
}

impl Default for NodeProfile {
    fn default() -> Self {
        NodeProfile::healthy()
    }
}

/// A deterministic pseudo-profile for slice members we have no measurements
/// for: parameters are derived from a hash of the hostname so the testbed is
/// reproducible without carrying 17 hand-written profiles.
pub fn synthetic_profile(hostname: &str) -> NodeProfile {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in hostname.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let unit = |h: u64, shift: u32| ((h >> shift) & 0xFFFF) as f64 / 65535.0;
    let bw = 4.0 + unit(h, 0) * 12.0; // 4–16 Mbit/s
    let resp_median = 0.02 + unit(h, 16) * 0.15; // 20–170 ms median
    let loss = 0.0001 + unit(h, 32) * 0.001;
    let cpu = 0.8 + unit(h, 48) * 2.2; // 0.8–3.0 gops
    let load_mean = 0.1 + unit(h, 24) * 0.4;
    NodeProfile::healthy()
        .with_bandwidth_mbps(bw)
        .with_responsiveness(DelayDistribution::Lognormal {
            median: resp_median,
            sigma: 0.6,
        })
        .with_loss(loss)
        .with_cpu(
            cpu,
            LoadModel::Uniform {
                lo: load_mean - 0.1,
                hi: load_mean + 0.1,
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_profile_is_sane() {
        let p = NodeProfile::healthy();
        assert!(p.down_bytes_per_sec() > 1_000_000.0);
        assert!(p.mean_responsiveness_secs() < 0.2);
        assert!(p.effective_gops() > 0.5);
    }

    #[test]
    fn builders_apply() {
        let p = NodeProfile::healthy()
            .with_bandwidth_mbps(2.0)
            .with_loss(0.01)
            .with_responsiveness(DelayDistribution::Constant(3.0))
            .with_cpu(0.5, LoadModel::Constant(0.8));
        assert_eq!(p.up_mbps, 2.0);
        assert_eq!(p.down_mbps, 2.0);
        assert_eq!(p.loss, 0.01);
        assert_eq!(p.mean_responsiveness_secs(), 3.0);
        assert!((p.effective_gops() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn conversion_to_netsim_types() {
        let p = NodeProfile::healthy().with_bandwidth_mbps(8.0);
        let spec = p.to_node_spec("host.example");
        assert_eq!(spec.name, "host.example");
        assert_eq!(spec.cpu.base_gops, p.cpu_gops);
        let link = p.to_access_link();
        assert!((link.up_bytes_per_sec - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn synthetic_profiles_are_deterministic_and_distinct() {
        let a1 = synthetic_profile("planetlab1.poly.edu");
        let a2 = synthetic_profile("planetlab1.poly.edu");
        assert_eq!(a1, a2);
        let b = synthetic_profile("ricepl1.cs.rice.edu");
        assert_ne!(a1, b);
    }

    #[test]
    fn synthetic_profiles_in_band() {
        for host in ["a.example", "b.example", "c.example", "d.example"] {
            let p = synthetic_profile(host);
            assert!((4.0..=16.0).contains(&p.up_mbps));
            assert!(p.loss < 0.0012);
            assert!((0.8..=3.0).contains(&p.cpu_gops));
            assert!(p.mean_responsiveness_secs() < 0.5);
        }
    }
}
