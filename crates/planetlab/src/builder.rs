//! Assembles a `netsim` topology from the site catalog and profiles.

use netsim::node::NodeId;
use netsim::topology::Topology;

use crate::calibration::{broker_profile, sc_profile};
use crate::profile::{synthetic_profile, NodeProfile};
use crate::rtt::RttModel;
use crate::sites::{Role, Site, BROKER, TABLE1};

/// What to build.
#[derive(Debug, Clone, Default)]
pub struct TestbedConfig {
    /// The RTT synthesis model.
    pub rtt: RttModel,
    /// When true, all 25 Table-1 hosts are instantiated; when false only the
    /// broker and the eight SC peers (the paper's measurement setup).
    pub full_slice: bool,
    /// In full-slice builds, caps how many non-SC slice members join
    /// (None = all 17). Lets scaling experiments sweep the peer count.
    pub max_others: Option<usize>,
    /// Profile overrides by hostname, applied last.
    pub overrides: Vec<(String, NodeProfile)>,
}

impl TestbedConfig {
    /// The paper's measurement setup: broker + SC1…SC8.
    pub fn measurement_setup() -> Self {
        TestbedConfig::default()
    }

    /// The full 25-node slice plus the broker.
    pub fn full_slice() -> Self {
        TestbedConfig {
            full_slice: true,
            ..TestbedConfig::default()
        }
    }

    /// Full slice capped at `n` non-SC members (scaling sweeps).
    pub fn slice_with_others(n: usize) -> Self {
        TestbedConfig {
            full_slice: true,
            max_others: Some(n),
            ..TestbedConfig::default()
        }
    }

    /// Adds a profile override for `hostname`.
    pub fn with_override(mut self, hostname: impl Into<String>, profile: NodeProfile) -> Self {
        self.overrides.push((hostname.into(), profile));
        self
    }
}

/// A built testbed: the topology plus the node-id roster.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The simulated network.
    pub topology: Topology,
    /// The broker's node id.
    pub broker: NodeId,
    /// SC1…SC8 node ids (index 0 is SC1).
    pub scs: [NodeId; 8],
    /// Any additional slice members (full-slice builds only).
    pub others: Vec<NodeId>,
}

impl Testbed {
    /// The node id of SCn (n in 1..=8).
    pub fn sc(&self, n: u8) -> NodeId {
        assert!((1..=8).contains(&n), "SC index {n} out of range");
        self.scs[(n - 1) as usize]
    }

    /// All client node ids (SCs then others), excluding the broker.
    pub fn clients(&self) -> Vec<NodeId> {
        self.scs
            .iter()
            .copied()
            .chain(self.others.iter().copied())
            .collect()
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Always false — a testbed has at least the broker.
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn profile_for(site: &Site, overrides: &[(String, NodeProfile)]) -> NodeProfile {
    if let Some((_, p)) = overrides.iter().find(|(h, _)| h == site.hostname) {
        return p.clone();
    }
    match site.role {
        Role::Broker => broker_profile(),
        Role::SimpleClient(n) => sc_profile(n),
        Role::SliceMember => synthetic_profile(site.hostname),
    }
}

/// Builds the testbed described by `config`.
pub fn build(config: &TestbedConfig) -> Testbed {
    let mut sites: Vec<&Site> = vec![&BROKER];
    if config.full_slice {
        sites.extend(crate::sites::simple_clients());
        let mut quota = config.max_others.unwrap_or(usize::MAX);
        for site in TABLE1.iter() {
            if matches!(site.role, Role::SliceMember) && quota > 0 {
                sites.push(site);
                quota -= 1;
            }
        }
    } else {
        sites.extend(crate::sites::simple_clients());
    }

    let mut topology = Topology::new();
    let mut ids = Vec::with_capacity(sites.len());
    for site in &sites {
        let profile = profile_for(site, &config.overrides);
        let id = topology.add_node(
            profile.to_node_spec(site.hostname),
            profile.to_access_link(),
        );
        ids.push(id);
    }

    // Pairwise geographic paths (symmetric).
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let path = config.rtt.path(sites[i], sites[j]);
            topology.set_path_symmetric(ids[i], ids[j], path);
        }
    }

    let broker = ids[0];
    let mut scs = [NodeId(0); 8];
    let mut others = Vec::new();
    for (site, id) in sites.iter().zip(&ids).skip(1) {
        match site.role {
            Role::SimpleClient(n) => scs[(n - 1) as usize] = *id,
            _ => others.push(*id),
        }
    }

    Testbed {
        topology,
        broker,
        scs,
        others,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PAPER_FIG2_PETITION_SECS;

    #[test]
    fn measurement_setup_has_nine_nodes() {
        let tb = build(&TestbedConfig::measurement_setup());
        assert_eq!(tb.len(), 9);
        assert!(tb.others.is_empty());
        assert_eq!(tb.clients().len(), 8);
        assert!(!tb.is_empty());
    }

    #[test]
    fn full_slice_has_26_nodes() {
        let tb = build(&TestbedConfig::full_slice());
        assert_eq!(tb.len(), 26);
        assert_eq!(tb.others.len(), 17);
        assert_eq!(tb.clients().len(), 25);
    }

    #[test]
    fn full_slice_scs_keep_low_node_ids() {
        // SCs occupy node ids 1..=8 in every build, so experiments can
        // address them uniformly regardless of slice size.
        let tb = build(&TestbedConfig::full_slice());
        for n in 1..=8u8 {
            assert_eq!(tb.sc(n), NodeId(n as u32));
        }
    }

    #[test]
    fn slice_with_others_caps_members() {
        let tb = build(&TestbedConfig::slice_with_others(5));
        assert_eq!(tb.others.len(), 5);
        assert_eq!(tb.len(), 1 + 8 + 5);
        let none = build(&TestbedConfig::slice_with_others(0));
        assert_eq!(none.len(), 9);
        // Capping above the catalog size is a no-op.
        let all = build(&TestbedConfig::slice_with_others(100));
        assert_eq!(all.len(), 26);
    }

    #[test]
    fn sc_roster_matches_hostnames() {
        let tb = build(&TestbedConfig::measurement_setup());
        assert_eq!(tb.topology.node(tb.sc(1)).name, "ait05.us.es");
        assert_eq!(tb.topology.node(tb.sc(7)).name, "planetlab1.itwm.fhg.de");
        assert_eq!(tb.topology.node(tb.broker).name, "nozomi.lsi.upc.edu");
    }

    #[test]
    fn sc_service_delays_are_calibrated() {
        let tb = build(&TestbedConfig::measurement_setup());
        for n in 1..=8u8 {
            let spec = tb.topology.node(tb.sc(n));
            let mean = spec.service_delay.mean_secs();
            let target = PAPER_FIG2_PETITION_SECS[(n - 1) as usize];
            assert!(
                (mean - target).abs() / target < 1e-9,
                "SC{n} mean {mean} target {target}"
            );
        }
    }

    #[test]
    fn paths_are_geographic_and_symmetric() {
        let tb = build(&TestbedConfig::measurement_setup());
        // broker (Barcelona) ↔ SC2 (Helsinki) is farther than broker ↔ SC1 (Seville).
        let to_helsinki = tb.topology.path(tb.broker, tb.sc(2)).one_way_delay;
        let to_seville = tb.topology.path(tb.broker, tb.sc(1)).one_way_delay;
        assert!(to_helsinki > to_seville);
        assert_eq!(
            tb.topology.path(tb.broker, tb.sc(2)),
            tb.topology.path(tb.sc(2), tb.broker)
        );
    }

    #[test]
    fn overrides_apply() {
        let custom = NodeProfile::healthy().with_bandwidth_mbps(0.5);
        let cfg = TestbedConfig::measurement_setup().with_override("ait05.us.es", custom);
        let tb = build(&cfg);
        let link = tb.topology.access(tb.sc(1));
        assert!((link.up_bytes_per_sec - 62_500.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sc_accessor_bounds() {
        let tb = build(&TestbedConfig::measurement_setup());
        tb.sc(9);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&TestbedConfig::full_slice());
        let b = build(&TestbedConfig::full_slice());
        for id in a.topology.node_ids() {
            assert_eq!(a.topology.node(id), b.topology.node(id));
            assert_eq!(a.topology.access(id), b.topology.access(id));
        }
    }
}
