//! Scenario wiring: testbed → engine → broker + clients → run → records.

use netsim::engine::{Engine, RunOutcome};
use netsim::metrics::Metrics;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::Trace;
use netsim::transport::TransportConfig;
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, RetryPolicy, TargetSpec};
use overlay::client::{ClientCommand, ClientConfig, SimpleClient};
use overlay::message::OverlayMsg;
use overlay::records::{RecordSink, RunLog};
use overlay::selector::PeerSelector;
use planetlab::builder::{build, Testbed, TestbedConfig};

/// Factory producing a fresh selector per replication (selectors are
/// stateful and not clonable).
pub type SelectorFactory = Box<dyn Fn(u64) -> Box<dyn PeerSelector> + Sync>;

/// Everything needed to run one scenario replication.
pub struct ScenarioConfig {
    /// Which testbed to build.
    pub testbed: TestbedConfig,
    /// Transport model parameters.
    pub transport: TransportConfig,
    /// Broker command script: `(delay from start, command)`.
    pub commands: Vec<(SimDuration, BrokerCommand)>,
    /// Optional selection model factory.
    pub selector: Option<SelectorFactory>,
    /// Virtual-time safety horizon.
    pub horizon: SimDuration,
    /// Transfer watchdog timeout.
    pub transfer_timeout: SimDuration,
    /// Optional per-SC task-acceptance probability (index 0 = SC1). Lets
    /// experiments shape the §2.2 task statistics without touching the
    /// testbed; defaults to every peer accepting everything.
    pub task_accept_by_sc: Option<[f64; 8]>,
    /// Optional per-SC petition-refusal probability (flaky peers).
    pub transfer_refuse_by_sc: Option<[f64; 8]>,
    /// Scripted client commands: `(sc 1..=8, delay, command)`.
    pub client_commands_by_sc: Option<Vec<(u8, SimDuration, ClientCommand)>>,
    /// Files shared by clients at join: `(sc 1..=8, name, bytes)`.
    pub shared_files_by_sc: Option<Vec<(u8, String, u64)>>,
    /// Whether the broker stops the run once its own scripted work is done.
    /// Disable when clients schedule their own commands (the broker cannot
    /// see those) and bound the run with `horizon` instead.
    pub stop_when_idle: bool,
    /// Retransmission policy handed to the broker (needed for lossy
    /// transports; `None` = no retries).
    pub retry: Option<RetryPolicy>,
    /// When `Some(n)`, the engine records the last `n` typed trace events
    /// and [`ScenarioResult::trace`] carries them out. `None` (the default)
    /// keeps the allocation-free disabled path.
    pub trace_capacity: Option<usize>,
}

impl ScenarioConfig {
    /// The paper's measurement setup with default physics.
    pub fn measurement_setup() -> Self {
        ScenarioConfig {
            testbed: TestbedConfig::measurement_setup(),
            transport: TransportConfig::default(),
            commands: Vec::new(),
            selector: None,
            horizon: SimDuration::from_mins(10 * 60),
            transfer_timeout: SimDuration::from_mins(6 * 60),
            task_accept_by_sc: None,
            transfer_refuse_by_sc: None,
            client_commands_by_sc: None,
            shared_files_by_sc: None,
            stop_when_idle: true,
            retry: None,
            trace_capacity: None,
        }
    }

    /// Enables typed tracing with a ring buffer of `capacity` events.
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The scenarios `psim trace`/`psim report` (and the CI determinism
    /// check) know by name. `None` for an unknown name; see
    /// [`named_scenario_list`] for the valid spellings.
    pub fn named(name: &str) -> Option<Self> {
        use crate::spec::MB;
        let base = ScenarioConfig::measurement_setup();
        match name {
            "smoke" => Some(base.at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: MB,
                    num_parts: 1,
                    label: "smoke".into(),
                },
            )),
            // The Fig 2 setup distilled: one small file per SC, so the
            // petition/wake-up wait dominates everything else on SC7.
            "fig2" => Some(base.at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: MB,
                    num_parts: 1,
                    label: "fig2-petition".into(),
                },
            )),
            // The Fig 3/4 bulk study: 50 MB in 1 MB parts, so data
            // transmission dominates even on SC7.
            "fig234" => Some(base.at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 50 * MB,
                    num_parts: 50,
                    label: "fig234".into(),
                },
            )),
            "fig5" => Some(base.at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 100 * MB,
                    num_parts: 16,
                    label: "fig5-16".into(),
                },
            )),
            "fig5-lossy" => {
                let mut cfg = base.at(
                    SimDuration::from_secs(60),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::AllClients,
                        size_bytes: 100 * MB,
                        num_parts: 16,
                        label: "fig5-16".into(),
                    },
                );
                cfg.transport.message_drop_probability = 0.05;
                cfg.retry = Some(RetryPolicy::default());
                Some(cfg)
            }
            _ => None,
        }
    }

    /// Appends a command.
    pub fn at(mut self, delay: SimDuration, cmd: BrokerCommand) -> Self {
        self.commands.push((delay, cmd));
        self
    }

    /// Installs a selector factory.
    pub fn with_selector(mut self, f: SelectorFactory) -> Self {
        self.selector = Some(f);
        self
    }
}

/// The names [`ScenarioConfig::named`] accepts.
pub fn named_scenario_list() -> &'static [&'static str] {
    &["smoke", "fig2", "fig234", "fig5", "fig5-lossy"]
}

/// The observable outputs of one replication.
pub struct ScenarioResult {
    /// Drained run log (transfers, tasks, selections).
    pub log: RunLog,
    /// Engine metrics.
    pub metrics: Metrics,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Largest number of simultaneously pending events.
    pub peak_queue_len: usize,
    /// The testbed (for node-id → SC mapping in report code).
    pub testbed: Testbed,
    /// The run's typed trace (empty and disabled unless
    /// [`ScenarioConfig::trace_capacity`] was set).
    pub trace: Trace,
}

/// Runs one replication of `cfg` under `seed`.
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> ScenarioResult {
    run_scenario_inner(cfg, seed, cfg.trace_capacity)
}

/// Runs one replication with tracing forced on at `capacity` events,
/// regardless of `cfg.trace_capacity`. Used by the traced runner so callers
/// don't have to mutate a shared config.
pub fn run_scenario_traced(cfg: &ScenarioConfig, seed: u64, capacity: usize) -> ScenarioResult {
    run_scenario_inner(cfg, seed, Some(capacity))
}

fn run_scenario_inner(
    cfg: &ScenarioConfig,
    seed: u64,
    trace_capacity: Option<usize>,
) -> ScenarioResult {
    let testbed = build(&cfg.testbed);
    let sink = RecordSink::new();

    let mut broker_cfg = BrokerConfig::new(seed ^ 0x0B20_CE12);
    broker_cfg.commands = cfg.commands.clone();
    broker_cfg.transfer_timeout = cfg.transfer_timeout;
    broker_cfg.stop_when_idle = cfg.stop_when_idle;
    broker_cfg.retry = cfg.retry;
    if let Some(factory) = &cfg.selector {
        broker_cfg.selector = Some(factory(seed));
    }

    let mut engine: Engine<OverlayMsg> =
        Engine::new(testbed.topology.clone(), cfg.transport.clone(), seed);
    if let Some(capacity) = trace_capacity {
        engine.enable_trace(capacity);
    }
    engine.register(
        testbed.broker,
        Box::new(Broker::new(broker_cfg, sink.clone())),
    );
    for (i, node) in testbed.clients().into_iter().enumerate() {
        let mut client_cfg = ClientConfig::new(testbed.broker);
        if let Some(accept) = &cfg.task_accept_by_sc {
            if i < 8 {
                client_cfg.task_accept_probability = accept[i];
            }
        }
        if let Some(refuse) = &cfg.transfer_refuse_by_sc {
            if i < 8 {
                client_cfg.transfer_refuse_probability = refuse[i];
            }
        }
        if i < 8 {
            let sc = i as u8 + 1;
            if let Some(commands) = &cfg.client_commands_by_sc {
                for (target, delay, cmd) in commands {
                    if *target == sc {
                        client_cfg.commands.push((*delay, cmd.clone()));
                    }
                }
            }
            if let Some(shared) = &cfg.shared_files_by_sc {
                for (target, name, bytes) in shared {
                    if *target == sc {
                        client_cfg.shared_files.push((name.clone(), *bytes));
                    }
                }
            }
        }
        engine.register(
            node,
            Box::new(
                SimpleClient::new(client_cfg, seed.wrapping_mul(31).wrapping_add(i as u64))
                    .with_sink(sink.clone()),
            ),
        );
    }

    let outcome = engine.run_until(SimTime::ZERO + cfg.horizon);
    ScenarioResult {
        log: sink.drain(),
        metrics: engine.metrics().clone(),
        elapsed: engine.now(),
        outcome,
        events_processed: engine.events_processed(),
        peak_queue_len: engine.peak_queue_len(),
        trace: engine.trace().clone(),
        testbed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;
    use overlay::broker::TargetSpec;

    #[test]
    fn scenario_runs_and_stops_when_idle() {
        let cfg = ScenarioConfig::measurement_setup().at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: MB,
                num_parts: 1,
                label: "smoke".into(),
            },
        );
        let result = run_scenario(&cfg, 1);
        assert_eq!(result.outcome, RunOutcome::Stopped);
        assert_eq!(result.log.transfers.len(), 8, "one transfer per SC");
        for t in &result.log.transfers {
            assert!(t.completed_at.is_some(), "{} incomplete", t.to_name);
        }
        assert_eq!(result.testbed.len(), 9);
        assert!(result.metrics.counter("overlay.transfers_completed") == 8);
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let mk = || {
            ScenarioConfig::measurement_setup().at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 5 * MB,
                    num_parts: 5,
                    label: "det".into(),
                },
            )
        };
        let a = run_scenario(&mk(), 7);
        let b = run_scenario(&mk(), 7);
        assert_eq!(a.elapsed, b.elapsed);
        let times_a: Vec<_> = a.log.transfers.iter().map(|t| t.completed_at).collect();
        let times_b: Vec<_> = b.log.transfers.iter().map(|t| t.completed_at).collect();
        assert_eq!(times_a, times_b);
        // Different seed → different timings (jitter, service samples).
        let c = run_scenario(&mk(), 8);
        let times_c: Vec<_> = c.log.transfers.iter().map(|t| t.completed_at).collect();
        assert_ne!(times_a, times_c);
    }
}
