//! Scenario wiring: testbed → engine → broker + clients → run → records.

use netsim::engine::{Actor, Engine, RunOutcome};
use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::parallel::{ParallelError, ShardedEngine};
use netsim::profile::ExecutionProfile;
use netsim::shard::{ShardMap, ShardMapError};
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::trace::Trace;
use netsim::transport::TransportConfig;
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, RetryPolicy, TargetSpec};
use overlay::client::{ClientCommand, ClientConfig, SimpleClient};
use overlay::message::OverlayMsg;
use overlay::records::{RecordSink, RunLog};
use planetlab::builder::{build, Testbed, TestbedConfig};

pub use overlay::selector::SelectorFactory;

/// Everything needed to run one scenario replication.
///
/// Constructible only through [`ScenarioConfig::measurement_setup`] (the
/// paper's defaults, always valid) or a [`ScenarioBuilder`], which validates
/// the whole configuration at [`ScenarioBuilder::build`]. The fields are
/// private on purpose: every invariant the builder checks (SC indices,
/// probability ranges, horizon, idle-stop consistency) stays true for the
/// config's whole life. The only post-build mutators are the invariant-safe
/// conveniences [`at`](ScenarioConfig::at),
/// [`with_selector`](ScenarioConfig::with_selector) and
/// [`traced`](ScenarioConfig::traced).
pub struct ScenarioConfig {
    /// Which testbed to build.
    testbed: TestbedConfig,
    /// Transport model parameters.
    transport: TransportConfig,
    /// Broker command script: `(delay from start, command)`.
    commands: Vec<(SimDuration, BrokerCommand)>,
    /// Optional selection model factory.
    selector: Option<SelectorFactory>,
    /// Virtual-time safety horizon.
    horizon: SimDuration,
    /// Transfer watchdog timeout.
    transfer_timeout: SimDuration,
    /// Optional per-SC task-acceptance probability (index 0 = SC1). Lets
    /// experiments shape the §2.2 task statistics without touching the
    /// testbed; defaults to every peer accepting everything.
    task_accept_by_sc: Option<[f64; 8]>,
    /// Optional per-SC petition-refusal probability (flaky peers).
    transfer_refuse_by_sc: Option<[f64; 8]>,
    /// Scripted client commands: `(sc 1..=8, delay, command)`.
    client_commands_by_sc: Option<Vec<(u8, SimDuration, ClientCommand)>>,
    /// Files shared by clients at join: `(sc 1..=8, name, bytes)`.
    shared_files_by_sc: Option<Vec<(u8, String, u64)>>,
    /// Whether the broker stops the run once its own scripted work is done.
    stop_when_idle: bool,
    /// Retransmission policy handed to the broker (needed for lossy
    /// transports; `None` = no retries).
    retry: Option<RetryPolicy>,
    /// When `Some(n)`, the engine records the last `n` typed trace events
    /// and [`ScenarioResult::trace`] carries them out. `None` (the default)
    /// keeps the allocation-free disabled path.
    trace_capacity: Option<usize>,
    /// Shard domains for the parallel engine: 1 (the default) runs the
    /// serial engine; > 1 partitions nodes round-robin over this many
    /// shards and runs the conservative-lookahead windowed engine.
    shards: usize,
    /// Worker threads for a sharded run (clamped to the shard count).
    /// Deterministic by construction: any worker count yields the same
    /// history for a fixed shard count and seed.
    shard_workers: usize,
}

/// Why a [`ScenarioBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A scripted client command or shared file named an SC outside 1..=8.
    ScIndexOutOfRange {
        /// Which field carried the bad index.
        what: &'static str,
        /// The offending SC index.
        sc: u8,
    },
    /// A probability field left [0, 1] (or was not finite).
    ProbabilityOutOfRange {
        /// Which probability (e.g. `task_accept_by_sc[3]`).
        what: String,
        /// The offending value.
        value: f64,
    },
    /// The virtual-time horizon was zero: the engine would stop at t=0.
    NonPositiveHorizon,
    /// `shards` or `shard_workers` was zero; both must be at least 1.
    ZeroParallelism {
        /// Which knob was zero (`"shards"` or `"shard_workers"`).
        what: &'static str,
    },
    /// `stop_when_idle` was left on while a scripted client generates its
    /// own work (`RequestFile`/`SubmitJob`): the broker cannot see that
    /// work and would stop the run underneath it. Disable idle-stop and
    /// bound the run with the horizon instead.
    IdleStopWithScriptedClients {
        /// The SC whose scripted command generates broker-invisible work.
        sc: u8,
    },
    /// A [`ScenarioBuilder::churn`] pair rejoined at or before its leave:
    /// the client would try to re-enter an overlay it never left.
    RejoinNotAfterLeave {
        /// The SC with the inverted churn window.
        sc: u8,
    },
    /// The shard count cannot partition this testbed (zero, or more
    /// shards than regions for region-major workloads).
    InvalidShardCount {
        /// The rejected shard count.
        num_shards: usize,
        /// How many regions the testbed has.
        regions: usize,
    },
    /// The node → shard assignment was rejected by the shard-map layer.
    ShardMap(ShardMapError),
    /// The sharded engine rejected the topology / shard-map pair (e.g.
    /// a zero cross-shard lookahead would deadlock the window schedule).
    Parallel(ParallelError),
    /// A telemetry series interval of zero virtual time was requested;
    /// the window schedule would never advance.
    ZeroSeriesInterval,
    /// The broker-federation parameters were rejected by
    /// [`overlay::federation::FederationBuilder`].
    Federation(overlay::federation::FederationError),
}

impl From<ShardMapError> for ScenarioError {
    fn from(e: ShardMapError) -> Self {
        ScenarioError::ShardMap(e)
    }
}

impl From<ParallelError> for ScenarioError {
    fn from(e: ParallelError) -> Self {
        ScenarioError::Parallel(e)
    }
}

impl From<TimeSeriesError> for ScenarioError {
    fn from(e: TimeSeriesError) -> Self {
        match e {
            TimeSeriesError::ZeroInterval => ScenarioError::ZeroSeriesInterval,
        }
    }
}

impl From<overlay::federation::FederationError> for ScenarioError {
    fn from(e: overlay::federation::FederationError) -> Self {
        ScenarioError::Federation(e)
    }
}

impl From<crate::harness::HarnessError> for ScenarioError {
    fn from(e: crate::harness::HarnessError) -> Self {
        use crate::harness::HarnessError;
        match e {
            HarnessError::NonPositiveHorizon => ScenarioError::NonPositiveHorizon,
            HarnessError::ZeroParallelism { what } => ScenarioError::ZeroParallelism { what },
            HarnessError::InvalidShardCount {
                num_shards,
                regions,
            } => ScenarioError::InvalidShardCount {
                num_shards,
                regions,
            },
            HarnessError::ShardMap(e) => ScenarioError::ShardMap(e),
            HarnessError::Parallel(e) => ScenarioError::Parallel(e),
            HarnessError::ZeroSeriesInterval => ScenarioError::ZeroSeriesInterval,
            HarnessError::Federation(e) => ScenarioError::Federation(e),
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::ScIndexOutOfRange { what, sc } => {
                write!(f, "{what}: SC index {sc} outside 1..=8")
            }
            ScenarioError::ProbabilityOutOfRange { what, value } => {
                write!(f, "{what}: probability {value} outside [0, 1]")
            }
            ScenarioError::NonPositiveHorizon => {
                write!(f, "horizon must be positive virtual time")
            }
            ScenarioError::ZeroParallelism { what } => {
                write!(f, "{what} must be at least 1")
            }
            ScenarioError::IdleStopWithScriptedClients { sc } => write!(
                f,
                "stop_when_idle with a work-generating scripted client on SC{sc}: \
                 the broker cannot see client-initiated work and would stop under it; \
                 use stop_when_idle(false) and bound the run with the horizon"
            ),
            ScenarioError::RejoinNotAfterLeave { sc } => write!(
                f,
                "churn pair on SC{sc}: the rejoin must come strictly after the leave"
            ),
            ScenarioError::InvalidShardCount {
                num_shards,
                regions,
            } => write!(
                f,
                "num_shards {num_shards} cannot partition a {regions}-region testbed \
                 (need 1 <= num_shards <= regions)"
            ),
            ScenarioError::ShardMap(e) => write!(f, "shard assignment rejected: {e:?}"),
            ScenarioError::Parallel(e) => write!(f, "sharded engine rejected: {e:?}"),
            ScenarioError::ZeroSeriesInterval => {
                write!(f, "telemetry series interval must be positive virtual time")
            }
            ScenarioError::Federation(e) => write!(f, "federation rejected: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Builder for [`ScenarioConfig`]: the only way to set the validated
/// fields. Starts from the paper's measurement defaults and checks every
/// invariant once, at [`build`](ScenarioBuilder::build).
#[must_use = "a builder does nothing until build() is called"]
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
    /// `(sc, leave_at, rejoin_at)` pairs added via [`churn`]
    /// (ScenarioBuilder::churn), kept for ordering validation at build.
    churn_pairs: Vec<(u8, SimDuration, SimDuration)>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::measurement_setup()
    }
}

impl ScenarioBuilder {
    /// Starts from the paper's measurement setup with default physics.
    pub fn measurement_setup() -> Self {
        ScenarioBuilder {
            cfg: ScenarioConfig {
                testbed: TestbedConfig::measurement_setup(),
                transport: TransportConfig::default(),
                commands: Vec::new(),
                selector: None,
                horizon: SimDuration::from_mins(10 * 60),
                transfer_timeout: SimDuration::from_mins(6 * 60),
                task_accept_by_sc: None,
                transfer_refuse_by_sc: None,
                client_commands_by_sc: None,
                shared_files_by_sc: None,
                stop_when_idle: true,
                retry: None,
                trace_capacity: None,
                shards: 1,
                shard_workers: 1,
            },
            churn_pairs: Vec::new(),
        }
    }

    /// Number of shard domains (1 = serial engine; validated ≥ 1 at build).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Worker threads for a sharded run (clamped to the shard count).
    pub fn shard_workers(mut self, workers: usize) -> Self {
        self.cfg.shard_workers = workers;
        self
    }

    /// Replaces the testbed.
    pub fn testbed(mut self, testbed: TestbedConfig) -> Self {
        self.cfg.testbed = testbed;
        self
    }

    /// Replaces the transport model wholesale.
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Sets the transport's message-drop probability (validated at build).
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.cfg.transport.message_drop_probability = p;
        self
    }

    /// Appends a broker command at `delay` from start.
    pub fn at(mut self, delay: SimDuration, cmd: BrokerCommand) -> Self {
        self.cfg.commands.push((delay, cmd));
        self
    }

    /// Installs a selection-model factory.
    pub fn selector(mut self, f: SelectorFactory) -> Self {
        self.cfg.selector = Some(f);
        self
    }

    /// Sets the virtual-time safety horizon.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.cfg.horizon = horizon;
        self
    }

    /// Sets the transfer watchdog timeout.
    pub fn transfer_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.transfer_timeout = timeout;
        self
    }

    /// Per-SC task-acceptance probabilities (index 0 = SC1).
    pub fn task_accept_by_sc(mut self, accept: [f64; 8]) -> Self {
        self.cfg.task_accept_by_sc = Some(accept);
        self
    }

    /// Per-SC petition-refusal probabilities (index 0 = SC1).
    pub fn transfer_refuse_by_sc(mut self, refuse: [f64; 8]) -> Self {
        self.cfg.transfer_refuse_by_sc = Some(refuse);
        self
    }

    /// Appends one scripted client command on `sc` (1..=8).
    pub fn client_command(mut self, sc: u8, delay: SimDuration, cmd: ClientCommand) -> Self {
        self.cfg
            .client_commands_by_sc
            .get_or_insert_with(Vec::new)
            .push((sc, delay, cmd));
        self
    }

    /// Registers a file shared by `sc` (1..=8) at join.
    pub fn shared_file(mut self, sc: u8, name: impl Into<String>, bytes: u64) -> Self {
        self.cfg
            .shared_files_by_sc
            .get_or_insert_with(Vec::new)
            .push((sc, name.into(), bytes));
        self
    }

    /// Scripts one churn cycle on `sc` (1..=8): a graceful Leave at
    /// `leave_at` and a Rejoin at `rejoin_at`. The rejoin re-advertises
    /// the peer under its original identity, so the broker's registry
    /// refresh path (not a fresh insert) is what gets exercised. Ordering
    /// is validated at [`build`](ScenarioBuilder::build).
    pub fn churn(mut self, sc: u8, leave_at: SimDuration, rejoin_at: SimDuration) -> Self {
        self.churn_pairs.push((sc, leave_at, rejoin_at));
        let commands = self.cfg.client_commands_by_sc.get_or_insert_with(Vec::new);
        commands.push((sc, leave_at, ClientCommand::Leave));
        commands.push((sc, rejoin_at, ClientCommand::Rejoin));
        self
    }

    /// Whether the broker stops the run once its scripted work is done.
    pub fn stop_when_idle(mut self, stop: bool) -> Self {
        self.cfg.stop_when_idle = stop;
        self
    }

    /// Retransmission policy for lossy transports.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = Some(retry);
        self
    }

    /// Enables typed tracing with a ring buffer of `capacity` events.
    pub fn traced(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = Some(capacity);
        self
    }

    /// Validates every invariant and returns the finished config.
    pub fn build(self) -> Result<ScenarioConfig, ScenarioError> {
        for &(sc, leave_at, rejoin_at) in &self.churn_pairs {
            if rejoin_at <= leave_at {
                return Err(ScenarioError::RejoinNotAfterLeave { sc });
            }
        }
        let cfg = self.cfg;
        if cfg.horizon == SimDuration::ZERO {
            return Err(ScenarioError::NonPositiveHorizon);
        }
        if cfg.shards == 0 {
            return Err(ScenarioError::ZeroParallelism { what: "shards" });
        }
        if cfg.shard_workers == 0 {
            return Err(ScenarioError::ZeroParallelism {
                what: "shard_workers",
            });
        }
        let check_prob = |what: String, value: f64| {
            if !(0.0..=1.0).contains(&value) {
                return Err(ScenarioError::ProbabilityOutOfRange { what, value });
            }
            Ok(())
        };
        check_prob(
            "transport.message_drop_probability".into(),
            cfg.transport.message_drop_probability,
        )?;
        if let Some(accept) = &cfg.task_accept_by_sc {
            for (i, &p) in accept.iter().enumerate() {
                check_prob(format!("task_accept_by_sc[{i}]"), p)?;
            }
        }
        if let Some(refuse) = &cfg.transfer_refuse_by_sc {
            for (i, &p) in refuse.iter().enumerate() {
                check_prob(format!("transfer_refuse_by_sc[{i}]"), p)?;
            }
        }
        if let Some(commands) = &cfg.client_commands_by_sc {
            for (sc, _, cmd) in commands {
                if !(1..=8).contains(sc) {
                    return Err(ScenarioError::ScIndexOutOfRange {
                        what: "client_commands_by_sc",
                        sc: *sc,
                    });
                }
                // Leave/Instant are passive; only client-initiated *work*
                // (file requests, job submissions) is invisible to the
                // broker's idle detector.
                let generates_work = matches!(
                    cmd,
                    ClientCommand::RequestFile { .. } | ClientCommand::SubmitJob { .. }
                );
                if generates_work && cfg.stop_when_idle {
                    return Err(ScenarioError::IdleStopWithScriptedClients { sc: *sc });
                }
            }
        }
        if let Some(shared) = &cfg.shared_files_by_sc {
            for (sc, _, _) in shared {
                if !(1..=8).contains(sc) {
                    return Err(ScenarioError::ScIndexOutOfRange {
                        what: "shared_files_by_sc",
                        sc: *sc,
                    });
                }
            }
        }
        Ok(cfg)
    }
}

/// One entry of the static scenario table: both [`ScenarioConfig::named`]
/// and [`named_scenario_list`] derive from it, so the two can never drift.
struct NamedScenario {
    name: &'static str,
    build: fn() -> ScenarioConfig,
}

fn named_smoke() -> ScenarioConfig {
    ScenarioConfig::measurement_setup().at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: crate::spec::MB,
            num_parts: 1,
            label: "smoke".into(),
        },
    )
}

// The Fig 2 setup distilled: one small file per SC, so the petition/wake-up
// wait dominates everything else on SC7.
fn named_fig2() -> ScenarioConfig {
    ScenarioConfig::measurement_setup().at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: crate::spec::MB,
            num_parts: 1,
            label: "fig2-petition".into(),
        },
    )
}

// The Fig 3/4 bulk study: 50 MB in 1 MB parts, so data transmission
// dominates even on SC7.
fn named_fig234() -> ScenarioConfig {
    ScenarioConfig::measurement_setup().at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 50 * crate::spec::MB,
            num_parts: 50,
            label: "fig234".into(),
        },
    )
}

fn named_fig5() -> ScenarioConfig {
    ScenarioConfig::measurement_setup().at(
        SimDuration::from_secs(60),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 100 * crate::spec::MB,
            num_parts: 16,
            label: "fig5-16".into(),
        },
    )
}

fn named_fig5_lossy() -> ScenarioConfig {
    ScenarioBuilder::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 100 * crate::spec::MB,
                num_parts: 16,
                label: "fig5-16".into(),
            },
        )
        .drop_probability(0.05)
        .retry(RetryPolicy::default())
        .build()
        .expect("fig5-lossy scenario is valid")
}

// A churn round-trip on the measurement testbed: everyone gets a file,
// SC3 leaves and rejoins (under the same identity, exercising the
// registry's refresh-on-rejoin path), SC5 leaves for good, and a second
// round goes only to the seven peers still registered.
fn named_churn() -> ScenarioConfig {
    ScenarioBuilder::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: crate::spec::MB,
                num_parts: 1,
                label: "churn-pre".into(),
            },
        )
        .churn(3, SimDuration::from_secs(90), SimDuration::from_secs(180))
        .client_command(5, SimDuration::from_secs(90), ClientCommand::Leave)
        .at(
            SimDuration::from_secs(240),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: crate::spec::MB,
                num_parts: 1,
                label: "churn-post".into(),
            },
        )
        .build()
        .expect("churn scenario is valid")
}

static NAMED_SCENARIOS: &[NamedScenario] = &[
    NamedScenario {
        name: "smoke",
        build: named_smoke,
    },
    NamedScenario {
        name: "fig2",
        build: named_fig2,
    },
    NamedScenario {
        name: "fig234",
        build: named_fig234,
    },
    NamedScenario {
        name: "fig5",
        build: named_fig5,
    },
    NamedScenario {
        name: "fig5-lossy",
        build: named_fig5_lossy,
    },
    NamedScenario {
        name: "churn",
        build: named_churn,
    },
];

impl ScenarioConfig {
    /// Starts a validating [`ScenarioBuilder`] from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::measurement_setup()
    }

    /// The paper's measurement setup with default physics. Equivalent to
    /// `ScenarioConfig::builder().build()`, which cannot fail for the
    /// defaults.
    pub fn measurement_setup() -> Self {
        ScenarioBuilder::measurement_setup()
            .build()
            .expect("measurement defaults are valid")
    }

    /// Enables typed tracing with a ring buffer of `capacity` events.
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The scenarios `psim trace`/`psim report` (and the CI determinism
    /// check) know by name, resolved from the same static table as
    /// [`named_scenario_list`]. `None` for an unknown name.
    pub fn named(name: &str) -> Option<Self> {
        NAMED_SCENARIOS
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.build)())
    }

    /// Appends a command. Broker commands are opaque to validation
    /// (targets resolve at run time), so this stays available post-build.
    pub fn at(mut self, delay: SimDuration, cmd: BrokerCommand) -> Self {
        self.commands.push((delay, cmd));
        self
    }

    /// Installs a selector factory (invariant-free, so post-build is fine).
    pub fn with_selector(mut self, f: SelectorFactory) -> Self {
        self.selector = Some(f);
        self
    }

    /// The testbed this scenario builds.
    pub fn testbed(&self) -> &TestbedConfig {
        &self.testbed
    }

    /// The transport model parameters.
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// The broker command script.
    pub fn commands(&self) -> &[(SimDuration, BrokerCommand)] {
        &self.commands
    }

    /// The virtual-time safety horizon.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The trace ring-buffer capacity, when tracing is enabled.
    pub fn trace_capacity(&self) -> Option<usize> {
        self.trace_capacity
    }

    /// Number of shard domains (1 = serial engine).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker threads for a sharded run.
    pub fn shard_workers(&self) -> usize {
        self.shard_workers
    }

    /// Sets the shard/worker axis post-build (invariant-free apart from
    /// being non-zero, which this clamps). 1 shard = the serial engine.
    pub fn sharded(mut self, shards: usize, workers: usize) -> Self {
        self.shards = shards.max(1);
        self.shard_workers = workers.max(1);
        self
    }
}

/// The names [`ScenarioConfig::named`] accepts, from the same static table.
pub fn named_scenario_list() -> Vec<&'static str> {
    NAMED_SCENARIOS.iter().map(|s| s.name).collect()
}

/// The observable outputs of one replication.
pub struct ScenarioResult {
    /// Drained run log (transfers, tasks, selections).
    pub log: RunLog,
    /// Engine metrics.
    pub metrics: Metrics,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Largest number of simultaneously pending events.
    pub peak_queue_len: usize,
    /// The testbed (for node-id → SC mapping in report code).
    pub testbed: Testbed,
    /// The run's typed trace (empty and disabled unless
    /// [`ScenarioConfig::trace_capacity`] was set).
    pub trace: Trace,
    /// Windowed time-series rows, when a recorder was attached via
    /// [`TelemetryOptions::series`].
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution profile, when requested via
    /// [`TelemetryOptions::profile_execution`] on a sharded run. Always
    /// `None` for serial runs (there are no barrier rounds to account).
    pub exec_profile: Option<ExecutionProfile>,
}

/// Optional telemetry attachments for one scenario replication.
#[derive(Default)]
pub struct TelemetryOptions {
    /// A pre-registered time-series recorder driven through the run and
    /// handed back (with its rows) in [`ScenarioResult::series`].
    pub series: Option<TimeSeriesRecorder>,
    /// Record per-shard, per-barrier-round execution accounting
    /// (sharded runs only; ignored by the serial engine).
    pub profile_execution: bool,
}

/// Runs one replication of `cfg` under `seed`.
///
/// Panics if the testbed cannot be sharded as configured; use
/// [`try_run_scenario`] to handle that as an error instead.
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> ScenarioResult {
    try_run_scenario(cfg, seed).unwrap_or_else(|e| panic!("scenario run failed: {e}"))
}

/// Runs one replication of `cfg` under `seed`, surfacing shard-map and
/// engine-construction failures as [`ScenarioError`]s.
pub fn try_run_scenario(cfg: &ScenarioConfig, seed: u64) -> Result<ScenarioResult, ScenarioError> {
    run_scenario_inner(cfg, seed, cfg.trace_capacity, TelemetryOptions::default())
}

/// Runs one replication with tracing forced on at `capacity` events,
/// regardless of `cfg.trace_capacity`. Used by the traced runner so callers
/// don't have to mutate a shared config.
pub fn run_scenario_traced(cfg: &ScenarioConfig, seed: u64, capacity: usize) -> ScenarioResult {
    run_scenario_inner(cfg, seed, Some(capacity), TelemetryOptions::default())
        .unwrap_or_else(|e| panic!("scenario run failed: {e}"))
}

/// Runs one replication with telemetry attached: an optional windowed
/// time-series recorder and/or the per-shard execution profiler.
pub fn run_scenario_telemetry(
    cfg: &ScenarioConfig,
    seed: u64,
    telemetry: TelemetryOptions,
) -> Result<ScenarioResult, ScenarioError> {
    run_scenario_inner(cfg, seed, cfg.trace_capacity, telemetry)
}

fn run_scenario_inner(
    cfg: &ScenarioConfig,
    seed: u64,
    trace_capacity: Option<usize>,
    telemetry: TelemetryOptions,
) -> Result<ScenarioResult, ScenarioError> {
    let testbed = build(&cfg.testbed);
    // One record sink per shard: actors of a shard share a sink, so a
    // threaded run never interleaves records across threads. The serial
    // path is the single-shard special case of the same layout.
    let map = ShardMap::modulo(testbed.len(), cfg.shards);
    let sinks: Vec<RecordSink> = (0..map.num_shards()).map(|_| RecordSink::new()).collect();
    let sink_of = |node: NodeId| sinks[map.shard_of(node)].clone();

    let mut broker_cfg = BrokerConfig::new(seed ^ 0x0B20_CE12);
    broker_cfg.commands = cfg.commands.clone();
    broker_cfg.transfer_timeout = cfg.transfer_timeout;
    broker_cfg.stop_when_idle = cfg.stop_when_idle;
    broker_cfg.retry = cfg.retry;
    if let Some(factory) = &cfg.selector {
        broker_cfg.selector = Some(factory(seed));
    }

    let mut actors: Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> = vec![(
        testbed.broker,
        Box::new(Broker::new(broker_cfg, sink_of(testbed.broker))),
    )];
    for (i, node) in testbed.clients().into_iter().enumerate() {
        let mut client_cfg = ClientConfig::new(testbed.broker);
        if let Some(accept) = &cfg.task_accept_by_sc {
            if i < 8 {
                client_cfg.task_accept_probability = accept[i];
            }
        }
        if let Some(refuse) = &cfg.transfer_refuse_by_sc {
            if i < 8 {
                client_cfg.transfer_refuse_probability = refuse[i];
            }
        }
        if i < 8 {
            let sc = i as u8 + 1;
            if let Some(commands) = &cfg.client_commands_by_sc {
                for (target, delay, cmd) in commands {
                    if *target == sc {
                        client_cfg.commands.push((*delay, cmd.clone()));
                    }
                }
            }
            if let Some(shared) = &cfg.shared_files_by_sc {
                for (target, name, bytes) in shared {
                    if *target == sc {
                        client_cfg.shared_files.push((name.clone(), *bytes));
                    }
                }
            }
        }
        actors.push((
            node,
            Box::new(
                SimpleClient::new(client_cfg, seed.wrapping_mul(31).wrapping_add(i as u64))
                    .with_sink(sink_of(node)),
            ),
        ));
    }

    let horizon = SimTime::ZERO + cfg.horizon;
    let (outcome, metrics, elapsed, events_processed, peak_queue_len, trace, series, exec_profile) =
        if map.num_shards() == 1 {
            let mut engine: Engine<OverlayMsg> =
                Engine::new(testbed.topology.clone(), cfg.transport.clone(), seed);
            if let Some(capacity) = trace_capacity {
                engine.enable_trace(capacity);
            }
            if let Some(recorder) = telemetry.series {
                engine.install_recorder(recorder);
            }
            for (node, actor) in actors {
                engine.register(node, actor);
            }
            let outcome = engine.run_until(horizon);
            (
                outcome,
                engine.metrics().clone(),
                engine.now(),
                engine.events_processed(),
                engine.peak_queue_len(),
                engine.trace().clone(),
                engine.take_recorder(),
                None,
            )
        } else {
            let mut engine: ShardedEngine<OverlayMsg> = ShardedEngine::new(
                testbed.topology.clone(),
                cfg.transport.clone(),
                seed,
                map,
                cfg.shard_workers,
            )?;
            if let Some(capacity) = trace_capacity {
                engine.enable_trace(capacity);
            }
            if let Some(recorder) = telemetry.series {
                engine.install_recorder(recorder);
            }
            if telemetry.profile_execution {
                engine.enable_profiling();
            }
            for (node, actor) in actors {
                engine.register(node, actor);
            }
            let outcome = engine.run_until(horizon);
            let exec_profile = engine.execution_profile().cloned();
            (
                outcome,
                engine.metrics(),
                engine.now(),
                engine.events_processed(),
                engine.peak_queue_len(),
                engine.trace(),
                engine.take_recorder(),
                exec_profile,
            )
        };

    let mut log = RunLog::default();
    for sink in &sinks {
        log.absorb(sink.drain());
    }
    Ok(ScenarioResult {
        log,
        metrics,
        elapsed,
        outcome,
        events_processed,
        peak_queue_len,
        trace,
        testbed,
        series,
        exec_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;
    use overlay::broker::TargetSpec;

    #[test]
    fn scenario_runs_and_stops_when_idle() {
        let cfg = ScenarioConfig::measurement_setup().at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: MB,
                num_parts: 1,
                label: "smoke".into(),
            },
        );
        let result = run_scenario(&cfg, 1);
        assert_eq!(result.outcome, RunOutcome::Stopped);
        assert_eq!(result.log.transfers.len(), 8, "one transfer per SC");
        for t in &result.log.transfers {
            assert!(t.completed_at.is_some(), "{} incomplete", t.to_name);
        }
        assert_eq!(result.testbed.len(), 9);
        assert!(result.metrics.counter("overlay.transfers_completed") == 8);
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let mk = || {
            ScenarioConfig::measurement_setup().at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 5 * MB,
                    num_parts: 5,
                    label: "det".into(),
                },
            )
        };
        let a = run_scenario(&mk(), 7);
        let b = run_scenario(&mk(), 7);
        assert_eq!(a.elapsed, b.elapsed);
        let times_a: Vec<_> = a.log.transfers.iter().map(|t| t.completed_at).collect();
        let times_b: Vec<_> = b.log.transfers.iter().map(|t| t.completed_at).collect();
        assert_eq!(times_a, times_b);
        // Different seed → different timings (jitter, service samples).
        let c = run_scenario(&mk(), 8);
        let times_c: Vec<_> = c.log.transfers.iter().map(|t| t.completed_at).collect();
        assert_ne!(times_a, times_c);
    }

    #[test]
    fn every_listed_name_resolves() {
        let names = named_scenario_list();
        assert!(!names.is_empty());
        for name in names {
            assert!(
                ScenarioConfig::named(name).is_some(),
                "listed scenario {name:?} does not resolve"
            );
        }
        assert!(ScenarioConfig::named("no-such-scenario").is_none());
    }

    #[test]
    fn builder_rejects_bad_sc_index() {
        let err = ScenarioConfig::builder()
            .stop_when_idle(false)
            .client_command(
                9,
                SimDuration::from_secs(1),
                ClientCommand::RequestFile { name: "f".into() },
            )
            .build()
            .err()
            .expect("expected a build error");
        assert_eq!(
            err,
            ScenarioError::ScIndexOutOfRange {
                what: "client_commands_by_sc",
                sc: 9
            }
        );
        let err = ScenarioConfig::builder()
            .shared_file(0, "f", 1)
            .build()
            .err()
            .expect("expected a build error");
        assert!(matches!(
            err,
            ScenarioError::ScIndexOutOfRange { sc: 0, .. }
        ));
    }

    #[test]
    fn builder_rejects_bad_probabilities() {
        let mut accept = [1.0; 8];
        accept[3] = 1.5;
        let err = ScenarioConfig::builder()
            .task_accept_by_sc(accept)
            .build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ScenarioError::ProbabilityOutOfRange { .. }));
        assert!(err.to_string().contains("task_accept_by_sc[3]"));

        let err = ScenarioConfig::builder()
            .drop_probability(-0.1)
            .build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ScenarioError::ProbabilityOutOfRange { .. }));

        let err = ScenarioConfig::builder()
            .transfer_refuse_by_sc([f64::NAN; 8])
            .build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ScenarioError::ProbabilityOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_zero_horizon() {
        let err = ScenarioConfig::builder()
            .horizon(SimDuration::ZERO)
            .build()
            .err()
            .expect("expected a build error");
        assert_eq!(err, ScenarioError::NonPositiveHorizon);
    }

    #[test]
    fn builder_rejects_inverted_churn_windows() {
        let err = ScenarioConfig::builder()
            .churn(3, SimDuration::from_secs(90), SimDuration::from_secs(90))
            .build()
            .err()
            .expect("expected a build error");
        assert_eq!(err, ScenarioError::RejoinNotAfterLeave { sc: 3 });
        assert!(ScenarioConfig::builder()
            .churn(3, SimDuration::from_secs(90), SimDuration::from_secs(91))
            .build()
            .is_ok());
    }

    #[test]
    fn named_churn_scenario_round_trips_a_rejoin() {
        let cfg = ScenarioConfig::named("churn").expect("churn is a named scenario");
        let result = run_scenario(&cfg, 3);
        assert_eq!(result.outcome, RunOutcome::Stopped);
        let pre = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label == "churn-pre")
            .count();
        let post: Vec<_> = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label == "churn-post")
            .collect();
        assert_eq!(pre, 8, "first round reaches every SC");
        // SC5 left for good, SC3 left and rejoined: the second round goes
        // to exactly seven peers, SC3 among them.
        assert_eq!(post.len(), 7, "second round skips the departed SC5");
        for t in &post {
            assert!(t.completed_at.is_some(), "{} incomplete", t.to_name);
        }
    }

    #[test]
    fn builder_rejects_idle_stop_with_work_generating_clients() {
        let err = ScenarioConfig::builder()
            .client_command(
                2,
                SimDuration::from_secs(1),
                ClientCommand::RequestFile { name: "f".into() },
            )
            .build()
            .err()
            .expect("expected a build error");
        assert_eq!(err, ScenarioError::IdleStopWithScriptedClients { sc: 2 });
        // A passive Leave is fine under idle-stop (churn experiments rely
        // on this), and work-generating commands pass once idle-stop is off.
        assert!(ScenarioConfig::builder()
            .client_command(4, SimDuration::from_secs(1), ClientCommand::Leave)
            .build()
            .is_ok());
        assert!(ScenarioConfig::builder()
            .stop_when_idle(false)
            .client_command(
                2,
                SimDuration::from_secs(1),
                ClientCommand::RequestFile { name: "f".into() },
            )
            .build()
            .is_ok());
    }
}
