//! Multi-region overlay workload for the sharded engine.
//!
//! The paper's testbed is a single PlanetLab slice; this module scales the
//! same broker/client machinery out to `R` federated regions so the
//! conservative-lookahead parallel engine has something worth sharding:
//! each region is one shard (one broker plus `K` clients on a low-delay
//! campus mesh), regions are separated by a wide-area delay that becomes
//! the lookahead bound, and a deterministic fraction of clients joins a
//! *remote* region's broker so petitions and file parts actually cross
//! shard boundaries.
//!
//! The node order is region-major — region `r` owns indices
//! `r*(K+1) .. (r+1)*(K+1)`, broker first — so the shard map is a simple
//! region assignment and record sinks can be handed out per shard.
//!
//! The driver is a [`Workload`] on the [`harness`](crate::harness); its
//! stdout-artifact tail is the attribution phase CSV ([`phase_csv`])
//! rather than a summary JSON line.
//!
//! Used by `psim bench-parallel-engine` (throughput vs. worker count), the
//! worker-count-invariance property test, and the CI workload-determinism
//! job.

use std::sync::Arc;

use netsim::engine::{Actor, RunOutcome};
use netsim::link::{AccessLink, PathSpec};
use netsim::metrics::Metrics;
use netsim::node::{NodeId, NodeSpec};
use netsim::parallel::ParallelProfile;
use netsim::profile::ExecutionProfile;
use netsim::shard::ShardMap;
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::topology::Topology;
use netsim::trace::Trace;
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, TargetSpec};
use overlay::client::{ClientConfig, SimpleClient};
use overlay::message::OverlayMsg;
use overlay::records::RunLog;

use crate::attribution::{attribute_trace, breakdown_by_peer, phase_table_csv};
use crate::harness::{
    defaults, BuildCtx, FederationSpec, HarnessError, HarnessRun, TopologyPlan, Workload,
    WorkloadBuilder,
};
use crate::scenario::ScenarioError;
use crate::telemetry::overlay_series;

/// Parameters of one multi-region run. All fields are public so callers
/// (bench, property test, CI) can shape the workload; [`Default`] is a
/// 3-region × 4-client setup sized for CI.
#[derive(Debug, Clone)]
pub struct MultiRegionConfig {
    /// Number of regions; each region is one shard with its own broker.
    pub regions: usize,
    /// Clients per region (the broker is extra).
    pub clients_per_region: usize,
    /// One-way delay between hosts of the same region, in milliseconds.
    pub intra_owd_ms: f64,
    /// One-way delay between hosts of different regions, in milliseconds.
    /// This is the conservative-lookahead bound, so it must be positive.
    pub inter_owd_ms: f64,
    /// Path jitter as a fraction of the one-way delay.
    pub jitter_frac: f64,
    /// Size of each distributed file in bytes.
    pub file_bytes: u64,
    /// Parts per distributed file.
    pub file_parts: u32,
    /// Distribution rounds per broker.
    pub rounds: usize,
    /// Gap between successive distribution rounds.
    pub round_interval: SimDuration,
    /// Every `n`-th client of a region joins the *next* region's broker
    /// instead of its own (0 = everyone stays home). This is what forces
    /// petitions and file parts across shard boundaries.
    pub remote_join_every: usize,
    /// Broker-to-broker gossip interval ([`defaults::GOSSIP_INTERVAL`]).
    pub gossip_interval: SimDuration,
    /// Virtual-time horizon bounding the run.
    pub horizon: SimDuration,
    /// Worker threads for the sharded engine (clamped to the region count).
    pub shard_workers: usize,
    /// Typed-trace ring capacity; `None` keeps tracing disabled.
    pub trace_capacity: Option<usize>,
    /// When `Some`, a windowed time-series recorder
    /// ([`overlay_series`]) samples merged metrics at this sim-time
    /// interval; rows come back in [`MultiRegionResult::series`].
    pub series_interval: Option<SimDuration>,
    /// Record per-shard, per-barrier-round execution accounting
    /// ([`MultiRegionResult::exec_profile`]).
    pub profile_execution: bool,
}

impl Default for MultiRegionConfig {
    fn default() -> Self {
        MultiRegionConfig {
            regions: 3,
            clients_per_region: 4,
            intra_owd_ms: 3.0,
            inter_owd_ms: 45.0,
            jitter_frac: 0.1,
            file_bytes: 4 * crate::spec::MB,
            file_parts: 4,
            rounds: 2,
            round_interval: SimDuration::from_secs(120),
            remote_join_every: 3,
            gossip_interval: defaults::GOSSIP_INTERVAL,
            horizon: SimDuration::from_secs(900),
            shard_workers: 1,
            trace_capacity: None,
            series_interval: None,
            profile_execution: false,
        }
    }
}

impl MultiRegionConfig {
    /// Total node count: `(1 broker + K clients) × R` regions.
    pub fn num_nodes(&self) -> usize {
        self.regions * (self.clients_per_region + 1)
    }

    /// The broker node of region `r` under region-major ordering.
    pub fn broker_of(&self, r: usize) -> NodeId {
        NodeId((r * (self.clients_per_region + 1)) as u32)
    }

    /// Region-major shard assignment: node → its region. Fails only for
    /// a degenerate zero-region config (the assignment would be empty).
    pub fn shard_map(&self) -> Result<ShardMap, HarnessError> {
        let per = self.clients_per_region + 1;
        let assignment: Vec<usize> = (0..self.num_nodes()).map(|i| i / per).collect();
        Ok(ShardMap::from_assignment(assignment)?)
    }

    /// Builds the full-mesh topology: flat access links, low intra-region
    /// one-way delay, high inter-region delay (the lookahead bound).
    pub fn topology(&self) -> Topology {
        let per = self.clients_per_region + 1;
        let mut topo = Topology::new();
        let mut ids = Vec::with_capacity(self.num_nodes());
        for r in 0..self.regions {
            ids.push(topo.add_node(
                NodeSpec::responsive(format!("broker-r{r}")),
                AccessLink::default(),
            ));
            for c in 0..self.clients_per_region {
                ids.push(topo.add_node(
                    NodeSpec::responsive(format!("client-r{r}-{c}")),
                    AccessLink::default(),
                ));
            }
        }
        let intra = PathSpec::from_owd_ms(self.intra_owd_ms, self.jitter_frac);
        let inter = PathSpec::from_owd_ms(self.inter_owd_ms, self.jitter_frac);
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate().skip(i + 1) {
                let path = if i / per == j / per { &intra } else { &inter };
                topo.set_path_symmetric(a, b, path.clone());
            }
        }
        topo
    }
}

/// Outputs of one multi-region run.
pub struct MultiRegionResult {
    /// Merged run log (shard order, so identical for any worker count).
    pub log: RunLog,
    /// Merged engine metrics (shard order).
    pub metrics: Metrics,
    /// Merged typed trace (empty unless `trace_capacity` was set).
    pub trace: Trace,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final virtual time (max over shard clocks).
    pub elapsed: SimTime,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Largest per-shard pending-event backlog.
    pub peak_queue_len: usize,
    /// Window/occupancy profile of the parallel run.
    pub profile: ParallelProfile,
    /// Display name per node, indexed by `NodeId::index()` — the
    /// `label_of` input for attribution breakdowns.
    pub node_names: Vec<Arc<str>>,
    /// Windowed time-series rows, when `series_interval` was set.
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution accounting, when `profile_execution` was set.
    pub exec_profile: Option<ExecutionProfile>,
}

/// The per-peer attribution phase CSV — the worker-invariant tail of the
/// `psim multiregion` stdout artifact.
pub fn phase_csv(trace: &Trace, node_names: &[Arc<str>]) -> String {
    let attrs = attribute_trace(trace);
    let label_of = |node: NodeId| {
        node_names
            .get(node.index())
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("n{}", node.0))
    };
    phase_table_csv(&breakdown_by_peer(&attrs, label_of))
}

/// The multi-region driver as a harness [`Workload`].
pub struct MultiRegionWorkload<'a> {
    /// The run parameters (shared with [`run_multiregion`]).
    pub cfg: &'a MultiRegionConfig,
}

impl Workload for MultiRegionWorkload<'_> {
    fn name(&self) -> &'static str {
        "multiregion"
    }

    fn topology(&self, _seed: u64) -> Result<TopologyPlan, HarnessError> {
        let cfg = self.cfg;
        let brokers: Vec<NodeId> = (0..cfg.regions).map(|r| cfg.broker_of(r)).collect();
        Ok(TopologyPlan {
            topo: cfg.topology(),
            map: cfg.shard_map()?,
            brokers,
        })
    }

    /// Gossip-only federation (no petition forwarding): preserves the
    /// pre-federation multiregion event history exactly.
    fn federation(&self) -> FederationSpec {
        FederationSpec {
            gossip_interval: self.cfg.gossip_interval,
            ..FederationSpec::default()
        }
    }

    fn actors(&self, cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> {
        let cfg = self.cfg;
        let mut actors: Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> = Vec::new();
        for (r, &broker) in cx.brokers.iter().enumerate() {
            let mut broker_cfg = BrokerConfig::new(cx.seed ^ (0x5EED_0000 + r as u64));
            broker_cfg.stop_when_idle = false;
            cx.federation.configure(r, &mut broker_cfg);
            for round in 0..cfg.rounds {
                broker_cfg = broker_cfg.at(
                    SimDuration::from_secs(60) + cfg.round_interval * round as u64,
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::AllClients,
                        size_bytes: cfg.file_bytes,
                        num_parts: cfg.file_parts,
                        label: format!("mr-r{r}-round{round}"),
                    },
                );
            }
            actors.push((
                broker,
                Box::new(Broker::new(broker_cfg, cx.sink_of(broker))),
            ));
        }
        let per = cfg.clients_per_region + 1;
        for r in 0..cfg.regions {
            for c in 0..cfg.clients_per_region {
                let node = NodeId((r * per + 1 + c) as u32);
                // A deterministic fraction of clients joins the next region's
                // broker, forcing petitions and parts across shard boundaries.
                let home = if cfg.remote_join_every > 0 && (c + 1) % cfg.remote_join_every == 0 {
                    cx.brokers[(r + 1) % cfg.regions]
                } else {
                    cx.brokers[r]
                };
                let client_cfg = ClientConfig::new(home);
                let client_seed = cx
                    .seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((r * per + c) as u64);
                actors.push((
                    node,
                    Box::new(
                        SimpleClient::new(client_cfg, client_seed).with_sink(cx.sink_of(node)),
                    ),
                ));
            }
        }
        actors
    }

    fn series_schema(&self, interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
        overlay_series(interval)
    }

    fn summarize(&self, _seed: u64, run: &HarnessRun) -> String {
        phase_csv(&run.trace, &run.node_names)
    }
}

/// Runs one multi-region replication of `cfg` under `seed` on the harness
/// (one shard per region, `cfg.shard_workers` threads). For a fixed
/// config and seed the result is byte-identical at any worker count.
/// Degenerate configs (zero regions, zero inter-region delay) surface as
/// [`ScenarioError`]s from shard-map or engine construction.
pub fn run_multiregion(
    cfg: &MultiRegionConfig,
    seed: u64,
) -> Result<MultiRegionResult, ScenarioError> {
    let harness = WorkloadBuilder::new()
        .horizon(cfg.horizon)
        .shard_workers(cfg.shard_workers)
        .trace_capacity(cfg.trace_capacity)
        .series_interval(cfg.series_interval)
        .profile_execution(cfg.profile_execution)
        .build()?;
    let run = harness.run(&MultiRegionWorkload { cfg }, seed)?;
    Ok(MultiRegionResult {
        log: run.log,
        metrics: run.metrics,
        trace: run.trace,
        outcome: run.outcome,
        elapsed: run.elapsed,
        events_processed: run.events_processed,
        peak_queue_len: run.peak_queue_len,
        profile: run.profile,
        node_names: run.node_names,
        series: run.series,
        exec_profile: run.exec_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MultiRegionConfig {
        MultiRegionConfig {
            regions: 3,
            clients_per_region: 3,
            rounds: 1,
            horizon: SimDuration::from_secs(400),
            trace_capacity: Some(1 << 14),
            ..MultiRegionConfig::default()
        }
    }

    #[test]
    fn multiregion_run_is_worker_count_invariant() {
        let runs: Vec<MultiRegionResult> = [1, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = MultiRegionConfig {
                    shard_workers: w,
                    ..small()
                };
                run_multiregion(&cfg, 77).expect("small config is valid")
            })
            .collect();
        let digest = runs[0].trace.digest();
        assert_ne!(runs[0].trace.len(), 0, "trace must not be empty");
        for r in &runs[1..] {
            assert_eq!(r.outcome, runs[0].outcome);
            assert_eq!(r.trace.digest(), digest);
            assert_eq!(r.elapsed, runs[0].elapsed);
            assert_eq!(r.events_processed, runs[0].events_processed);
            assert_eq!(r.metrics.render(), runs[0].metrics.render());
            assert_eq!(r.log.transfers.len(), runs[0].log.transfers.len());
        }
    }

    #[test]
    fn multiregion_produces_cross_shard_transfers() {
        let result = run_multiregion(&small(), 5).expect("small config is valid");
        // Every region distributed one round to its clients; remote joiners
        // mean some of those transfers crossed a region (= shard) boundary.
        assert!(!result.log.transfers.is_empty(), "no transfers recorded");
        let map = small().shard_map().expect("small config shards");
        // The sending broker's region is encoded in the label (`mr-r<R>-…`),
        // so a cross-shard transfer is one whose destination lives in a
        // different region than the broker that initiated it.
        let cross = result
            .log
            .transfers
            .iter()
            .filter(|t| {
                let src_region: usize = t.label[4..5].parse().expect("mr-r<R> label");
                map.shard_of(t.to) != src_region
            })
            .count();
        assert!(cross > 0, "expected cross-shard transfers, got none");
        assert!(result.events_processed > 0);
        assert!(result.profile.rounds > 0);
    }

    #[test]
    fn node_names_follow_region_major_order() {
        let cfg = small();
        let result = run_multiregion(&cfg, 1).expect("small config is valid");
        assert_eq!(result.node_names.len(), cfg.num_nodes());
        assert_eq!(&*result.node_names[0], "broker-r0");
        assert_eq!(&*result.node_names[1], "client-r0-0");
        assert_eq!(&*result.node_names[cfg.clients_per_region + 1], "broker-r1");
    }
}
