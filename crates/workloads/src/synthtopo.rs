//! Procedural synthetic testbeds: million-peer topologies from a seed.
//!
//! The paper's testbed is ~30 hand-placed PlanetLab hosts; churn
//! experiments need populations four orders of magnitude larger. This
//! module generates them procedurally: `R` regions (autonomous-system
//! stand-ins) are dropped on the globe from a seeded RNG, inter-region
//! one-way delays follow the same haversine-distance model
//! ([`planetlab::rtt`]) the PlanetLab reconstruction is calibrated with,
//! and per-node access bandwidth and CPU capacity are sampled from
//! power-law (Pareto) distributions — a few well-provisioned hosts, a
//! long tail of weak ones, as every P2P capacity study observes.
//!
//! The topology uses the **region-blocked path table**
//! ([`Topology::blocked`]), so path storage is `O(nodes + regions²)`
//! instead of `O(nodes²)` — the difference between 16 MB and 16 TB at a
//! million nodes.
//!
//! Layout is region-major and broker-first: region `r` owns a contiguous
//! block of node ids, its broker at the block head. The shard map
//! assigns `region % num_shards`, so any shard count that divides into
//! the region count yields a balanced, dense assignment whose
//! cross-shard lookahead is bounded below by the RTT floor.

use crate::harness::HarnessError;
use netsim::link::{AccessLink, PathSpec};
use netsim::node::{CpuModel, NodeId, NodeSpec};
use netsim::rng::{DelayDistribution, SimRng};
use netsim::shard::ShardMap;
use netsim::topology::Topology;
use planetlab::rtt::{haversine_km, RttModel};

/// Speed of light in fiber, km per millisecond (matches `planetlab::rtt`).
const FIBER_KM_PER_MS: f64 = 200.0;

/// Parameters of a procedural testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthTopoConfig {
    /// Number of regions (one broker each); also the blocked-topology
    /// group count.
    pub regions: usize,
    /// Total lifecycle peers across all regions (brokers are extra).
    pub peers: usize,
    /// One-way delay between hosts of the same region, ms.
    pub intra_owd_ms: f64,
    /// Haversine RTT synthesis model for inter-region delays.
    pub rtt: RttModel,
    /// Pareto scale (minimum) of access bandwidth, Mbit/s.
    pub bw_xm_mbps: f64,
    /// Pareto shape of access bandwidth.
    pub bw_alpha: f64,
    /// Pareto scale (minimum) of host CPU capacity, gops.
    pub cpu_xm_gops: f64,
    /// Pareto shape of host CPU capacity.
    pub cpu_alpha: f64,
}

impl Default for SynthTopoConfig {
    fn default() -> Self {
        SynthTopoConfig {
            regions: 8,
            peers: 64,
            intra_owd_ms: 3.0,
            rtt: RttModel::default(),
            // Median home uplink a few Mbit/s with a fat institutional tail.
            bw_xm_mbps: 2.0,
            bw_alpha: 1.5,
            cpu_xm_gops: 0.5,
            cpu_alpha: 1.8,
        }
    }
}

impl SynthTopoConfig {
    /// Peers hosted by region `r` (spread as evenly as division allows;
    /// the first `peers % regions` regions get one extra).
    pub fn peers_of(&self, r: usize) -> usize {
        self.peers / self.regions + usize::from(r < self.peers % self.regions)
    }

    /// First node id of region `r`'s block (the broker).
    pub fn block_start(&self, r: usize) -> usize {
        let base = self.peers / self.regions;
        let extra = (self.peers % self.regions).min(r);
        r * (base + 1) + extra
    }

    /// The broker node of region `r`.
    pub fn broker_of(&self, r: usize) -> NodeId {
        NodeId(self.block_start(r) as u32)
    }

    /// Total node count: peers plus one broker per region.
    pub fn num_nodes(&self) -> usize {
        self.peers + self.regions
    }

    /// Peer nodes of region `r` (broker excluded).
    pub fn peer_nodes(&self, r: usize) -> impl Iterator<Item = NodeId> {
        let start = self.block_start(r) + 1;
        (start..start + self.peers_of(r)).map(|i| NodeId(i as u32))
    }

    /// Region of a node, from the region-major layout.
    pub fn region_of(&self, node: NodeId) -> usize {
        // Blocks differ in size by at most one; binary-search the starts.
        let i = node.index();
        let mut lo = 0usize;
        let mut hi = self.regions;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.block_start(mid) <= i {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Shard assignment `region % num_shards`. Dense as long as
    /// `1 <= num_shards <= regions`; anything else is rejected.
    pub fn shard_map(&self, num_shards: usize) -> Result<ShardMap, HarnessError> {
        if num_shards < 1 || num_shards > self.regions {
            return Err(HarnessError::InvalidShardCount {
                num_shards,
                regions: self.regions,
            });
        }
        let assignment: Vec<usize> = (0..self.num_nodes())
            .map(|i| self.region_of(NodeId(i as u32)) % num_shards)
            .collect();
        Ok(ShardMap::from_assignment(assignment)?)
    }
}

/// A generated testbed: the blocked topology plus the sampled geography.
pub struct SynthTopo {
    /// The region-blocked topology, ready for `Engine` / `ShardedEngine`.
    pub topo: Topology,
    /// `(lat, lon)` centroid of each region, degrees.
    pub centroids: Vec<(f64, f64)>,
    /// The broker node of each region (block heads).
    pub brokers: Vec<NodeId>,
}

/// Generates the testbed for `cfg` from `seed`. Fully deterministic: the
/// same `(cfg, seed)` produces byte-identical node specs and paths, and
/// generation happens entirely before the simulation starts, so shard
/// workers never observe the RNG.
pub fn build_synth_topo(cfg: &SynthTopoConfig, seed: u64) -> SynthTopo {
    assert!(cfg.regions >= 1, "need at least one region");
    assert!(
        cfg.peers >= cfg.regions,
        "need at least one peer per region"
    );
    let mut geo = SimRng::new(seed).split(0x047E_06E0);
    let mut caps = SimRng::new(seed).split(0x047E_0CA9);

    // Region centroids: latitudes clamped to the inhabited band so
    // distances stay terrestrial-plausible.
    let centroids: Vec<(f64, f64)> = (0..cfg.regions)
        .map(|_| {
            (
                geo.uniform_range(-50.0, 65.0),
                geo.uniform_range(-180.0, 180.0),
            )
        })
        .collect();

    let mut topo = Topology::blocked(cfg.regions);
    let intra = PathSpec::from_owd_ms(cfg.intra_owd_ms, cfg.rtt.jitter_frac);
    for ga in 0..cfg.regions {
        topo.set_group_path(ga as u32, ga as u32, intra.clone());
        for gb in (ga + 1)..cfg.regions {
            let (la, lo) = centroids[ga];
            let (lb, lob) = centroids[gb];
            let km = haversine_km(la, lo, lb, lob);
            let owd_ms = cfg.rtt.floor_ms + km * cfg.rtt.path_inflation / FIBER_KM_PER_MS;
            topo.set_group_path_symmetric(
                ga as u32,
                gb as u32,
                PathSpec::from_owd_ms(owd_ms, cfg.rtt.jitter_frac),
            );
        }
    }

    let mut brokers = Vec::with_capacity(cfg.regions);
    for r in 0..cfg.regions {
        // Brokers are well-provisioned: top-of-distribution capacity.
        let broker = topo.add_node_in_group(
            NodeSpec::responsive(format!("broker-r{r}")),
            AccessLink::symmetric_mbps(100.0, 0.0),
            r as u32,
        );
        brokers.push(broker);
        debug_assert_eq!(broker, cfg.broker_of(r));
        for p in 0..cfg.peers_of(r) {
            let bw = caps.pareto(cfg.bw_xm_mbps, cfg.bw_alpha);
            let gops = caps.pareto(cfg.cpu_xm_gops, cfg.cpu_alpha);
            let spec = NodeSpec::responsive(format!("peer-r{r}-{p}"))
                .with_cpu(CpuModel::idle(gops))
                .with_service_delay(DelayDistribution::Constant(0.002));
            topo.add_node_in_group(spec, AccessLink::symmetric_mbps(bw, 0.0), r as u32);
        }
    }
    debug_assert_eq!(topo.len(), cfg.num_nodes());

    SynthTopo {
        topo,
        centroids,
        brokers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_accessors_agree_with_generation() {
        let cfg = SynthTopoConfig {
            regions: 5,
            peers: 23, // 5,5,5,4,4 — uneven on purpose
            ..SynthTopoConfig::default()
        };
        assert_eq!((0..5).map(|r| cfg.peers_of(r)).sum::<usize>(), 23);
        assert_eq!(cfg.num_nodes(), 28);
        let built = build_synth_topo(&cfg, 42);
        assert_eq!(built.topo.len(), cfg.num_nodes());
        for r in 0..5 {
            assert_eq!(built.brokers[r], cfg.broker_of(r));
            assert_eq!(built.topo.group_of(cfg.broker_of(r)), Some(r as u32));
            for node in cfg.peer_nodes(r) {
                assert_eq!(cfg.region_of(node), r);
                assert_eq!(built.topo.group_of(node), Some(r as u32));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = SynthTopoConfig::default();
        let a = build_synth_topo(&cfg, 7);
        let b = build_synth_topo(&cfg, 7);
        let c = build_synth_topo(&cfg, 8);
        assert_eq!(a.centroids, b.centroids);
        assert_ne!(a.centroids, c.centroids);
        for i in 0..cfg.num_nodes() as u32 {
            assert_eq!(a.topo.node(NodeId(i)), b.topo.node(NodeId(i)));
            for j in 0..cfg.num_nodes() as u32 {
                assert_eq!(
                    a.topo.path(NodeId(i), NodeId(j)),
                    b.topo.path(NodeId(i), NodeId(j))
                );
            }
        }
    }

    #[test]
    fn inter_region_delay_tracks_haversine_distance() {
        let cfg = SynthTopoConfig::default();
        let built = build_synth_topo(&cfg, 3);
        let b0 = cfg.broker_of(0);
        let intra = built.topo.path(b0, cfg.peer_nodes(0).next().unwrap());
        assert!((intra.one_way_delay.as_secs_f64() - 0.003).abs() < 1e-9);
        for r in 1..cfg.regions {
            let (la, lo) = built.centroids[0];
            let (lb, lob) = built.centroids[r];
            let km = haversine_km(la, lo, lb, lob);
            let expect_ms = cfg.rtt.floor_ms + km * cfg.rtt.path_inflation / FIBER_KM_PER_MS;
            let got = built.topo.path(b0, cfg.broker_of(r)).one_way_delay;
            assert!(
                (got.as_secs_f64() * 1e3 - expect_ms).abs() < 1e-6,
                "region 0→{r}: got {got:?}, expected {expect_ms} ms"
            );
            // And the floor keeps every cross-region OWD positive — the
            // property the sharded engine's lookahead depends on.
            assert!(got.as_secs_f64() >= cfg.rtt.floor_ms / 1e3);
        }
    }

    #[test]
    fn capacities_are_power_law_with_the_configured_floor() {
        let cfg = SynthTopoConfig {
            regions: 4,
            peers: 400,
            ..SynthTopoConfig::default()
        };
        let built = build_synth_topo(&cfg, 11);
        let mut gops: Vec<f64> = (0..cfg.regions)
            .flat_map(|r| cfg.peer_nodes(r))
            .map(|n| built.topo.node(n).cpu.base_gops)
            .collect();
        gops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(gops[0] >= cfg.cpu_xm_gops, "Pareto respects its scale");
        // Heavy tail: the max should dwarf the median.
        assert!(gops[gops.len() - 1] > 4.0 * gops[gops.len() / 2]);
    }

    #[test]
    fn shard_map_is_dense_and_region_aligned() {
        let cfg = SynthTopoConfig {
            regions: 6,
            peers: 60,
            ..SynthTopoConfig::default()
        };
        for shards in [1, 2, 3, 6] {
            let map = cfg.shard_map(shards).expect("1..=regions shards are valid");
            assert_eq!(map.num_shards(), shards);
            for r in 0..cfg.regions {
                let want = r % shards;
                assert_eq!(map.shard_of(cfg.broker_of(r)), want);
                for node in cfg.peer_nodes(r) {
                    assert_eq!(map.shard_of(node), want);
                }
            }
        }
    }

    #[test]
    fn shard_map_rejects_invalid_shard_counts() {
        let cfg = SynthTopoConfig {
            regions: 4,
            peers: 8,
            ..SynthTopoConfig::default()
        };
        for bad in [0usize, 5, 64] {
            match cfg.shard_map(bad) {
                Err(HarnessError::InvalidShardCount {
                    num_shards,
                    regions,
                }) => {
                    assert_eq!(num_shards, bad);
                    assert_eq!(regions, 4);
                }
                Ok(_) => panic!("shard count {bad} should have been rejected"),
                Err(other) => panic!("expected InvalidShardCount, got {other:?}"),
            }
        }
    }

    #[test]
    fn ten_thousand_nodes_build_quickly_in_blocked_form() {
        let cfg = SynthTopoConfig {
            regions: 32,
            peers: 10_000,
            ..SynthTopoConfig::default()
        };
        let built = build_synth_topo(&cfg, 1);
        assert_eq!(built.topo.len(), 10_032);
        // Spot-check a random far pair resolves through the group table.
        let p = built.topo.path(NodeId(17), NodeId(10_001));
        assert!(p.one_way_delay.as_secs_f64() > 0.0);
    }
}
