//! Streaming-on-demand workload: playback buffers over piece exchange
//! at testbed scale (`psim stream`, `psim bench-streaming`).
//!
//! Every peer of a [`synthtopo`](crate::synthtopo) testbed is a
//! [`StreamingClient`] viewer: it joins its region broker, then pulls a
//! piece-divided stream from hash-assigned seed peers under a
//! [`PiecePolicy`] — sequential, windowed, or rarest-within-window (the
//! axis of arXiv:1402.2187's selection study). Because a piece's wire
//! size is the full piece payload, the seed's access uplink serializes
//! every delivery: the [`UploadProfile`] axis (the Pareto distribution
//! peer uplinks are drawn from) moves startup delay and rebuffering the
//! way measurement studies report.
//!
//! The driver is a [`Workload`] on the [`harness`](crate::harness):
//! topology plan, gossip-only federation, the viewer fleet, the
//! [`streaming_series`] schema, and a summary JSON whose startup-delay
//! quantiles and rebuffering totals are the figures `psim
//! bench-streaming` sweeps across the policy × window grid.
//!
//! Determinism contract: arrivals, identities, and capacities derive
//! from the master seed and node id only; piece → owner assignment and
//! availability hash from a content seed. For a fixed `(config, seed,
//! num_shards)` the artifact bytes are identical at any worker count.

use std::sync::Arc;

use netsim::engine::{Actor, RunOutcome};
use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::parallel::ParallelProfile;
use netsim::profile::ExecutionProfile;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::trace::Trace;
use overlay::broker::{Broker, BrokerConfig};
use overlay::message::OverlayMsg;
use overlay::records::RunLog;
pub use overlay::streaming::PiecePolicy;
use overlay::streaming::{StreamConfig, StreamingClient};

use crate::harness::{
    defaults, BuildCtx, FederationSpec, HarnessError, HarnessRun, TopologyPlan, Workload,
    WorkloadBuilder,
};
use crate::scenario::ScenarioError;
use crate::synthtopo::{build_synth_topo, SynthTopoConfig};
use crate::telemetry::streaming_series;

/// The Pareto family peer uplinks are drawn from — the workload's
/// third sweep axis besides policy and window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UploadProfile {
    /// Residential uplinks: low floor, some fat tail.
    Home,
    /// Mixed residential/institutional population.
    Mixed,
    /// Campus/institutional uplinks: high floor, flatter tail.
    Campus,
}

impl UploadProfile {
    /// Every profile, in canonical (grid-expansion and CLI listing) order.
    pub const ALL: [UploadProfile; 3] = [
        UploadProfile::Home,
        UploadProfile::Mixed,
        UploadProfile::Campus,
    ];

    /// The canonical spelling used by CLIs, CSV columns, and grid specs.
    pub fn name(self) -> &'static str {
        match self {
            UploadProfile::Home => "home",
            UploadProfile::Mixed => "mixed",
            UploadProfile::Campus => "campus",
        }
    }

    /// Parses a canonical spelling back into the axis value.
    pub fn parse(name: &str) -> Option<UploadProfile> {
        UploadProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The `(scale Mbit/s, shape)` of the access-bandwidth Pareto draw.
    pub fn pareto(self) -> (f64, f64) {
        match self {
            UploadProfile::Home => (2.0, 1.5),
            UploadProfile::Mixed => (6.0, 1.4),
            UploadProfile::Campus => (20.0, 1.2),
        }
    }
}

impl std::fmt::Display for UploadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// The synthetic testbed; one broker per region, every peer a viewer.
    /// Its Pareto bandwidth knobs are overridden by [`Self::upload`].
    pub topo: SynthTopoConfig,
    /// Piece-selection policy the viewers run.
    pub policy: PiecePolicy,
    /// Request-window width for the windowed policies.
    pub window: u32,
    /// The uplink distribution peers are drawn from.
    pub upload: UploadProfile,
    /// Broker-to-broker roster gossip cadence
    /// ([`defaults::GOSSIP_INTERVAL`]).
    pub gossip_interval: SimDuration,
    /// Virtual-time horizon bounding the run.
    pub horizon: SimDuration,
    /// Shard count (fixed across worker counts; must be `<= regions`).
    pub num_shards: usize,
    /// Worker threads for the sharded engine.
    pub shard_workers: usize,
    /// Pieces the stream is divided into.
    pub total_pieces: u32,
    /// Payload bytes per piece.
    pub piece_bytes: u64,
    /// Playback duration of one piece.
    pub piece_secs: SimDuration,
    /// Contiguous pieces buffered before playback starts.
    pub startup_pieces: u32,
    /// Viewer arrivals are sampled uniformly over this window.
    pub arrival_spread: SimDuration,
    /// Typed-trace ring capacity; `None` keeps tracing disabled.
    pub trace_capacity: Option<usize>,
    /// When `Some`, a [`streaming_series`] recorder samples merged
    /// metrics at this sim-time interval.
    pub series_interval: Option<SimDuration>,
    /// Record per-shard execution accounting.
    pub profile_execution: bool,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            topo: SynthTopoConfig::default(),
            policy: PiecePolicy::Sequential,
            window: 8,
            upload: UploadProfile::Home,
            gossip_interval: defaults::GOSSIP_INTERVAL,
            horizon: SimDuration::from_secs(900),
            num_shards: 4,
            shard_workers: 1,
            total_pieces: 48,
            piece_bytes: 256 << 10,
            piece_secs: SimDuration::from_secs(2),
            startup_pieces: 4,
            arrival_spread: SimDuration::from_secs(30),
            trace_capacity: Some(defaults::TRACE_CAPACITY),
            series_interval: None,
            profile_execution: false,
        }
    }
}

impl StreamingConfig {
    /// The testbed with the upload profile's Pareto knobs applied.
    fn effective_topo(&self) -> SynthTopoConfig {
        let (xm, alpha) = self.upload.pareto();
        SynthTopoConfig {
            bw_xm_mbps: xm,
            bw_alpha: alpha,
            ..self.topo.clone()
        }
    }
}

/// Ordered startup-delay quantiles over the playbacks that started.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupQuantiles {
    /// Playbacks that started (the sample count).
    pub count: usize,
    /// Median startup delay, seconds.
    pub p50_s: f64,
    /// 90th-percentile startup delay, seconds.
    pub p90_s: f64,
    /// Largest startup delay, seconds.
    pub max_s: f64,
}

impl StartupQuantiles {
    /// Summarises `samples` by sorted-index quantiles; `None` when
    /// empty. Always ordered: `p50_s <= p90_s <= max_s`.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Some(StartupQuantiles {
            count: sorted.len(),
            p50_s: at(0.5),
            p90_s: at(0.9),
            max_s: sorted[sorted.len() - 1],
        })
    }
}

/// Playback movement of one run, derived from the stream records (and
/// therefore worker-count invariant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingStats {
    /// Streams that began requesting.
    pub streams: usize,
    /// Playbacks that started (startup buffer filled).
    pub playbacks_started: usize,
    /// Streams played back to the end.
    pub completions: usize,
    /// Rebuffer (stall) events across all viewers.
    pub rebuffer_events: u64,
    /// Total stalled virtual time across all viewers, seconds.
    pub rebuffer_secs: f64,
}

impl StreamingStats {
    /// Tallies the merged run log.
    pub fn from_log(log: &RunLog) -> Self {
        StreamingStats {
            streams: log.streams.len(),
            playbacks_started: log
                .streams
                .iter()
                .filter(|s| s.startup_delay_secs.is_some())
                .count(),
            completions: log
                .streams
                .iter()
                .filter(|s| s.completed_at.is_some())
                .count(),
            rebuffer_events: log.streams.iter().map(|s| s.rebuffers as u64).sum(),
            rebuffer_secs: log.streams.iter().map(|s| s.rebuffer_secs).sum(),
        }
    }
}

/// Outputs of one streaming run.
pub struct StreamingResult {
    /// Merged run log (shard order, worker-count invariant).
    pub log: RunLog,
    /// Merged engine metrics.
    pub metrics: Metrics,
    /// Merged typed trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Largest per-shard backlog (diagnostic; not worker-invariant).
    pub peak_queue_len: usize,
    /// Window/occupancy profile of the parallel run.
    pub profile: ParallelProfile,
    /// Playback movement totals.
    pub stats: StreamingStats,
    /// Windowed time-series rows, when `series_interval` was set.
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution accounting, when `profile_execution` was set.
    pub exec_profile: Option<ExecutionProfile>,
}

impl StreamingResult {
    /// Startup delays of every playback that started, seconds, in
    /// merged-log order.
    pub fn startup_delays(&self) -> Vec<f64> {
        self.log
            .streams
            .iter()
            .filter_map(|s| s.startup_delay_secs)
            .collect()
    }
}

/// The seed a viewer's arrival, identity, and capacity derive from:
/// master seed plus node id, nothing else.
fn peer_seed(seed: u64, node: NodeId) -> u64 {
    seed.wrapping_mul(6364136223846793005)
        .wrapping_add(node.index() as u64)
}

/// The streaming driver as a harness [`Workload`].
pub struct StreamingWorkload<'a> {
    /// The run parameters (shared with [`run_streaming`]).
    pub cfg: &'a StreamingConfig,
}

impl Workload for StreamingWorkload<'_> {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn topology(&self, seed: u64) -> Result<TopologyPlan, HarnessError> {
        let topo_cfg = self.cfg.effective_topo();
        let built = build_synth_topo(&topo_cfg, seed);
        let map = topo_cfg.shard_map(self.cfg.num_shards)?;
        Ok(TopologyPlan {
            topo: built.topo,
            map,
            brokers: built.brokers,
        })
    }

    fn federation(&self) -> FederationSpec {
        FederationSpec {
            gossip_interval: self.cfg.gossip_interval,
            ..FederationSpec::default()
        }
    }

    fn actors(&self, cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> {
        let cfg = self.cfg;
        let mut actors: Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> = Vec::new();
        for (r, &broker) in cx.brokers.iter().enumerate() {
            let mut broker_cfg = BrokerConfig::new(cx.seed ^ (0x57E4_0000 + r as u64));
            broker_cfg.stop_when_idle = false;
            cx.federation.configure(r, &mut broker_cfg);
            actors.push((
                broker,
                Box::new(Broker::new(broker_cfg, cx.sink_of(broker))),
            ));
        }
        let owners: Arc<[NodeId]> = (0..cfg.topo.regions)
            .flat_map(|r| cfg.topo.peer_nodes(r))
            .collect::<Vec<_>>()
            .into();
        let content_seed = cx.seed ^ 0x57E4_C0DE;
        for r in 0..cfg.topo.regions {
            let broker = cx.brokers[r];
            for node in cfg.topo.peer_nodes(r) {
                let pseed = peer_seed(cx.seed, node);
                let mut rng = SimRng::new(pseed).split(0x57E4_0001);
                let arrival = SimDuration::from_secs_f64(
                    rng.uniform_range(0.0, cfg.arrival_spread.as_secs_f64().max(1.0)),
                );
                let stream_cfg = StreamConfig {
                    broker,
                    policy: cfg.policy,
                    window: cfg.window,
                    total_pieces: cfg.total_pieces,
                    piece_bytes: cfg.piece_bytes,
                    piece_secs: cfg.piece_secs,
                    startup_pieces: cfg.startup_pieces,
                    arrival,
                    owners: owners.clone(),
                    content_seed,
                    cpu_gops: rng.pareto(0.5, 1.8),
                };
                actors.push((
                    node,
                    Box::new(StreamingClient::new(stream_cfg, pseed, cx.sink_of(node))),
                ));
            }
        }
        actors
    }

    fn series_schema(&self, interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
        streaming_series(interval)
    }

    fn summarize(&self, seed: u64, run: &HarnessRun) -> String {
        let stats = StreamingStats::from_log(&run.log);
        let delays: Vec<f64> = run
            .log
            .streams
            .iter()
            .filter_map(|s| s.startup_delay_secs)
            .collect();
        let mut tail = render_summary(
            self.cfg,
            seed,
            run.outcome,
            run.elapsed,
            run.events_processed,
            run.trace.digest(),
            stats,
            StartupQuantiles::from_samples(&delays),
        );
        tail.push('\n');
        tail
    }
}

/// JSON fragment for optional startup quantiles (`null` when absent).
fn quantiles_fragment(q: Option<StartupQuantiles>) -> String {
    match q {
        Some(q) => format!(
            "{{\"count\":{},\"p50_s\":{},\"p90_s\":{},\"max_s\":{}}}",
            q.count, q.p50_s, q.p90_s, q.max_s
        ),
        None => "null".to_string(),
    }
}

/// The summary JSON shared by [`Workload::summarize`] and
/// [`summary_json`] — one format string, two result shapes.
#[allow(clippy::too_many_arguments)]
fn render_summary(
    cfg: &StreamingConfig,
    seed: u64,
    outcome: RunOutcome,
    elapsed: SimTime,
    events: u64,
    digest: u64,
    stats: StreamingStats,
    startup: Option<StartupQuantiles>,
) -> String {
    format!(
        "{{\"workload\":\"streaming\",\"regions\":{},\"peers\":{},\"num_shards\":{},\
         \"horizon_secs\":{},\"seed\":{},\"policy\":\"{}\",\"window\":{},\
         \"upload\":\"{}\",\"pieces\":{},\"piece_bytes\":{},\
         \"outcome\":\"{:?}\",\"elapsed_secs\":{},\"events\":{},\
         \"trace_digest\":\"{:016x}\",\"streams\":{},\
         \"playbacks\":{{\"started\":{},\"completed\":{}}},\
         \"startup_delay\":{},\
         \"rebuffering\":{{\"events\":{},\"total_secs\":{}}}}}",
        cfg.topo.regions,
        cfg.topo.peers,
        cfg.num_shards,
        cfg.horizon.as_secs_f64(),
        seed,
        cfg.policy,
        cfg.policy.effective_window(cfg.window),
        cfg.upload,
        cfg.total_pieces,
        cfg.piece_bytes,
        outcome,
        elapsed.as_secs_f64(),
        events,
        digest,
        stats.streams,
        stats.playbacks_started,
        stats.completions,
        quantiles_fragment(startup),
        stats.rebuffer_events,
        stats.rebuffer_secs,
    )
}

/// Renders the worker-invariant summary JSON `psim stream` and
/// `psim bench-streaming` embed (no trailing newline).
pub fn summary_json(cfg: &StreamingConfig, seed: u64, result: &StreamingResult) -> String {
    render_summary(
        cfg,
        seed,
        result.outcome,
        result.elapsed,
        result.events_processed,
        result.trace.digest(),
        result.stats,
        StartupQuantiles::from_samples(&result.startup_delays()),
    )
}

/// Runs one streaming replication of `cfg` under `seed` on the harness.
/// Byte-identical for any `shard_workers` at fixed shards. Invalid
/// shard counts and degenerate parameters surface as [`ScenarioError`]s
/// instead of panics.
pub fn run_streaming(cfg: &StreamingConfig, seed: u64) -> Result<StreamingResult, ScenarioError> {
    let harness = WorkloadBuilder::new()
        .horizon(cfg.horizon)
        .shard_workers(cfg.shard_workers)
        .trace_capacity(cfg.trace_capacity)
        .series_interval(cfg.series_interval)
        .profile_execution(cfg.profile_execution)
        .build()?;
    let run = harness.run(&StreamingWorkload { cfg }, seed)?;
    let stats = StreamingStats::from_log(&run.log);
    Ok(StreamingResult {
        log: run.log,
        metrics: run.metrics,
        trace: run.trace,
        outcome: run.outcome,
        elapsed: run.elapsed,
        events_processed: run.events_processed,
        peak_queue_len: run.peak_queue_len,
        profile: run.profile,
        stats,
        series: run.series,
        exec_profile: run.exec_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small streaming testbed: four regions, 16 viewers, CI horizon.
    fn small() -> StreamingConfig {
        StreamingConfig {
            topo: SynthTopoConfig {
                regions: 4,
                peers: 16,
                ..SynthTopoConfig::default()
            },
            num_shards: 4,
            total_pieces: 24,
            horizon: SimDuration::from_secs(600),
            ..StreamingConfig::default()
        }
    }

    #[test]
    fn upload_profile_names_round_trip() {
        for p in UploadProfile::ALL {
            assert_eq!(UploadProfile::parse(p.name()), Some(p));
        }
        assert_eq!(UploadProfile::parse("dsl"), None);
    }

    #[test]
    fn startup_quantiles_are_ordered() {
        let q = StartupQuantiles::from_samples(&[9.0, 1.0, 5.0, 3.0, 7.0]).expect("non-empty");
        assert_eq!(q.count, 5);
        assert!(q.p50_s <= q.p90_s && q.p90_s <= q.max_s);
        assert_eq!(q.max_s, 9.0);
        assert_eq!(StartupQuantiles::from_samples(&[]), None);
    }

    #[test]
    fn viewers_stream_and_playback_completes() {
        let result = run_streaming(&small(), 2026).expect("small config is valid");
        assert_eq!(result.stats.streams, 16, "every viewer starts a stream");
        assert_eq!(
            result.stats.playbacks_started, 16,
            "every playback starts inside the horizon"
        );
        assert!(
            result.stats.completions > 0,
            "some viewer finishes the stream: {:?}",
            result.stats
        );
        let q = StartupQuantiles::from_samples(&result.startup_delays()).expect("playbacks");
        assert!(q.p50_s > 0.0 && q.p50_s <= q.p90_s && q.p90_s <= q.max_s);
        assert!(result.stats.rebuffer_secs >= 0.0);
    }

    #[test]
    fn streaming_is_worker_count_invariant() {
        let runs: Vec<StreamingResult> = [1, 2, 4]
            .iter()
            .map(|&w| {
                run_streaming(
                    &StreamingConfig {
                        shard_workers: w,
                        policy: PiecePolicy::Windowed,
                        window: 6,
                        ..small()
                    },
                    7,
                )
                .expect("small config is valid")
            })
            .collect();
        assert_ne!(runs[0].trace.len(), 0, "trace must not be empty");
        for r in &runs[1..] {
            assert_eq!(r.outcome, runs[0].outcome);
            assert_eq!(r.trace.digest(), runs[0].trace.digest());
            assert_eq!(r.elapsed, runs[0].elapsed);
            assert_eq!(r.events_processed, runs[0].events_processed);
            assert_eq!(r.metrics.render(), runs[0].metrics.render());
            assert_eq!(r.stats, runs[0].stats);
            assert_eq!(r.log.streams.len(), runs[0].log.streams.len());
            assert_eq!(r.startup_delays(), runs[0].startup_delays());
        }
    }

    #[test]
    fn policy_and_window_move_the_figures() {
        let run = |policy, window| {
            run_streaming(
                &StreamingConfig {
                    policy,
                    window,
                    ..small()
                },
                11,
            )
            .expect("valid")
        };
        let seq = run(PiecePolicy::Sequential, 1);
        let win = run(PiecePolicy::Windowed, 8);
        let seq_q = StartupQuantiles::from_samples(&seq.startup_delays()).expect("playbacks");
        let win_q = StartupQuantiles::from_samples(&win.startup_delays()).expect("playbacks");
        assert_ne!(
            seq_q, win_q,
            "the policy axis must move the startup figures"
        );
        assert!(
            seq_q.p50_s < win_q.p50_s,
            "lookahead delays the in-order startup prefix \
             (sequential {:.2}s vs windowed {:.2}s)",
            seq_q.p50_s,
            win_q.p50_s
        );
    }

    #[test]
    fn invalid_shard_count_is_rejected() {
        let err = run_streaming(
            &StreamingConfig {
                num_shards: 9,
                ..small()
            },
            1,
        )
        .err()
        .expect("nine shards over four regions must be rejected");
        assert!(matches!(err, ScenarioError::InvalidShardCount { .. }));
    }
}
