//! Grid-sweep campaigns: every paper result is a cross-product.
//!
//! A [`SweepSpec`] spans typed axes (selection model, split count, drop
//! probability, testbed, task-accept profile) and expands into a
//! deterministic list of [`Cell`]s — testbed outermost, parts
//! fastest-varying. Each cell runs `replications` independent simulations
//! whose seeds derive from a stable splitmix64 mix of (campaign seed, cell
//! index, replication index), so any cell of any campaign can be re-run in
//! isolation and produce the same numbers.
//!
//! Execution fans all cells × replications out over a bounded work-stealing
//! pool ([`crate::runner::run_indexed`]); results fold back **in seed
//! order**, so the worker count never changes a single digit of the output.
//! [`CampaignResult`] renders deterministic CSV and JSON, and
//! [`CampaignResult::merged_metrics`] folds every cell's engine metrics
//! into one registry under per-cell tags
//! ([`netsim::metrics::Metrics::merge_tagged`]).
//!
//! The named grids [`named_grid`] (`fig345`, `fig67`) reproduce the paper's
//! tables end-to-end; `psim sweep` is the CLI face.

use netsim::metrics::{Metrics, RunningStat};
use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, RetryPolicy, TargetSpec};
pub use overlay::selector::ModelKind;
use planetlab::builder::TestbedConfig;

use crate::experiments::{fig6, per_sc_transfer_metric, sc_labels};
use crate::federation::{run_federation, FederationConfig, LatencySummary};
use crate::runner::run_indexed;
use crate::scenario::{run_scenario, ScenarioBuilder, ScenarioConfig, ScenarioError};
use crate::spec::MB;
use crate::streaming::{
    run_streaming, PiecePolicy, StartupQuantiles, StreamingConfig, StreamingStats, UploadProfile,
};
use crate::synthtopo::SynthTopoConfig;

mod grids;
pub use grids::{
    federation_grid, fig345_grid, fig67_grid, named_grid, named_grid_list, streaming_grid,
};

/// Label of the broadcast transfer in [`CellWorkload::Distribute`] cells.
pub const DISTRIBUTE_LABEL: &str = "sweep";
/// Label of the measured transfer in [`CellWorkload::SelectedTransfer`].
pub const MEASURED_LABEL: &str = "measured";

/// One splitmix64 step: the standard finalizer (Steele et al.), also used
/// by the engine's RNG seeding. Full 64-bit avalanche — consecutive inputs
/// land far apart.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for `(campaign_seed, cell, replication)` by chaining
/// splitmix64 over the three coordinates. Stable across releases: changing
/// it would silently change every derived campaign's numbers, so treat the
/// constants as part of the output format.
pub fn derive_seed(campaign_seed: u64, cell: u64, replication: u64) -> u64 {
    let a = splitmix64(campaign_seed);
    let b = splitmix64(a ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(b ^ replication.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

/// The testbed axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestbedAxis {
    /// The paper's 9-node measurement slice (broker + 8 SCs).
    Measurement,
    /// The full PlanetLab slice.
    FullSlice,
}

impl TestbedAxis {
    /// Canonical spelling for CSV/JSON columns.
    pub fn name(self) -> &'static str {
        match self {
            TestbedAxis::Measurement => "measurement",
            TestbedAxis::FullSlice => "full-slice",
        }
    }

    /// The concrete testbed configuration.
    pub fn config(self) -> TestbedConfig {
        match self {
            TestbedAxis::Measurement => TestbedConfig::measurement_setup(),
            TestbedAxis::FullSlice => TestbedConfig::full_slice(),
        }
    }
}

/// The task-accept axis: a named per-SC acceptance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptProfile {
    /// Name for CSV/JSON columns.
    pub name: &'static str,
    /// Per-SC acceptance probabilities; `None` = everyone accepts.
    pub accept_by_sc: Option<[f64; 8]>,
}

/// Every peer accepts every task offer.
pub const ACCEPT_ALL: AcceptProfile = AcceptProfile {
    name: "accept-all",
    accept_by_sc: None,
};

/// The Fig 6 warm-up asymmetry: well-connected peers decline more often.
pub const FIG6_WARMUP_ACCEPT: AcceptProfile = AcceptProfile {
    name: "fig6-warmup",
    accept_by_sc: Some(fig6::WARMUP_TASK_ACCEPT),
};

/// What each cell simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWorkload {
    /// Broadcast one file to every SC (the Figs 3–5 shape). Rows are per-SC
    /// transmission minutes. Requires [`ModelKind::Blind`]: broadcasting
    /// never consults a selector.
    Distribute {
        /// File size in bytes.
        size_bytes: u64,
    },
    /// The Fig 6/7 selection shape: warm-up broadcast + warm-up tasks, a
    /// background transfer congesting the historically-fastest peer, then
    /// one measured transfer to the peer the model selects. The single row
    /// is the measured seconds. Requires a non-blind model.
    SelectedTransfer {
        /// Size of the measured transfer in bytes.
        measured_bytes: u64,
        /// Size of the congesting background transfer in bytes.
        background_bytes: u64,
    },
    /// The multi-broker federation shape ([`crate::federation`]): homing,
    /// roster gossip, petition forwarding on a synthetic testbed driven by
    /// the `brokers` and `gossip_staleness` axes (the testbed and accept
    /// axes do not apply). The single row is the mean petition latency.
    /// Requires [`ModelKind::Blind`]: each federated broker runs its own
    /// round-robin selector.
    Federation {
        /// Peers across the federation.
        peers: usize,
    },
    /// The streaming-on-demand shape ([`crate::streaming`]): playback
    /// buffers over piece exchange on a synthetic testbed, driven by the
    /// `piece_policies`, `windows`, and `uploads` axes (the testbed,
    /// accept, and parts axes do not apply). Rows are the median startup
    /// delay and the fleet rebuffering total. Requires
    /// [`ModelKind::Blind`]: viewers pull from hash-assigned owners, not
    /// a selector.
    Streaming {
        /// Viewers across the testbed.
        viewers: usize,
    },
}

impl CellWorkload {
    /// The unit of this workload's rows.
    pub fn unit(self) -> &'static str {
        match self {
            CellWorkload::Distribute { .. } => "minutes",
            CellWorkload::SelectedTransfer { .. }
            | CellWorkload::Federation { .. }
            | CellWorkload::Streaming { .. } => "seconds",
        }
    }

    fn name(self) -> &'static str {
        match self {
            CellWorkload::Distribute { .. } => "distribute",
            CellWorkload::SelectedTransfer { .. } => "selected-transfer",
            CellWorkload::Federation { .. } => "federation",
            CellWorkload::Streaming { .. } => "streaming",
        }
    }
}

/// How per-replication seeds are chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedScheme {
    /// Derive seeds from one campaign seed via [`derive_seed`] — every cell
    /// gets its own independent stream.
    Derived {
        /// The campaign master seed.
        campaign_seed: u64,
        /// Replications per cell.
        replications: usize,
    },
    /// Run the same explicit seed list in every cell (the classic
    /// [`ExperimentSpec`] behaviour the fig5/fig6 harnesses rely on).
    Explicit(Vec<u64>),
}

/// A typed grid: the cross-product of every axis.
#[derive(Debug)]
pub struct SweepSpec {
    /// Campaign name, echoed into every CSV row.
    pub name: String,
    /// What each cell runs.
    pub workload: CellWorkload,
    /// Selection-model axis.
    pub models: Vec<ModelKind>,
    /// Split-count axis (file parts).
    pub parts: Vec<u32>,
    /// Message-drop-probability axis (drop > 0 implies default retries).
    pub drop_probabilities: Vec<f64>,
    /// Testbed axis.
    pub testbeds: Vec<TestbedAxis>,
    /// Task-accept-profile axis.
    pub accept_profiles: Vec<AcceptProfile>,
    /// Broker-count axis (read by [`CellWorkload::Federation`] cells;
    /// singleton `vec![1]` for the classic single-broker workloads).
    pub brokers: Vec<usize>,
    /// Gossip/staleness cadence axis in virtual seconds: each value sets
    /// both the roster gossip interval and the staleness bound of a
    /// federation cell (`0` = workload defaults). Singleton `vec![0.0]`
    /// for non-federation grids.
    pub gossip_staleness: Vec<f64>,
    /// Piece-policy axis (read by [`CellWorkload::Streaming`] cells;
    /// singleton `vec![PiecePolicy::Sequential]` for non-streaming
    /// grids).
    pub piece_policies: Vec<PiecePolicy>,
    /// Request-window axis (read by [`CellWorkload::Streaming`] cells;
    /// singleton `vec![1]` for non-streaming grids).
    pub windows: Vec<u32>,
    /// Uplink-distribution axis (read by [`CellWorkload::Streaming`]
    /// cells; singleton `vec![UploadProfile::Home]` for non-streaming
    /// grids).
    pub uploads: Vec<UploadProfile>,
    /// Seed scheme shared by every cell.
    pub seeds: SeedScheme,
    /// Virtual-time offset of the first scripted command.
    pub warmup: SimDuration,
}

/// One expanded grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in expansion order (also the seed-derivation coordinate).
    pub index: usize,
    /// Testbed axis value.
    pub testbed: TestbedAxis,
    /// Accept-profile axis value.
    pub accept: AcceptProfile,
    /// Model axis value.
    pub model: ModelKind,
    /// Drop-probability axis value.
    pub drop_probability: f64,
    /// Broker-count axis value.
    pub brokers: usize,
    /// Gossip/staleness cadence axis value (virtual seconds).
    pub gossip_staleness: f64,
    /// Piece-policy axis value.
    pub piece_policy: PiecePolicy,
    /// Request-window axis value.
    pub window: u32,
    /// Uplink-distribution axis value.
    pub upload: UploadProfile,
    /// Split-count axis value.
    pub parts: u32,
}

impl Cell {
    /// Human-readable cell id, e.g.
    /// `measurement/accept-all/blind/drop0/brokers1/stale0/sequential/w1/home/parts16`.
    pub fn id_string(&self) -> String {
        format!(
            "{}/{}/{}/drop{}/brokers{}/stale{}/{}/w{}/{}/parts{}",
            self.testbed.name(),
            self.accept.name,
            self.model.name(),
            self.drop_probability,
            self.brokers,
            self.gossip_staleness,
            self.piece_policy.name(),
            self.window,
            self.upload.name(),
            self.parts
        )
    }
}

/// Why a [`SweepSpec`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// An axis was empty — the cross-product would be zero cells.
    EmptyAxis(&'static str),
    /// The seed scheme yields zero replications per cell.
    NoReplications,
    /// A parts axis value was zero (a file cannot have zero parts).
    ZeroParts,
    /// A brokers axis value was zero (a federation needs a broker).
    ZeroBrokers,
    /// A gossip-staleness axis value was negative.
    NegativeStaleness,
    /// A windows axis value was zero (a request window must hold at
    /// least one piece).
    ZeroWindow,
    /// The model cannot drive the workload: `Blind` never selects, so it
    /// cannot run a `SelectedTransfer`; conversely a broadcast
    /// `Distribute` never consults a non-blind model.
    ModelWorkloadMismatch {
        /// The offending model.
        model: ModelKind,
        /// The workload's name.
        workload: &'static str,
    },
    /// A cell's scenario failed [`ScenarioBuilder::build`] validation.
    Scenario(ScenarioError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyAxis(axis) => write!(f, "empty {axis} axis"),
            SweepError::NoReplications => write!(f, "seed scheme yields zero replications"),
            SweepError::ZeroParts => write!(f, "parts axis contains 0"),
            SweepError::ZeroBrokers => write!(f, "brokers axis contains 0"),
            SweepError::NegativeStaleness => {
                write!(f, "gossip_staleness axis contains a negative value")
            }
            SweepError::ZeroWindow => write!(f, "windows axis contains 0"),
            SweepError::ModelWorkloadMismatch { model, workload } => {
                write!(f, "model {model} cannot drive a {workload} workload")
            }
            SweepError::Scenario(e) => write!(f, "cell scenario invalid: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ScenarioError> for SweepError {
    fn from(e: ScenarioError) -> Self {
        SweepError::Scenario(e)
    }
}

impl SweepSpec {
    /// Replications per cell under the seed scheme.
    pub fn replications(&self) -> usize {
        match &self.seeds {
            SeedScheme::Derived { replications, .. } => *replications,
            SeedScheme::Explicit(seeds) => seeds.len(),
        }
    }

    /// The seed of `(cell, replication)` under the seed scheme.
    pub fn seed_for(&self, cell: usize, replication: usize) -> u64 {
        match &self.seeds {
            SeedScheme::Derived { campaign_seed, .. } => {
                derive_seed(*campaign_seed, cell as u64, replication as u64)
            }
            SeedScheme::Explicit(seeds) => seeds[replication],
        }
    }

    /// Checks every axis without expanding.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.models.is_empty() {
            return Err(SweepError::EmptyAxis("models"));
        }
        if self.parts.is_empty() {
            return Err(SweepError::EmptyAxis("parts"));
        }
        if self.drop_probabilities.is_empty() {
            return Err(SweepError::EmptyAxis("drop_probabilities"));
        }
        if self.testbeds.is_empty() {
            return Err(SweepError::EmptyAxis("testbeds"));
        }
        if self.accept_profiles.is_empty() {
            return Err(SweepError::EmptyAxis("accept_profiles"));
        }
        if self.brokers.is_empty() {
            return Err(SweepError::EmptyAxis("brokers"));
        }
        if self.gossip_staleness.is_empty() {
            return Err(SweepError::EmptyAxis("gossip_staleness"));
        }
        if self.piece_policies.is_empty() {
            return Err(SweepError::EmptyAxis("piece_policies"));
        }
        if self.windows.is_empty() {
            return Err(SweepError::EmptyAxis("windows"));
        }
        if self.uploads.is_empty() {
            return Err(SweepError::EmptyAxis("uploads"));
        }
        if self.parts.contains(&0) {
            return Err(SweepError::ZeroParts);
        }
        if self.brokers.contains(&0) {
            return Err(SweepError::ZeroBrokers);
        }
        if self.gossip_staleness.iter().any(|&s| s < 0.0) {
            return Err(SweepError::NegativeStaleness);
        }
        if self.windows.contains(&0) {
            return Err(SweepError::ZeroWindow);
        }
        if self.replications() == 0 {
            return Err(SweepError::NoReplications);
        }
        for &model in &self.models {
            let blind = model == ModelKind::Blind;
            let selective_workload = matches!(self.workload, CellWorkload::SelectedTransfer { .. });
            if blind == selective_workload {
                return Err(SweepError::ModelWorkloadMismatch {
                    model,
                    workload: self.workload.name(),
                });
            }
        }
        Ok(())
    }

    /// Expands the cross-product into cells, in the stable order: testbed
    /// outermost, then accept profile, model, drop probability, brokers,
    /// gossip staleness, piece policy, window, upload, and parts
    /// fastest-varying. The order is part of the output contract — cell
    /// indices feed [`derive_seed`] (singleton broker/staleness/streaming
    /// axes leave the classic grids' indices unchanged).
    pub fn expand(&self) -> Result<Vec<Cell>, SweepError> {
        self.validate()?;
        let mut cells = Vec::new();
        for &testbed in &self.testbeds {
            for &accept in &self.accept_profiles {
                for &model in &self.models {
                    for &drop_probability in &self.drop_probabilities {
                        for &brokers in &self.brokers {
                            for &gossip_staleness in &self.gossip_staleness {
                                for &piece_policy in &self.piece_policies {
                                    for &window in &self.windows {
                                        for &upload in &self.uploads {
                                            for &parts in &self.parts {
                                                cells.push(Cell {
                                                    index: cells.len(),
                                                    testbed,
                                                    accept,
                                                    model,
                                                    drop_probability,
                                                    brokers,
                                                    gossip_staleness,
                                                    piece_policy,
                                                    window,
                                                    upload,
                                                    parts,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// Builds one cell's scenario. Everything funnels through the validating
/// [`ScenarioBuilder`] — a mis-specified grid fails before any thread spins
/// up.
fn scenario_for_cell(spec: &SweepSpec, cell: &Cell) -> Result<ScenarioConfig, ScenarioError> {
    let mut builder = ScenarioBuilder::measurement_setup()
        .testbed(cell.testbed.config())
        .drop_probability(cell.drop_probability);
    if cell.drop_probability > 0.0 {
        builder = builder.retry(RetryPolicy::default());
    }
    if let Some(accept) = cell.accept.accept_by_sc {
        builder = builder.task_accept_by_sc(accept);
    }
    match spec.workload {
        CellWorkload::Distribute { size_bytes } => {
            builder = builder.at(
                spec.warmup,
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes,
                    num_parts: cell.parts,
                    label: DISTRIBUTE_LABEL.into(),
                },
            );
        }
        CellWorkload::SelectedTransfer {
            measured_bytes,
            background_bytes,
        } => {
            let t0 = spec.warmup;
            let t_bg = t0 + SimDuration::from_secs(600);
            let t_measure = t_bg + SimDuration::from_secs(2);
            builder = builder.at(
                t0,
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 8 * MB,
                    num_parts: 8,
                    label: "warmup".into(),
                },
            );
            for k in 0..5u64 {
                builder = builder.at(
                    t0 + SimDuration::from_secs(60 + 15 * k),
                    BrokerCommand::SubmitTask {
                        target: TargetSpec::AllClients,
                        work_gops: 2.0,
                        input_bytes: 0,
                        input_parts: 1,
                        label: format!("warmup-task-{k}"),
                    },
                );
            }
            builder = builder
                .at(
                    t_bg,
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Node(fig6::fastest_peer_node()),
                        size_bytes: background_bytes,
                        num_parts: cell.parts,
                        label: "background".into(),
                    },
                )
                .at(
                    t_measure,
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Selected,
                        size_bytes: measured_bytes,
                        num_parts: cell.parts,
                        label: MEASURED_LABEL.into(),
                    },
                );
            let factory = fig6::factory_for_kind(cell.model)
                .expect("validate() rejected blind models for selected-transfer cells");
            builder = builder.selector(factory);
        }
        CellWorkload::Federation { .. } | CellWorkload::Streaming { .. } => {
            unreachable!("federation and streaming cells never build a testbed scenario")
        }
    }
    builder.build()
}

/// Builds one federation cell's config: one region (and one shard) per
/// broker, the cell's cadence as both gossip interval and staleness bound,
/// and the parts axis as the per-round split count.
fn federation_for_cell(cell: &Cell, peers: usize) -> FederationConfig {
    let defaults = FederationConfig::default();
    let cadence =
        (cell.gossip_staleness > 0.0).then(|| SimDuration::from_secs_f64(cell.gossip_staleness));
    FederationConfig {
        topo: SynthTopoConfig {
            regions: cell.brokers,
            peers: peers.max(cell.brokers),
            ..SynthTopoConfig::default()
        },
        num_shards: cell.brokers,
        gossip_interval: cadence.unwrap_or(defaults.gossip_interval),
        staleness_bound: cadence,
        file_parts: cell.parts,
        trace_capacity: None,
        ..defaults
    }
}

/// One replication's extracted measures.
struct RepOutcome {
    /// `(label, value)` rows, identical labels across replications.
    values: Vec<(String, f64)>,
    /// The selected peer's name (empty when the cell never selects).
    chosen: String,
    /// The replication's full engine metrics.
    metrics: Metrics,
}

/// Runs one federation replication and reduces it to the cell's single
/// petition-latency row.
fn run_federation_rep(cell: &Cell, peers: usize, seed: u64) -> RepOutcome {
    let cfg = federation_for_cell(cell, peers);
    let result =
        run_federation(&cfg, seed).expect("axis validation guarantees a well-formed federation");
    let mean = LatencySummary::from_samples(&result.petition_latencies())
        .map(|s| s.mean_s)
        .unwrap_or(f64::NAN);
    RepOutcome {
        values: vec![("petition_mean".to_string(), mean)],
        chosen: String::new(),
        metrics: result.metrics,
    }
}

/// Builds one streaming cell's config: the default four-region testbed,
/// the cell's piece policy, window, and upload distribution, with a CI
/// horizon and tracing off.
fn streaming_for_cell(cell: &Cell, viewers: usize) -> StreamingConfig {
    StreamingConfig {
        topo: SynthTopoConfig {
            regions: 4,
            peers: viewers.max(4),
            ..SynthTopoConfig::default()
        },
        policy: cell.piece_policy,
        window: cell.window,
        upload: cell.upload,
        num_shards: 4,
        total_pieces: 24,
        horizon: SimDuration::from_secs(600),
        trace_capacity: None,
        ..StreamingConfig::default()
    }
}

/// Runs one streaming replication and reduces it to the cell's median
/// startup delay and fleet rebuffering total.
fn run_streaming_rep(cell: &Cell, viewers: usize, seed: u64) -> RepOutcome {
    let cfg = streaming_for_cell(cell, viewers);
    let result =
        run_streaming(&cfg, seed).expect("axis validation guarantees a well-formed stream");
    let StreamingStats { rebuffer_secs, .. } = result.stats;
    let startup_p50 = StartupQuantiles::from_samples(&result.startup_delays())
        .map(|q| q.p50_s)
        .unwrap_or(f64::NAN);
    RepOutcome {
        values: vec![
            ("startup_p50".to_string(), startup_p50),
            ("rebuffer_secs".to_string(), rebuffer_secs),
        ],
        chosen: String::new(),
        metrics: result.metrics,
    }
}

fn run_cell_rep(spec: &SweepSpec, cfg: &ScenarioConfig, seed: u64) -> RepOutcome {
    let result = run_scenario(cfg, seed);
    match spec.workload {
        CellWorkload::Distribute { .. } => {
            let minutes = per_sc_transfer_metric(&result, DISTRIBUTE_LABEL, |t| {
                t.total_secs().map(|s| s / 60.0)
            });
            RepOutcome {
                values: sc_labels().into_iter().zip(minutes).collect(),
                chosen: String::new(),
                metrics: result.metrics,
            }
        }
        CellWorkload::SelectedTransfer { .. } => {
            let secs = result
                .log
                .transfers
                .iter()
                .find(|t| t.label == MEASURED_LABEL)
                .and_then(|t| t.total_secs())
                .unwrap_or(f64::NAN);
            let chosen = result
                .log
                .selections
                .first()
                .map(|s| s.chosen_name.to_string())
                .unwrap_or_default();
            RepOutcome {
                values: vec![("selected".to_string(), secs)],
                chosen,
                metrics: result.metrics,
            }
        }
        CellWorkload::Federation { .. } => unreachable!("dispatched to run_federation_rep"),
        CellWorkload::Streaming { .. } => unreachable!("dispatched to run_streaming_rep"),
    }
}

/// One cell's folded result.
pub struct CellResult {
    /// The grid point.
    pub cell: Cell,
    /// The unit of every row value.
    pub unit: &'static str,
    /// `(label, stat)` rows: per-label statistics over the replications,
    /// folded in seed order.
    pub rows: Vec<(String, RunningStat)>,
    /// Distinct selected-peer names, first-seen order over seed order.
    pub chosen: Vec<String>,
    /// The cell's engine metrics, merged across replications in seed order.
    pub metrics: Metrics,
}

/// A finished campaign.
pub struct CampaignResult {
    /// Grid name.
    pub grid: String,
    /// Seed scheme, echoed for provenance ("derived" or "explicit").
    pub scheme: &'static str,
    /// The campaign master seed (derived scheme only).
    pub campaign_seed: Option<u64>,
    /// Replications per cell.
    pub replications: usize,
    /// Per-cell results, in expansion order.
    pub cells: Vec<CellResult>,
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl CampaignResult {
    /// Deterministic CSV: one row per (cell, label), shortest-roundtrip
    /// floats, byte-identical for any worker count.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "grid,cell,testbed,accept,model,drop,parts,brokers,staleness,policy,window,upload,label,unit,reps,mean,sd,min,max\n",
        );
        for c in &self.cells {
            for (label, stat) in &c.rows {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    self.grid,
                    c.cell.index,
                    c.cell.testbed.name(),
                    c.cell.accept.name,
                    c.cell.model.name(),
                    c.cell.drop_probability,
                    c.cell.parts,
                    c.cell.brokers,
                    c.cell.gossip_staleness,
                    c.cell.piece_policy.name(),
                    c.cell.window,
                    c.cell.upload.name(),
                    label,
                    c.unit,
                    stat.count(),
                    fmt_f64(stat.mean()),
                    fmt_f64(stat.std_dev()),
                    fmt_f64(stat.min()),
                    fmt_f64(stat.max()),
                ));
            }
        }
        out
    }

    /// Deterministic hand-rolled JSON (same float conventions as the
    /// metrics snapshot: non-finite renders as `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":1,\"grid\":\"{}\"", self.grid));
        out.push_str(&format!(",\"seed_scheme\":\"{}\"", self.scheme));
        match self.campaign_seed {
            Some(seed) => out.push_str(&format!(",\"campaign_seed\":{seed}")),
            None => out.push_str(",\"campaign_seed\":null"),
        }
        out.push_str(&format!(",\"replications\":{}", self.replications));
        out.push_str(",\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"id\":\"{}\",\"testbed\":\"{}\",\"accept\":\"{}\",\"model\":\"{}\",\"drop\":",
                c.cell.index,
                c.cell.id_string(),
                c.cell.testbed.name(),
                c.cell.accept.name,
                c.cell.model.name(),
            ));
            push_json_f64(&mut out, c.cell.drop_probability);
            out.push_str(&format!(",\"brokers\":{},\"staleness\":", c.cell.brokers));
            push_json_f64(&mut out, c.cell.gossip_staleness);
            out.push_str(&format!(
                ",\"policy\":\"{}\",\"window\":{},\"upload\":\"{}\"",
                c.cell.piece_policy.name(),
                c.cell.window,
                c.cell.upload.name(),
            ));
            out.push_str(&format!(
                ",\"parts\":{},\"unit\":\"{}\"",
                c.cell.parts, c.unit
            ));
            out.push_str(",\"chosen\":[");
            for (j, name) in c.chosen.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\""));
            }
            out.push_str("],\"rows\":[");
            for (j, (label, stat)) in c.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"label\":\"{label}\",\"reps\":{},\"mean\":",
                    stat.count()
                ));
                push_json_f64(&mut out, stat.mean());
                out.push_str(",\"sd\":");
                push_json_f64(&mut out, stat.std_dev());
                out.push_str(",\"min\":");
                push_json_f64(&mut out, stat.min());
                out.push_str(",\"max\":");
                push_json_f64(&mut out, stat.max());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Every cell's engine metrics in one registry, tagged `cell{index}` —
    /// ready for [`Metrics::render_prometheus`] exposition.
    pub fn merged_metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for c in &self.cells {
            merged.merge_tagged(&c.metrics, &format!("cell{}", c.cell.index));
        }
        merged
    }

    /// Human summary: one line per cell with the mean across its rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sweep {}: {} cells x {} reps ({} seeds{})\n",
            self.grid,
            self.cells.len(),
            self.replications,
            self.scheme,
            self.campaign_seed
                .map(|s| format!(", campaign seed {s}"))
                .unwrap_or_default()
        );
        for c in &self.cells {
            let means: Vec<f64> = c.rows.iter().map(|(_, s)| s.mean()).collect();
            let avg = means.iter().sum::<f64>() / means.len().max(1) as f64;
            out.push_str(&format!(
                "  [{}] {}: {} rows, mean {} {}{}\n",
                c.cell.index,
                c.cell.id_string(),
                c.rows.len(),
                fmt_f64(avg),
                c.unit,
                if c.chosen.is_empty() {
                    String::new()
                } else {
                    format!(", chose {}", c.chosen.join("/"))
                },
            ));
        }
        out
    }
}

/// Runs the whole campaign over a pool of `workers` threads.
///
/// Every cell × replication is one task; tasks are claimed work-stealing
/// style but folded strictly in (cell, seed) order, so the result — and its
/// CSV/JSON renderings — is byte-identical for every worker count.
pub fn run_campaign(spec: &SweepSpec, workers: usize) -> Result<CampaignResult, SweepError> {
    let cells = spec.expand()?;
    let synthetic = matches!(
        spec.workload,
        CellWorkload::Federation { .. } | CellWorkload::Streaming { .. }
    );
    // Build (and discard) every cell's scenario up front: a mis-specified
    // grid must fail here, not inside a worker thread. (Federation and
    // streaming cells are validated by the axis checks in `expand`
    // instead.)
    if !synthetic {
        for cell in &cells {
            scenario_for_cell(spec, cell)?;
        }
    }
    let reps = spec.replications();
    let outcomes = run_indexed(cells.len() * reps, workers, |task| {
        let cell = &cells[task / reps];
        let rep = task % reps;
        let seed = spec.seed_for(cell.index, rep);
        match spec.workload {
            CellWorkload::Federation { peers } => run_federation_rep(cell, peers, seed),
            CellWorkload::Streaming { viewers } => run_streaming_rep(cell, viewers, seed),
            _ => {
                let cfg = scenario_for_cell(spec, cell).expect("validated above");
                run_cell_rep(spec, &cfg, seed)
            }
        }
    });

    let mut outcomes = outcomes.into_iter();
    let mut results = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut rows: Vec<(String, RunningStat)> = Vec::new();
        let mut chosen = Vec::new();
        let mut metrics = Metrics::new();
        for rep in 0..reps {
            let o = outcomes.next().expect("one outcome per task");
            if rep == 0 {
                rows = o
                    .values
                    .iter()
                    .map(|(label, _)| (label.clone(), RunningStat::new()))
                    .collect();
            }
            debug_assert_eq!(rows.len(), o.values.len(), "ragged cell rows");
            for ((_, stat), (_, v)) in rows.iter_mut().zip(&o.values) {
                stat.record(*v);
            }
            if !o.chosen.is_empty() && !chosen.contains(&o.chosen) {
                chosen.push(o.chosen);
            }
            metrics.merge(&o.metrics);
        }
        results.push(CellResult {
            unit: spec.workload.unit(),
            cell,
            rows,
            chosen,
            metrics,
        });
    }
    let (scheme, campaign_seed) = match &spec.seeds {
        SeedScheme::Derived { campaign_seed, .. } => ("derived", Some(*campaign_seed)),
        SeedScheme::Explicit(_) => ("explicit", None),
    };
    Ok(CampaignResult {
        grid: spec.name.clone(),
        scheme,
        campaign_seed,
        replications: reps,
        cells: results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(seeds: SeedScheme) -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            workload: CellWorkload::Distribute { size_bytes: 4 * MB },
            models: vec![ModelKind::Blind],
            parts: vec![1, 4],
            drop_probabilities: vec![0.0],
            testbeds: vec![TestbedAxis::Measurement],
            accept_profiles: vec![ACCEPT_ALL],
            brokers: vec![1],
            gossip_staleness: vec![0.0],
            piece_policies: vec![PiecePolicy::Sequential],
            windows: vec![1],
            uploads: vec![UploadProfile::Home],
            seeds,
            warmup: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Golden values: the derivation chain is part of the output format.
        assert_eq!(derive_seed(1, 0, 0), derive_seed(1, 0, 0));
        let mut seen = std::collections::HashSet::new();
        for cell in 0..8u64 {
            for rep in 0..8u64 {
                assert!(seen.insert(derive_seed(42, cell, rep)), "seed collision");
            }
        }
        // Different campaign seeds diverge everywhere.
        assert_ne!(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
        assert_ne!(derive_seed(1, 1, 0), derive_seed(1, 0, 1));
    }

    #[test]
    fn expansion_order_is_stable_with_parts_fastest() {
        let spec = SweepSpec {
            parts: vec![1, 4, 16],
            drop_probabilities: vec![0.0, 0.05],
            ..tiny_grid(SeedScheme::Derived {
                campaign_seed: 1,
                replications: 1,
            })
        };
        let cells = spec.expand().expect("valid");
        assert_eq!(cells.len(), 6);
        let keys: Vec<(f64, u32)> = cells
            .iter()
            .map(|c| (c.drop_probability, c.parts))
            .collect();
        assert_eq!(
            keys,
            vec![
                (0.0, 1),
                (0.0, 4),
                (0.0, 16),
                (0.05, 1),
                (0.05, 4),
                (0.05, 16)
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let base = || {
            tiny_grid(SeedScheme::Derived {
                campaign_seed: 1,
                replications: 1,
            })
        };
        let mut s = base();
        s.models.clear();
        assert_eq!(s.validate(), Err(SweepError::EmptyAxis("models")));
        let mut s = base();
        s.parts = vec![0];
        assert_eq!(s.validate(), Err(SweepError::ZeroParts));
        let mut s = base();
        s.seeds = SeedScheme::Explicit(Vec::new());
        assert_eq!(s.validate(), Err(SweepError::NoReplications));
        let mut s = base();
        s.brokers = vec![0];
        assert_eq!(s.validate(), Err(SweepError::ZeroBrokers));
        let mut s = base();
        s.gossip_staleness = vec![-1.0];
        assert_eq!(s.validate(), Err(SweepError::NegativeStaleness));
        let mut s = base();
        s.windows = vec![0];
        assert_eq!(s.validate(), Err(SweepError::ZeroWindow));
        let mut s = base();
        s.piece_policies.clear();
        assert_eq!(s.validate(), Err(SweepError::EmptyAxis("piece_policies")));
        let mut s = base();
        s.uploads.clear();
        assert_eq!(s.validate(), Err(SweepError::EmptyAxis("uploads")));
        let mut s = federation_grid(SeedScheme::Explicit(vec![1]));
        s.models = vec![ModelKind::Economic];
        assert!(matches!(
            s.validate(),
            Err(SweepError::ModelWorkloadMismatch { .. })
        ));
        let mut s = base();
        s.models = vec![ModelKind::Economic];
        assert!(matches!(
            s.validate(),
            Err(SweepError::ModelWorkloadMismatch { .. })
        ));
        let mut s = fig67_grid(SeedScheme::Explicit(vec![1]), SimDuration::from_secs(60));
        s.models.push(ModelKind::Blind);
        assert!(matches!(
            s.validate(),
            Err(SweepError::ModelWorkloadMismatch { .. })
        ));
    }

    #[test]
    fn campaign_output_is_worker_count_invariant() {
        let mk = || {
            tiny_grid(SeedScheme::Derived {
                campaign_seed: 7,
                replications: 2,
            })
        };
        let one = run_campaign(&mk(), 1).expect("valid grid");
        let four = run_campaign(&mk(), 4).expect("valid grid");
        assert_eq!(one.to_csv(), four.to_csv());
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(
            one.merged_metrics().render(),
            four.merged_metrics().render()
        );
    }

    #[test]
    fn merged_metrics_are_tagged_per_cell() {
        let spec = tiny_grid(SeedScheme::Derived {
            campaign_seed: 3,
            replications: 1,
        });
        let campaign = run_campaign(&spec, 2).expect("valid grid");
        let merged = campaign.merged_metrics();
        assert!(merged.counter("cell0.overlay.transfers_completed") > 0);
        assert!(merged.counter("cell1.overlay.transfers_completed") > 0);
        assert_eq!(merged.counter("overlay.transfers_completed"), 0);
    }

    #[test]
    fn explicit_seeds_reuse_the_same_list_per_cell() {
        let spec = tiny_grid(SeedScheme::Explicit(vec![11, 22]));
        assert_eq!(spec.seed_for(0, 1), 22);
        assert_eq!(spec.seed_for(5, 1), 22);
        let derived = tiny_grid(SeedScheme::Derived {
            campaign_seed: 9,
            replications: 2,
        });
        assert_ne!(derived.seed_for(0, 1), derived.seed_for(5, 1));
    }
}
