//! Scripted churn workload: join/leave/rejoin at testbed scale.
//!
//! Drives a [`synthtopo`](crate::synthtopo) testbed with one
//! [`LifecyclePeer`] per peer node: every peer follows a pre-sampled
//! [`LifecycleScript`] (arrival → session → off-time → rejoin …), while
//! each region's broker keeps distributing files to *selected* peers —
//! so peer selection, the registry, and the transfer machinery all run
//! against a membership that is changing under them.
//!
//! The driver is a [`Workload`] on the [`harness`](crate::harness): this
//! module contributes the testbed plan, the broker/peer fleet, the
//! [`churn_series`] schema, and the summary JSON; engine assembly and
//! artifact plumbing are the harness's.
//!
//! Determinism contract: per-peer scripts are sampled **before** the run
//! from seeds derived only from the master seed and the peer's node id,
//! and the sharded engine's event order is worker-count independent, so
//! for a fixed `(config, seed, num_shards)` the result — trace digest,
//! metrics, swap-dynamics counts — is byte-identical at any
//! `shard_workers`. The CI workload-determinism job diffs `psim churn`
//! output at 1 vs 4 workers to hold this line.

use netsim::engine::{Actor, RunOutcome};
use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::parallel::ParallelProfile;
use netsim::profile::ExecutionProfile;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::trace::Trace;
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, TargetSpec};
use overlay::lifecycle::{ChurnProfile, LifecycleConfig, LifecyclePeer, LifecycleScript};
use overlay::message::OverlayMsg;
use overlay::records::RunLog;
use overlay::selector::RoundRobinSelector;

use crate::harness::{
    defaults, BuildCtx, FederationSpec, HarnessError, HarnessRun, TopologyPlan, Workload,
    WorkloadBuilder,
};
use crate::scenario::ScenarioError;
use crate::synthtopo::{build_synth_topo, SynthTopoConfig};
use crate::telemetry::churn_series;

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// The synthetic testbed (regions, peers, geography, capacities).
    pub topo: SynthTopoConfig,
    /// Session/off-time/arrival distributions every peer's script is
    /// sampled from.
    pub profile: ChurnProfile,
    /// Virtual-time horizon bounding the run.
    pub horizon: SimDuration,
    /// Shard count (fixed across worker counts; must be `<= regions`).
    pub num_shards: usize,
    /// Worker threads for the sharded engine.
    pub shard_workers: usize,
    /// Selected-peer distribution rounds per broker.
    pub rounds: usize,
    /// Gap between successive distribution rounds.
    pub round_interval: SimDuration,
    /// Size of each distributed file in bytes.
    pub file_bytes: u64,
    /// Parts per distributed file.
    pub file_parts: u32,
    /// Broker-to-broker gossip interval
    /// ([`defaults::SOAK_GOSSIP_INTERVAL`]).
    pub gossip_interval: SimDuration,
    /// Typed-trace ring capacity; `None` keeps tracing disabled.
    pub trace_capacity: Option<usize>,
    /// When `Some`, a windowed time-series recorder ([`churn_series`])
    /// samples merged metrics at this sim-time interval; rows come back
    /// in [`ChurnResult::series`].
    pub series_interval: Option<SimDuration>,
    /// Record per-shard, per-barrier-round execution accounting
    /// ([`ChurnResult::exec_profile`]).
    pub profile_execution: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            topo: SynthTopoConfig::default(),
            profile: ChurnProfile::default(),
            horizon: SimDuration::from_secs(3600),
            num_shards: 4,
            shard_workers: 1,
            rounds: 4,
            round_interval: SimDuration::from_secs(300),
            file_bytes: crate::spec::MB,
            file_parts: 4,
            gossip_interval: defaults::SOAK_GOSSIP_INTERVAL,
            trace_capacity: Some(defaults::TRACE_CAPACITY),
            series_interval: None,
            profile_execution: false,
        }
    }
}

/// Swap-dynamics accounting: how the population actually moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapDynamics {
    /// First-time joins (should equal the peer count once everyone
    /// arrived).
    pub joins: u64,
    /// Re-entries after a departure.
    pub rejoins: u64,
    /// Graceful leaves sent to brokers.
    pub leaves: u64,
    /// File petitions refused because the peer was not connected.
    pub refused_petitions: u64,
    /// Task offers refused (not connected, or tasks disabled).
    pub refused_tasks: u64,
}

impl SwapDynamics {
    /// Reads the counters back out of merged run metrics.
    pub fn from_metrics(m: &Metrics) -> Self {
        SwapDynamics {
            joins: m.counter("churn.joins"),
            rejoins: m.counter("churn.rejoins"),
            leaves: m.counter("churn.leaves"),
            refused_petitions: m.counter("churn.refused_petitions"),
            refused_tasks: m.counter("churn.refused_tasks"),
        }
    }
}

/// Outputs of one churn run.
pub struct ChurnResult {
    /// Merged run log (shard order, worker-count invariant).
    pub log: RunLog,
    /// Merged engine metrics.
    pub metrics: Metrics,
    /// Merged typed trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Largest per-shard backlog (diagnostic; not worker-invariant).
    pub peak_queue_len: usize,
    /// Window/occupancy profile of the parallel run.
    pub profile: ParallelProfile,
    /// Population movement totals.
    pub swap: SwapDynamics,
    /// Windowed time-series rows, when `series_interval` was set.
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution accounting, when `profile_execution` was set.
    pub exec_profile: Option<ExecutionProfile>,
}

/// The seed a peer's script and identity derive from: master seed plus
/// node id, nothing else — so scripts survive any re-sharding unchanged.
fn peer_seed(seed: u64, node: NodeId) -> u64 {
    seed.wrapping_mul(6364136223846793005)
        .wrapping_add(node.index() as u64)
}

/// The churn driver as a harness [`Workload`].
pub struct ChurnWorkload<'a> {
    /// The run parameters (shared with [`run_churn`]).
    pub cfg: &'a ChurnConfig,
}

impl Workload for ChurnWorkload<'_> {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn topology(&self, seed: u64) -> Result<TopologyPlan, HarnessError> {
        let built = build_synth_topo(&self.cfg.topo, seed);
        let map = self.cfg.topo.shard_map(self.cfg.num_shards)?;
        Ok(TopologyPlan {
            topo: built.topo,
            map,
            brokers: built.brokers,
        })
    }

    /// Gossip-only federation: every broker peers with every other, but
    /// petition forwarding stays off so the pre-federation churn
    /// artifacts (defer-until-peers behaviour, traces, benchmarks) are
    /// unchanged.
    fn federation(&self) -> FederationSpec {
        FederationSpec {
            gossip_interval: self.cfg.gossip_interval,
            ..FederationSpec::default()
        }
    }

    fn actors(&self, cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> {
        let cfg = self.cfg;
        let mut actors: Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> = Vec::new();
        for (r, &broker) in cx.brokers.iter().enumerate() {
            let mut broker_cfg = BrokerConfig::new(cx.seed ^ (0xC4_0000 + r as u64));
            broker_cfg.stop_when_idle = false;
            // Selected-target rounds need a selection model; round-robin is
            // deterministic and touches every live candidate over time, which
            // is exactly what a churn soak wants.
            broker_cfg.selector = Some(Box::new(RoundRobinSelector::new()));
            cx.federation.configure(r, &mut broker_cfg);
            for round in 0..cfg.rounds {
                broker_cfg = broker_cfg.at(
                    SimDuration::from_secs(120) + cfg.round_interval * round as u64,
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Selected,
                        size_bytes: cfg.file_bytes,
                        num_parts: cfg.file_parts,
                        label: format!("churn-r{r}-round{round}"),
                    },
                );
            }
            actors.push((
                broker,
                Box::new(Broker::new(broker_cfg, cx.sink_of(broker))),
            ));
        }
        for r in 0..cfg.topo.regions {
            let home = cx.brokers[r];
            for node in cfg.topo.peer_nodes(r) {
                let pseed = peer_seed(cx.seed, node);
                let mut rng = SimRng::new(pseed).split(0xC4_0B11);
                let script = LifecycleScript::sample(&mut rng, &cfg.profile, cfg.horizon);
                let peer_cfg = LifecycleConfig {
                    brokers: vec![home],
                    script,
                    accepts_tasks: true,
                    failover: None,
                };
                actors.push((node, Box::new(LifecyclePeer::new(peer_cfg, pseed))));
            }
        }
        actors
    }

    fn series_schema(&self, interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
        churn_series(interval)
    }

    fn summarize(&self, seed: u64, run: &HarnessRun) -> String {
        let mut tail = render_summary(
            self.cfg,
            seed,
            run.outcome,
            run.elapsed,
            run.events_processed,
            run.trace.digest(),
            run.log.transfers.len(),
            SwapDynamics::from_metrics(&run.metrics),
        );
        tail.push('\n');
        tail
    }
}

/// The summary JSON shared by [`Workload::summarize`] and
/// [`summary_json`] — one format string, two result shapes.
#[allow(clippy::too_many_arguments)]
fn render_summary(
    cfg: &ChurnConfig,
    seed: u64,
    outcome: RunOutcome,
    elapsed: SimTime,
    events: u64,
    digest: u64,
    transfers: usize,
    swap: SwapDynamics,
) -> String {
    let SwapDynamics {
        joins,
        rejoins,
        leaves,
        refused_petitions,
        refused_tasks,
    } = swap;
    format!(
        "{{\"workload\":\"churn\",\"regions\":{},\"peers\":{},\"num_shards\":{},\
         \"horizon_secs\":{},\"seed\":{},\"outcome\":\"{:?}\",\"elapsed_secs\":{},\
         \"events\":{},\"trace_digest\":\"{:016x}\",\"transfers\":{},\
         \"swap\":{{\"joins\":{joins},\"rejoins\":{rejoins},\"leaves\":{leaves},\
         \"refused_petitions\":{refused_petitions},\"refused_tasks\":{refused_tasks}}}}}",
        cfg.topo.regions,
        cfg.topo.peers,
        cfg.num_shards,
        cfg.horizon.as_secs_f64(),
        seed,
        outcome,
        elapsed.as_secs_f64(),
        events,
        digest,
        transfers,
    )
}

/// Renders the worker-invariant summary JSON `psim churn` and
/// `psim bench-churn` embed (no trailing newline).
pub fn summary_json(cfg: &ChurnConfig, seed: u64, result: &ChurnResult) -> String {
    render_summary(
        cfg,
        seed,
        result.outcome,
        result.elapsed,
        result.events_processed,
        result.trace.digest(),
        result.log.transfers.len(),
        result.swap,
    )
}

/// Runs one churn replication of `cfg` under `seed` on the harness.
/// Byte-identical for any `shard_workers` at fixed shards. Invalid
/// shard counts and degenerate topologies surface as
/// [`ScenarioError`]s instead of panics.
pub fn run_churn(cfg: &ChurnConfig, seed: u64) -> Result<ChurnResult, ScenarioError> {
    let harness = WorkloadBuilder::new()
        .horizon(cfg.horizon)
        .shard_workers(cfg.shard_workers)
        .trace_capacity(cfg.trace_capacity)
        .series_interval(cfg.series_interval)
        .profile_execution(cfg.profile_execution)
        .build()?;
    let run = harness.run(&ChurnWorkload { cfg }, seed)?;
    let swap = SwapDynamics::from_metrics(&run.metrics);
    Ok(ChurnResult {
        log: run.log,
        metrics: run.metrics,
        trace: run.trace,
        outcome: run.outcome,
        elapsed: run.elapsed,
        events_processed: run.events_processed,
        peak_queue_len: run.peak_queue_len,
        profile: run.profile,
        swap,
        series: run.series,
        exec_profile: run.exec_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::DelayDistribution;

    /// Small but churny: short sessions so rejoins happen inside the
    /// horizon, four regions on four shards.
    fn small() -> ChurnConfig {
        ChurnConfig {
            topo: SynthTopoConfig {
                regions: 4,
                peers: 24,
                ..SynthTopoConfig::default()
            },
            profile: ChurnProfile {
                arrival: DelayDistribution::Uniform { lo: 0.0, hi: 120.0 },
                session: DelayDistribution::Lognormal {
                    median: 180.0,
                    sigma: 0.6,
                },
                off_time: DelayDistribution::Lognormal {
                    median: 60.0,
                    sigma: 0.5,
                },
                ..ChurnProfile::default()
            },
            horizon: SimDuration::from_secs(1500),
            num_shards: 4,
            rounds: 3,
            round_interval: SimDuration::from_secs(240),
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn churn_run_is_worker_count_invariant() {
        let runs: Vec<ChurnResult> = [1, 2, 4]
            .iter()
            .map(|&w| {
                run_churn(
                    &ChurnConfig {
                        shard_workers: w,
                        ..small()
                    },
                    2026,
                )
                .expect("small config is valid")
            })
            .collect();
        assert_ne!(runs[0].trace.len(), 0, "trace must not be empty");
        for r in &runs[1..] {
            assert_eq!(r.outcome, runs[0].outcome);
            assert_eq!(r.trace.digest(), runs[0].trace.digest());
            assert_eq!(r.elapsed, runs[0].elapsed);
            assert_eq!(r.events_processed, runs[0].events_processed);
            assert_eq!(r.metrics.render(), runs[0].metrics.render());
            assert_eq!(r.swap, runs[0].swap);
            assert_eq!(r.log.transfers.len(), runs[0].log.transfers.len());
        }
    }

    #[test]
    fn population_actually_churns() {
        let result = run_churn(&small(), 99).expect("small config is valid");
        let peers = small().topo.peers as u64;
        // Arrivals are capped at half the horizon, so every peer joined.
        assert_eq!(result.swap.joins, peers, "every peer joins once");
        assert!(result.swap.leaves > 0, "sessions end inside the horizon");
        assert!(result.swap.rejoins > 0, "short sessions force rejoins");
        assert!(result.events_processed > 0);
        // The Selected-target rounds actually chose someone and moved data.
        assert!(!result.log.selections.is_empty(), "no selections recorded");
        assert!(!result.log.transfers.is_empty(), "no transfers recorded");
    }

    #[test]
    fn scripts_are_independent_of_sharding() {
        // The per-peer seed derives from the node id alone, so two runs
        // that shard differently sample identical lifecycles.
        let one = run_churn(
            &ChurnConfig {
                num_shards: 1,
                ..small()
            },
            7,
        )
        .expect("single-shard config is valid");
        let four = run_churn(&small(), 7).expect("small config is valid");
        assert_eq!(one.swap.joins, four.swap.joins);
        assert_eq!(one.swap.rejoins, four.swap.rejoins);
        assert_eq!(one.swap.leaves, four.swap.leaves);
    }

    #[test]
    fn summarize_matches_summary_json() {
        let cfg = small();
        let harness = WorkloadBuilder::new()
            .horizon(cfg.horizon)
            .trace_capacity(cfg.trace_capacity)
            .build()
            .expect("valid");
        let workload = ChurnWorkload { cfg: &cfg };
        let run = harness.run(&workload, 3).expect("valid");
        let result = run_churn(&cfg, 3).expect("valid");
        assert_eq!(
            workload.summarize(3, &run),
            format!("{}\n", summary_json(&cfg, 3, &result))
        );
    }
}
