//! The workload harness: one typed pipeline under every driver.
//!
//! `run_churn`, `run_multiregion`, `run_federation`, and `run_streaming`
//! all execute the same sequence — build a testbed and its shard map,
//! hand out per-shard [`RecordSink`]s, wire the brokers into a
//! [`Federation`], construct the actor fleet, assemble a
//! [`ShardedEngine`] with tracing / time-series / profiling plumbing,
//! run to the horizon, and drain everything back into merged,
//! worker-count-invariant results. Before this module each driver
//! hand-rolled that sequence (and their defaults drifted); now a driver
//! is a [`Workload`] implementation — what testbed, which actors, which
//! series columns, what summary line — and the harness owns the rest.
//!
//! Determinism contract: the harness adds no randomness of its own. It
//! threads the caller's seed through untouched, builds sinks/federation
//! in a fixed order, and registers actors in exactly the order the
//! workload returned them, so for a fixed `(workload, config, seed,
//! num_shards)` the artifact bytes are identical at any worker count.
//! The pre-refactor drivers were migrated onto this module against
//! byte-identical goldens (`tests/goldens/`) at 1, 2, and 4 workers.

use std::sync::Arc;

use netsim::engine::{Actor, RunOutcome};
use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::parallel::{ParallelError, ParallelProfile, ShardedEngine};
use netsim::profile::ExecutionProfile;
use netsim::shard::{ShardMap, ShardMapError};
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::topology::Topology;
use netsim::trace::Trace;
use netsim::transport::TransportConfig;
use overlay::federation::{Federation, FederationBuilder, FederationError, HomingPolicy};
use overlay::message::OverlayMsg;
use overlay::records::{RecordSink, RunLog};

use crate::report::metrics_snapshot_json;

/// The documented defaults every workload driver resolves to.
///
/// Before the harness these values were restated (and had drifted) in
/// each driver's `Default` impl and in the psim flag table; they now
/// live here once, and `harness::tests::drivers_resolve_to_documented_defaults`
/// pins each driver to them.
pub mod defaults {
    use netsim::time::SimDuration;

    /// Broker-to-broker roster gossip cadence for interactive,
    /// CI-horizon workloads (multiregion, federation, streaming).
    pub const GOSSIP_INTERVAL: SimDuration = SimDuration::from_secs(30);
    /// Gossip cadence for hour-scale churn soaks, where a 30 s cadence
    /// would dominate the event volume. The one *intentional* drift.
    pub const SOAK_GOSSIP_INTERVAL: SimDuration = SimDuration::from_secs(60);
    /// Client probe cadence toward a silent broker
    /// (`FailoverPolicy::default().probe_interval`).
    pub const PROBE_INTERVAL: SimDuration = SimDuration::from_secs(30);
    /// Probe silence threshold before a client re-homes
    /// (`FailoverPolicy::default().probe_timeout`).
    pub const PROBE_TIMEOUT: SimDuration = SimDuration::from_secs(90);
    /// Windowed time-series sampling interval (the psim
    /// `--interval-secs` default).
    pub const SERIES_INTERVAL: SimDuration = SimDuration::from_secs(60);
    /// Typed-trace ring capacity for library-level driver defaults.
    pub const TRACE_CAPACITY: usize = 1 << 14;
    /// Typed-trace ring capacity for psim determinism artifacts, sized
    /// so CI-scale runs never drop events.
    pub const CLI_TRACE_CAPACITY: usize = 1 << 16;
}

/// Why a harness run could not be configured or assembled.
///
/// Builder-checked variants (`NonPositiveHorizon`, `ZeroParallelism`,
/// `ZeroSeriesInterval`) surface from [`WorkloadBuilder::build`];
/// the wrapped variants surface from [`Harness::run`] when the
/// workload's testbed, shard map, or federation parameters are
/// rejected by the layer that owns them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The virtual-time horizon was zero: the engine would stop at t=0.
    NonPositiveHorizon,
    /// `shards` or `shard_workers` was zero; both must be at least 1.
    ZeroParallelism {
        /// Which knob was zero (`"shards"` or `"shard_workers"`).
        what: &'static str,
    },
    /// The shard count cannot partition this testbed (zero, or more
    /// shards than regions for region-major workloads).
    InvalidShardCount {
        /// The rejected shard count.
        num_shards: usize,
        /// How many regions the testbed has.
        regions: usize,
    },
    /// The node → shard assignment was rejected by the shard-map layer.
    ShardMap(ShardMapError),
    /// The sharded engine rejected the topology / shard-map pair (e.g.
    /// a zero cross-shard lookahead would deadlock the window schedule).
    Parallel(ParallelError),
    /// A telemetry series interval of zero virtual time was requested;
    /// the window schedule would never advance.
    ZeroSeriesInterval,
    /// The broker-federation parameters were rejected by
    /// [`FederationBuilder`].
    Federation(FederationError),
}

impl From<ShardMapError> for HarnessError {
    fn from(e: ShardMapError) -> Self {
        HarnessError::ShardMap(e)
    }
}

impl From<ParallelError> for HarnessError {
    fn from(e: ParallelError) -> Self {
        HarnessError::Parallel(e)
    }
}

impl From<TimeSeriesError> for HarnessError {
    fn from(e: TimeSeriesError) -> Self {
        match e {
            TimeSeriesError::ZeroInterval => HarnessError::ZeroSeriesInterval,
        }
    }
}

impl From<FederationError> for HarnessError {
    fn from(e: FederationError) -> Self {
        HarnessError::Federation(e)
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::NonPositiveHorizon => {
                write!(f, "horizon must be positive virtual time")
            }
            HarnessError::ZeroParallelism { what } => {
                write!(f, "{what} must be at least 1")
            }
            HarnessError::InvalidShardCount {
                num_shards,
                regions,
            } => write!(
                f,
                "num_shards {num_shards} cannot partition a {regions}-region testbed \
                 (need 1 <= num_shards <= regions)"
            ),
            HarnessError::ShardMap(e) => write!(f, "shard assignment rejected: {e:?}"),
            HarnessError::Parallel(e) => write!(f, "sharded engine rejected: {e:?}"),
            HarnessError::ZeroSeriesInterval => {
                write!(f, "telemetry series interval must be positive virtual time")
            }
            HarnessError::Federation(e) => write!(f, "federation rejected: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// A scripted broker crash (and optional restart), by region.
///
/// Lives in the harness because every federated workload shares the
/// same scripting surface; `workloads::federation` re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerOutage {
    /// Region whose broker goes down (also its federation roster index).
    pub region: usize,
    /// When the crash fires.
    pub down_at: SimDuration,
    /// When the broker comes back empty-handed; `None` = stays down.
    pub restart_at: Option<SimDuration>,
}

/// How a workload's brokers federate. The harness feeds this through
/// [`FederationBuilder`] against the topology plan's broker roster.
///
/// The default is the inert gossip-only wiring the churn and
/// multi-region drivers use: every broker peers with every other on the
/// [`defaults::GOSSIP_INTERVAL`] cadence, but petition forwarding stays
/// off (`forward_hops: 0`) and nothing is scripted to fail.
#[derive(Debug, Clone, Copy)]
pub struct FederationSpec {
    /// How clients map to their home-broker preference list.
    pub homing: HomingPolicy,
    /// Broker-to-broker roster gossip cadence.
    pub gossip_interval: SimDuration,
    /// Tolerated age of gossiped candidate views; `None` = the builder
    /// default of three gossip rounds.
    pub staleness_bound: Option<SimDuration>,
    /// Hop budget for cross-broker petition forwarding (0 = off).
    pub forward_hops: u32,
    /// Scripted broker crash/restart, if any.
    pub outage: Option<BrokerOutage>,
}

impl Default for FederationSpec {
    fn default() -> Self {
        FederationSpec {
            homing: HomingPolicy::RegionAffinity,
            gossip_interval: defaults::GOSSIP_INTERVAL,
            staleness_bound: None,
            forward_hops: 0,
            outage: None,
        }
    }
}

impl FederationSpec {
    /// Wires `brokers` into a [`Federation`] per this spec.
    fn build(&self, brokers: Vec<NodeId>) -> Result<Federation, FederationError> {
        let mut builder = FederationBuilder::new(brokers)
            .homing(self.homing)
            .gossip_interval(self.gossip_interval)
            .forward_hops(self.forward_hops);
        if let Some(bound) = self.staleness_bound {
            builder = builder.staleness_bound(bound);
        }
        if let Some(kill) = self.outage {
            builder = builder.outage(kill.region, kill.down_at, kill.restart_at);
        }
        builder.build()
    }
}

/// The testbed a workload runs on: topology, node → shard assignment,
/// and the broker roster (one broker per region, region order).
pub struct TopologyPlan {
    /// The full topology, moved into the engine after actor construction.
    pub topo: Topology,
    /// Node → shard assignment (fixed across worker counts).
    pub map: ShardMap,
    /// Broker node per region, in region order — the federation roster.
    pub brokers: Vec<NodeId>,
}

/// Everything a workload may consult while constructing its actor fleet.
pub struct BuildCtx<'a> {
    /// The master seed (actor seeds must derive from it and node ids
    /// only, so they survive re-sharding unchanged).
    pub seed: u64,
    /// The planned topology (read-only; the engine takes it afterwards).
    pub topo: &'a Topology,
    /// The broker roster, region order.
    pub brokers: &'a [NodeId],
    /// The built federation (configure brokers, derive home lists).
    pub federation: &'a Federation,
    map: &'a ShardMap,
    sinks: &'a [RecordSink],
}

impl BuildCtx<'_> {
    /// The record sink of the shard owning `node`.
    pub fn sink_of(&self, node: NodeId) -> RecordSink {
        self.sinks[self.map.shard_of(node)].clone()
    }
}

/// One workload on the harness: the testbed, the actor fleet, the
/// telemetry columns, and the summary tail of the stdout artifact.
/// Everything else — engine assembly, plumbing, draining — is the
/// harness's job and identical across workloads.
pub trait Workload {
    /// Short name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Builds the testbed for this seed: topology, shard map, brokers.
    fn topology(&self, seed: u64) -> Result<TopologyPlan, HarnessError>;

    /// How the brokers federate. Defaults to inert gossip-only wiring.
    fn federation(&self) -> FederationSpec {
        FederationSpec::default()
    }

    /// Constructs the actor fleet. Registration order is exactly the
    /// returned order, so it must be a deterministic function of the
    /// config and seed.
    fn actors(&self, cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)>;

    /// The time-series column set sampled at `interval`.
    fn series_schema(&self, interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError>;

    /// The worker-invariant summary tail appended to the stdout
    /// artifact after the trace JSONL and the metrics snapshot —
    /// summary JSON line(s) for most workloads, the attribution phase
    /// CSV for multiregion. Must end with a newline (or be empty).
    fn summarize(&self, seed: u64, run: &HarnessRun) -> String;
}

/// Merged, worker-count-invariant outputs of one harness run.
pub struct HarnessRun {
    /// Merged run log (shard order, worker-count invariant).
    pub log: RunLog,
    /// Merged engine metrics.
    pub metrics: Metrics,
    /// Merged typed trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Largest per-shard backlog (diagnostic; not worker-invariant).
    pub peak_queue_len: usize,
    /// Window/occupancy profile of the parallel run.
    pub profile: ParallelProfile,
    /// Display name per node, indexed by `NodeId::index()` — the
    /// `label_of` input for attribution breakdowns.
    pub node_names: Vec<Arc<str>>,
    /// Windowed time-series rows, when a series interval was set.
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution accounting, when profiling was enabled.
    pub exec_profile: Option<ExecutionProfile>,
}

impl HarnessRun {
    /// The worker-invariant stdout artifact: trace JSONL, then the
    /// metrics snapshot line, then `tail` (the workload's
    /// [`Workload::summarize`] output) verbatim.
    pub fn artifact(&self, tail: &str) -> String {
        stdout_artifact(&self.trace, &self.metrics, tail)
    }
}

/// Renders the stdout artifact from its three invariant sections. Free
/// function so drivers with pre-harness result structs emit the exact
/// same bytes.
pub fn stdout_artifact(trace: &Trace, metrics: &Metrics, tail: &str) -> String {
    let mut out = trace.to_jsonl();
    out.push_str(&metrics_snapshot_json(metrics));
    out.push('\n');
    out.push_str(tail);
    out
}

/// Builder for a [`Harness`]: the only way to set the validated run
/// parameters. Checks every invariant once, at
/// [`build`](WorkloadBuilder::build), and reports violations as typed
/// [`HarnessError`]s — same discipline as `ScenarioBuilder` and
/// `FederationBuilder`.
#[must_use = "a builder does nothing until build() is called"]
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    horizon: SimDuration,
    shard_workers: usize,
    trace_capacity: Option<usize>,
    series_interval: Option<SimDuration>,
    profile_execution: bool,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        WorkloadBuilder::new()
    }
}

impl WorkloadBuilder {
    /// Starts from the CI-sized defaults: a 900 s horizon, one worker,
    /// no tracing, no time series, no profiling.
    pub fn new() -> Self {
        WorkloadBuilder {
            horizon: SimDuration::from_secs(900),
            shard_workers: 1,
            trace_capacity: None,
            series_interval: None,
            profile_execution: false,
        }
    }

    /// Virtual-time horizon bounding the run.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Worker threads for the sharded engine.
    pub fn shard_workers(mut self, workers: usize) -> Self {
        self.shard_workers = workers;
        self
    }

    /// Typed-trace ring capacity; `None` keeps tracing disabled.
    pub fn trace_capacity(mut self, capacity: Option<usize>) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// When `Some`, the workload's series schema samples merged metrics
    /// at this sim-time interval.
    pub fn series_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.series_interval = interval;
        self
    }

    /// Record per-shard, per-barrier-round execution accounting.
    pub fn profile_execution(mut self, on: bool) -> Self {
        self.profile_execution = on;
        self
    }

    /// Validates the parameters into a runnable [`Harness`].
    pub fn build(self) -> Result<Harness, HarnessError> {
        if self.horizon.is_zero() {
            return Err(HarnessError::NonPositiveHorizon);
        }
        if self.shard_workers == 0 {
            return Err(HarnessError::ZeroParallelism {
                what: "shard_workers",
            });
        }
        if self.series_interval.is_some_and(|i| i.is_zero()) {
            return Err(HarnessError::ZeroSeriesInterval);
        }
        Ok(Harness { params: self })
    }
}

/// A validated harness, ready to run any [`Workload`].
pub struct Harness {
    params: WorkloadBuilder,
}

impl Harness {
    /// Runs `workload` under `seed`: plan the testbed, hand out
    /// per-shard sinks, wire the federation, build the fleet, assemble
    /// the sharded engine with the requested telemetry, run to the
    /// horizon, and drain merged results. Byte-identical for any
    /// `shard_workers` at fixed shards.
    pub fn run(&self, workload: &dyn Workload, seed: u64) -> Result<HarnessRun, HarnessError> {
        let p = &self.params;
        let TopologyPlan { topo, map, brokers } = workload.topology(seed)?;
        let node_names: Vec<Arc<str>> = (0..topo.len())
            .map(|i| Arc::from(topo.node(NodeId(i as u32)).name.as_str()))
            .collect();
        let sinks: Vec<RecordSink> = (0..map.num_shards()).map(|_| RecordSink::new()).collect();
        let federation = workload.federation().build(brokers.clone())?;
        let actors = workload.actors(&BuildCtx {
            seed,
            topo: &topo,
            brokers: &brokers,
            federation: &federation,
            map: &map,
            sinks: &sinks,
        });

        let mut engine: ShardedEngine<OverlayMsg> =
            ShardedEngine::new(topo, TransportConfig::default(), seed, map, p.shard_workers)?;
        if let Some(capacity) = p.trace_capacity {
            engine.enable_trace(capacity);
        }
        if let Some(interval) = p.series_interval {
            engine.install_recorder(workload.series_schema(interval)?);
        }
        if p.profile_execution {
            engine.enable_profiling();
        }
        for (node, actor) in actors {
            engine.register(node, actor);
        }
        let outcome = engine.run_until(SimTime::ZERO + p.horizon);
        let exec_profile = engine.execution_profile().cloned();

        let mut log = RunLog::default();
        for sink in &sinks {
            log.absorb(sink.drain());
        }
        Ok(HarnessRun {
            log,
            metrics: engine.metrics(),
            trace: engine.trace(),
            outcome,
            elapsed: engine.now(),
            events_processed: engine.events_processed(),
            peak_queue_len: engine.peak_queue_len(),
            profile: engine.profile(),
            node_names,
            series: engine.take_recorder(),
            exec_profile,
        })
    }

    /// Runs `workload` and renders its full stdout artifact in one go.
    pub fn run_with_artifact(
        &self,
        workload: &dyn Workload,
        seed: u64,
    ) -> Result<(HarnessRun, String), HarnessError> {
        let run = self.run(workload, seed)?;
        let tail = workload.summarize(seed, &run);
        let artifact = run.artifact(&tail);
        Ok((run, artifact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay::federation::FailoverPolicy;

    #[test]
    fn builder_rejects_zero_horizon() {
        let err = WorkloadBuilder::new()
            .horizon(SimDuration::ZERO)
            .build()
            .err()
            .expect("zero horizon must be rejected");
        assert_eq!(err, HarnessError::NonPositiveHorizon);
    }

    #[test]
    fn builder_rejects_zero_workers() {
        let err = WorkloadBuilder::new()
            .shard_workers(0)
            .build()
            .err()
            .expect("zero workers must be rejected");
        assert_eq!(
            err,
            HarnessError::ZeroParallelism {
                what: "shard_workers"
            }
        );
    }

    #[test]
    fn builder_rejects_zero_series_interval() {
        let err = WorkloadBuilder::new()
            .series_interval(Some(SimDuration::ZERO))
            .build()
            .err()
            .expect("zero series interval must be rejected");
        assert_eq!(err, HarnessError::ZeroSeriesInterval);
    }

    #[test]
    fn builder_accepts_defaults() {
        assert!(WorkloadBuilder::new().build().is_ok());
    }

    /// The satellite contract: each driver's `Default` impl resolves to
    /// the documented harness defaults, and the overlay failover policy
    /// matches the probe constants documented here.
    #[test]
    fn drivers_resolve_to_documented_defaults() {
        use crate::churn::ChurnConfig;
        use crate::federation::FederationConfig;
        use crate::multiregion::MultiRegionConfig;
        use crate::streaming::StreamingConfig;

        assert_eq!(
            ChurnConfig::default().gossip_interval,
            defaults::SOAK_GOSSIP_INTERVAL,
            "churn soaks gossip on the hour-scale cadence"
        );
        assert_eq!(
            MultiRegionConfig::default().gossip_interval,
            defaults::GOSSIP_INTERVAL
        );
        assert_eq!(
            FederationConfig::default().gossip_interval,
            defaults::GOSSIP_INTERVAL
        );
        assert_eq!(
            StreamingConfig::default().gossip_interval,
            defaults::GOSSIP_INTERVAL
        );
        let failover = FailoverPolicy::default();
        assert_eq!(failover.probe_interval, defaults::PROBE_INTERVAL);
        assert_eq!(failover.probe_timeout, defaults::PROBE_TIMEOUT);
        assert_eq!(
            FederationConfig::default().failover.probe_interval,
            defaults::PROBE_INTERVAL
        );
        assert_eq!(
            ChurnConfig::default().trace_capacity,
            Some(defaults::TRACE_CAPACITY)
        );
        assert_eq!(
            FederationConfig::default().trace_capacity,
            Some(defaults::TRACE_CAPACITY)
        );
    }

    #[test]
    fn federation_spec_default_is_gossip_only() {
        let spec = FederationSpec::default();
        assert_eq!(spec.forward_hops, 0, "forwarding must default off");
        assert_eq!(spec.gossip_interval, defaults::GOSSIP_INTERVAL);
        assert!(spec.outage.is_none());
    }

    #[test]
    fn stdout_artifact_orders_sections() {
        let metrics = Metrics::new();
        let trace = Trace::disabled();
        let artifact = stdout_artifact(&trace, &metrics, "tail\n");
        let expected = format!("{}\ntail\n", metrics_snapshot_json(&metrics));
        assert_eq!(artifact, expected);
    }

    /// Which layer a [`Degenerate`] workload sabotages, so each wrapped
    /// `HarnessError` variant is reachable through the public run path.
    #[derive(Clone, Copy)]
    enum FaultMode {
        None,
        /// Shard-map assignment skips an id → `ShardMap(UnusedShard)`.
        UnusedShard,
        /// Map covers fewer nodes than the topology → `Parallel(..)`.
        MapMismatch,
        /// Zero shards requested → `InvalidShardCount`.
        BadShardCount,
        /// Zero gossip cadence → `Federation(NonPositiveGossip)`.
        ZeroGossip,
    }

    /// Minimal actor-less workload with one injectable fault per mode.
    struct Degenerate(FaultMode);

    impl Workload for Degenerate {
        fn name(&self) -> &'static str {
            "degenerate"
        }

        fn topology(&self, seed: u64) -> Result<TopologyPlan, HarnessError> {
            use crate::synthtopo::{build_synth_topo, SynthTopoConfig};
            let cfg = SynthTopoConfig {
                regions: 2,
                peers: 4,
                ..SynthTopoConfig::default()
            };
            let built = build_synth_topo(&cfg, seed);
            let map = match self.0 {
                FaultMode::UnusedShard => ShardMap::from_assignment(vec![0, 2])?,
                FaultMode::MapMismatch => ShardMap::from_assignment(vec![0])?,
                FaultMode::BadShardCount => cfg.shard_map(0)?,
                _ => cfg.shard_map(2)?,
            };
            Ok(TopologyPlan {
                topo: built.topo,
                map,
                brokers: built.brokers,
            })
        }

        fn federation(&self) -> FederationSpec {
            let mut spec = FederationSpec::default();
            if matches!(self.0, FaultMode::ZeroGossip) {
                spec.gossip_interval = SimDuration::ZERO;
            }
            spec
        }

        fn actors(&self, _cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> {
            Vec::new()
        }

        fn series_schema(
            &self,
            interval: SimDuration,
        ) -> Result<TimeSeriesRecorder, TimeSeriesError> {
            TimeSeriesRecorder::new(interval)
        }

        fn summarize(&self, _seed: u64, _run: &HarnessRun) -> String {
            String::new()
        }
    }

    /// The satellite contract: every `HarnessError` variant is reachable
    /// through the public builder / `Harness::run` path — no dead arms.
    #[test]
    fn every_error_variant_is_reachable() {
        assert_eq!(
            WorkloadBuilder::new()
                .horizon(SimDuration::ZERO)
                .build()
                .err(),
            Some(HarnessError::NonPositiveHorizon)
        );
        assert_eq!(
            WorkloadBuilder::new().shard_workers(0).build().err(),
            Some(HarnessError::ZeroParallelism {
                what: "shard_workers"
            })
        );
        assert_eq!(
            WorkloadBuilder::new()
                .series_interval(Some(SimDuration::ZERO))
                .build()
                .err(),
            Some(HarnessError::ZeroSeriesInterval)
        );

        let harness = WorkloadBuilder::new().build().expect("defaults are valid");
        assert_eq!(
            harness.run(&Degenerate(FaultMode::UnusedShard), 7).err(),
            Some(HarnessError::ShardMap(ShardMapError::UnusedShard(1)))
        );
        let err = harness
            .run(&Degenerate(FaultMode::BadShardCount), 7)
            .err()
            .expect("zero shards must be rejected");
        assert!(matches!(
            err,
            HarnessError::InvalidShardCount {
                num_shards: 0,
                regions: 2
            }
        ));
        let err = harness
            .run(&Degenerate(FaultMode::MapMismatch), 7)
            .err()
            .expect("short shard map must be rejected");
        assert!(matches!(
            err,
            HarnessError::Parallel(ParallelError::MapSizeMismatch { .. })
        ));
        let err = harness
            .run(&Degenerate(FaultMode::ZeroGossip), 7)
            .err()
            .expect("zero gossip cadence must be rejected");
        assert!(matches!(
            err,
            HarnessError::Federation(FederationError::NonPositiveGossip)
        ));
        // The healthy mode runs, so the fixture itself isn't vacuous.
        assert!(harness.run(&Degenerate(FaultMode::None), 7).is_ok());
    }
}
