//! Experiment parameterisation and units.
//!
//! The paper writes file sizes as "50Mb", "100Mb", "6.25Mb"; from the
//! measured transfer times (100 Mb in 16 parts averaging 1.7 minutes at
//! JXTA-over-PlanetLab rates) these are **megabytes**, and we treat them as
//! such throughout.

use netsim::time::SimDuration;

/// One megabyte, in bytes (the paper's "Mb").
pub const MB: u64 = 1024 * 1024;

/// The paper's repetition count ("the experiment was repeated 5 times to
/// get significant (averaged) results").
pub const PAPER_REPETITIONS: usize = 5;

/// Common experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Seeds, one per repetition.
    pub seeds: Vec<u64>,
    /// Wall-clock horizon per replication (safety stop).
    pub horizon: SimDuration,
    /// Delay before the first measurement command (lets clients join and
    /// report statistics at least once).
    pub warmup: SimDuration,
}

impl ExperimentSpec {
    /// The paper's methodology: 5 repetitions.
    pub fn paper_defaults() -> Self {
        ExperimentSpec {
            seeds: (1..=PAPER_REPETITIONS as u64).collect(),
            horizon: SimDuration::from_mins(10 * 60),
            warmup: SimDuration::from_secs(60),
        }
    }

    /// A quick variant for unit tests and smoke benches (fewer reps).
    pub fn quick() -> Self {
        ExperimentSpec {
            seeds: vec![1, 2],
            horizon: SimDuration::from_mins(10 * 60),
            warmup: SimDuration::from_secs(60),
        }
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.seeds.len()
    }
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_methodology() {
        let s = ExperimentSpec::paper_defaults();
        assert_eq!(s.repetitions(), 5);
        assert_eq!(s.seeds, vec![1, 2, 3, 4, 5]);
        assert!(s.warmup > SimDuration::ZERO);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(
            ExperimentSpec::quick().repetitions() < ExperimentSpec::paper_defaults().repetitions()
        );
    }

    #[test]
    fn mb_is_mebibyte() {
        assert_eq!(MB, 1_048_576);
        assert_eq!(100 * MB / 16, 6_553_600); // the paper's "6.25Mb" parts
    }
}
