//! Extension studies beyond the paper's evaluation — its stated future
//! work ("a larger number of peer nodes", "real P2P large scale
//! applications") plus robustness under churn and selection for the file
//! *request* primitive.

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};
use overlay::client::ClientCommand;
use overlay::selector::PeerSelector;
use peer_selection::prelude::*;

use crate::report::{FigureReport, SeriesRow};
use crate::runner::{run_replications, SeriesAggregate};
use crate::scenario::{run_scenario, ScenarioConfig, SelectorFactory};
use crate::spec::{ExperimentSpec, MB};

/// Seed salt keeping the extension studies' random streams disjoint from
/// the other drivers'.
const SEED_SALT: u64 = 0xEE7;

fn factory(model: &'static str) -> SelectorFactory {
    peer_selection::service::try_factory_for(model, SEED_SALT)
        .expect("extension studies use known model names")
}

/// Scaling study: selected-transfer quality as the peergroup grows.
///
/// The paper evaluates 8 peers and asks what happens with more; we sweep
/// the slice from the 8 SCs up to all 25 members and measure the mean
/// selected-transfer time for the economic model vs the blind baseline.
/// Expected: the baseline *degrades* as more (heterogeneous, sometimes
/// poor) peers join the pool, while informed selection stays flat or
/// improves — more peers means more choice.
pub mod scaling {
    use super::*;

    /// Peer counts swept (SCs + capped others).
    pub const OTHERS: [usize; 4] = [0, 5, 11, 17];
    /// Selected transfers measured per run.
    pub const ROUNDS: u64 = 6;

    /// Typed result: `[models][sweep]` mean seconds.
    pub struct ScalingResult {
        /// Model names.
        pub models: Vec<&'static str>,
        /// Per-model aggregate across the sweep points.
        pub seconds: Vec<SeriesAggregate>,
    }

    fn one_run(model: &'static str, others: usize, seed: u64) -> f64 {
        let mut cfg = ScenarioConfig::builder()
            .testbed(planetlab::builder::TestbedConfig::slice_with_others(others))
            .build()
            .expect("scaling scenario is valid")
            .with_selector(factory(model));
        cfg = cfg.at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "warmup".into(),
            },
        );
        for r in 0..ROUNDS {
            cfg = cfg.at(
                SimDuration::from_secs(600 + 60 * r),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 8 * MB,
                    num_parts: 8,
                    label: format!("scale-{r}"),
                },
            );
        }
        let result = run_scenario(&cfg, seed);
        let ts: Vec<f64> = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label.starts_with("scale-"))
            .filter_map(|t| t.total_secs())
            .collect();
        ts.iter().sum::<f64>() / ts.len().max(1) as f64
    }

    /// Runs the sweep.
    pub fn run_experiment(spec: &ExperimentSpec) -> ScalingResult {
        let models = vec!["economic", "random"];
        let seconds = models
            .iter()
            .map(|model| {
                let rows: Vec<Vec<f64>> = run_replications(&spec.seeds, |seed| {
                    OTHERS
                        .iter()
                        .map(|&others| one_run(model, others, seed))
                        .collect()
                });
                SeriesAggregate::from_replications(&rows)
            })
            .collect();
        ScalingResult { models, seconds }
    }

    /// Runs and renders.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        let result = run_experiment(spec);
        let labels: Vec<String> = OTHERS.iter().map(|o| format!("{} peers", 8 + o)).collect();
        let mut f = FigureReport::new(
            "Extension: scaling",
            "Mean selected 8 MB transfer vs peergroup size",
            "seconds",
            labels,
        );
        for (m, agg) in result.models.iter().zip(&result.seconds) {
            f.push(SeriesRow::with_sd(*m, agg.means(), agg.std_devs()));
        }
        f.note("paper future work: 'study the performance … using a larger number of peer nodes'");
        f
    }
}

/// Churn study: a peer leaves mid-campaign and the broker must stop
/// selecting it; transfers to remaining peers keep completing.
pub mod churn {
    use super::*;

    /// Typed result.
    pub struct ChurnResult {
        /// Selected transfers completed.
        pub completed: usize,
        /// Selected transfers started in total.
        pub started: usize,
        /// Whether the departed peer was ever chosen after leaving.
        pub leaver_chosen_after_departure: bool,
    }

    /// Runs the churn scenario: SC4 (the favourite) leaves at t=700 s,
    /// while selected transfers continue every 60 s.
    pub fn run_experiment(seed: u64) -> ChurnResult {
        let leave_at = SimDuration::from_secs(700);
        // SC4 leaves the overlay mid-campaign. A Leave is passive, so it
        // coexists with the broker's idle-stop (the builder only rejects
        // work-generating scripted clients under stop_when_idle).
        let mut cfg = ScenarioConfig::builder()
            .client_command(4, leave_at, ClientCommand::Leave)
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: "warmup".into(),
                },
            )
            .build()
            .expect("churn scenario is valid")
            .with_selector(factory("economic"));
        for r in 0..8u64 {
            cfg = cfg.at(
                SimDuration::from_secs(600 + 60 * r),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: format!("churn-{r}"),
                },
            );
        }
        let result = run_scenario(&cfg, seed);
        let started = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label.starts_with("churn-"))
            .count();
        let completed = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label.starts_with("churn-") && t.completed_at.is_some())
            .count();
        let leave_time = netsim::time::SimTime::ZERO + leave_at;
        let leaver = result.testbed.sc(4);
        let leaver_chosen_after_departure = result
            .log
            .selections
            .iter()
            // Allow the Leave message's flight time before the broker knows.
            .any(|s| s.chosen == leaver && s.at > leave_time + SimDuration::from_secs(5));
        ChurnResult {
            completed,
            started,
            leaver_chosen_after_departure,
        }
    }
}

/// File-request selection study: a file replicated on several peers; the
/// broker picks the serving owner per request, per model.
pub mod request {
    use super::*;

    /// Requests issued per run.
    pub const REQUESTS: u64 = 5;

    /// Typed result.
    pub struct RequestResult {
        /// Model names.
        pub models: Vec<&'static str>,
        /// Mean request-transfer seconds per model.
        pub seconds: SeriesAggregate,
    }

    fn one_run(model: &'static str, seed: u64) -> f64 {
        // SC2, SC4, SC6 and SC7 replicate "mirror.iso"; SC1 requests it
        // repeatedly. Good owner selection avoids SC7.
        let mut builder = ScenarioConfig::builder()
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: "warmup".into(),
                },
            )
            // Client-initiated requests are invisible to the broker's idle
            // detector, so the run is horizon-bounded instead.
            .stop_when_idle(false)
            .horizon(SimDuration::from_secs(3000));
        for r in 0..REQUESTS {
            builder = builder.client_command(
                1,
                SimDuration::from_secs(600 + 90 * r),
                ClientCommand::RequestFile {
                    name: "mirror.iso".into(),
                },
            );
        }
        for sc in [2, 4, 6, 7] {
            builder = builder.shared_file(sc, "mirror.iso", 8 * MB);
        }
        let cfg = builder
            .build()
            .expect("request scenario is valid")
            .with_selector(factory(model));
        let result = run_scenario(&cfg, seed);
        let ts: Vec<f64> = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label == "mirror.iso")
            .filter_map(|t| t.total_secs())
            .collect();
        ts.iter().sum::<f64>() / ts.len().max(1) as f64
    }

    /// Runs the study.
    pub fn run_experiment(spec: &ExperimentSpec) -> RequestResult {
        let models = vec!["economic", "quick-peer", "random"];
        let rows: Vec<Vec<f64>> = run_replications(&spec.seeds, |seed| {
            models.iter().map(|m| one_run(m, seed)).collect()
        });
        RequestResult {
            models,
            seconds: SeriesAggregate::from_replications(&rows),
        }
    }

    /// Runs and renders.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        let result = run_experiment(spec);
        let mut f = FigureReport::new(
            "Extension: file request",
            "Mean peer-to-peer request-transfer time by owner-selection model",
            "seconds",
            result.models.iter().map(|m| m.to_string()).collect(),
        );
        f.push(SeriesRow::with_sd(
            "measured",
            result.seconds.means(),
            result.seconds.std_devs(),
        ));
        f.note("the file is replicated on SC2/SC4/SC6/SC7; informed selection avoids SC7");
        f
    }
}

/// Application-matching study: the paper's headline conclusion is that
/// "appropriate selection model should be used according to the type and
/// characteristics of the application". We compare evaluator weight
/// profiles on two application types:
///
/// * a **transfer campaign** on a testbed where most peers are flaky
///   receivers and only SC6/SC8 are perfect, and
/// * a **compute campaign** where exactly those two perfect receivers are
///   reluctant executors.
///
/// The file-oriented profile reads the cancellation statistics and wins
/// the transfer campaign; the task-oriented profile reads the acceptance
/// statistics and wins the compute campaign; each profile loses on the
/// application it was not designed for.
pub mod profiles {
    use super::*;
    use peer_selection::evaluator::WeightProfile;

    /// Work items per campaign.
    pub const ROUNDS: u64 = 12;

    /// Petition-refusal rates: every peer is mildly flaky *except* SC6 and
    /// SC8, which are perfect receivers…
    pub const REFUSE: [f64; 8] = [0.4, 0.4, 0.4, 0.4, 0.4, 0.0, 0.4, 0.0];
    /// …but those same two peers reject most task offers. The two failure
    /// modes live on disjoint peers, so a profile tuned to one statistics
    /// family actively walks into the other trap.
    pub const ACCEPT: [f64; 8] = [1.0, 1.0, 1.0, 1.0, 1.0, 0.2, 1.0, 0.2];

    fn profile_factory(which: &'static str) -> SelectorFactory {
        Box::new(move |_| -> Box<dyn PeerSelector> {
            let profile = match which {
                "file-oriented" => WeightProfile::file_oriented(),
                "task-oriented" => WeightProfile::task_oriented(),
                "message-oriented" => WeightProfile::message_oriented(),
                _ => WeightProfile::same_priority(),
            };
            Box::new(Scored::new(DataEvaluatorModel::with_profile(
                which, profile,
            )))
        })
    }

    /// Warm-up that exercises *both* statistic families so every profile
    /// has data: transfers (some refused) and tasks (some rejected).
    fn warmup_mixed(mut cfg: ScenarioConfig) -> ScenarioConfig {
        for k in 0..12u64 {
            cfg = cfg
                .at(
                    SimDuration::from_secs(60 + 90 * k),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::AllClients,
                        size_bytes: 2 * MB,
                        num_parts: 2,
                        label: format!("warm-f-{k}"),
                    },
                )
                .at(
                    SimDuration::from_secs(90 + 90 * k),
                    BrokerCommand::SubmitTask {
                        target: TargetSpec::AllClients,
                        work_gops: 2.0,
                        input_bytes: 0,
                        input_parts: 1,
                        label: format!("warm-t-{k}"),
                    },
                );
        }
        cfg
    }

    /// The shared campaign base: flaky-peer refusal and acceptance
    /// profiles, validated once, plus the profile's selector.
    fn profiled_config(which: &'static str) -> ScenarioConfig {
        ScenarioConfig::builder()
            .transfer_refuse_by_sc(REFUSE)
            .task_accept_by_sc(ACCEPT)
            .build()
            .expect("profile scenario is valid")
            .with_selector(profile_factory(which))
    }

    /// Success rate of a selected-transfer campaign under `which` profile.
    pub fn transfer_campaign(which: &'static str, seed: u64) -> f64 {
        let mut cfg = warmup_mixed(profiled_config(which));
        for r in 0..ROUNDS {
            cfg = cfg.at(
                SimDuration::from_secs(1800 + 45 * r),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: format!("camp-{r}"),
                },
            );
        }
        let result = run_scenario(&cfg, seed);
        let xfers: Vec<_> = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label.starts_with("camp-"))
            .collect();
        xfers.iter().filter(|t| t.completed_at.is_some()).count() as f64 / xfers.len().max(1) as f64
    }

    /// Success rate of a selected-task campaign under `which` profile.
    pub fn task_campaign(which: &'static str, seed: u64) -> f64 {
        let mut cfg = warmup_mixed(profiled_config(which));
        for r in 0..ROUNDS {
            cfg = cfg.at(
                SimDuration::from_secs(1800 + 45 * r),
                BrokerCommand::SubmitTask {
                    target: TargetSpec::Selected,
                    work_gops: 20.0,
                    input_bytes: 0,
                    input_parts: 1,
                    label: format!("camp-{r}"),
                },
            );
        }
        let result = run_scenario(&cfg, seed);
        let tasks: Vec<_> = result
            .log
            .tasks
            .iter()
            .filter(|t| t.label.starts_with("camp-"))
            .collect();
        tasks.iter().filter(|t| t.success).count() as f64 / tasks.len().max(1) as f64
    }

    /// Debug helper: (success_rate, chosen names) for one transfer campaign.
    pub fn transfer_campaign_debug(which: &'static str, seed: u64) -> (f64, Vec<String>) {
        let mut cfg = warmup_mixed(profiled_config(which));
        for r in 0..ROUNDS {
            cfg = cfg.at(
                SimDuration::from_secs(1800 + 45 * r),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 4 * MB,
                    num_parts: 4,
                    label: format!("camp-{r}"),
                },
            );
        }
        let result = run_scenario(&cfg, seed);
        let xfers: Vec<_> = result
            .log
            .transfers
            .iter()
            .filter(|t| t.label.starts_with("camp-"))
            .collect();
        let rate = xfers.iter().filter(|t| t.completed_at.is_some()).count() as f64
            / xfers.len().max(1) as f64;
        let picks = result
            .log
            .selections
            .iter()
            .map(|s| s.chosen_name.to_string())
            .collect();
        (rate, picks)
    }

    /// Runs the full matrix and renders it.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        let profiles = ["file-oriented", "task-oriented", "same-priority"];
        let mut f = FigureReport::new(
            "Extension: application matching",
            "Campaign success rate by evaluator weight profile",
            "fraction completed",
            profiles.iter().map(|p| p.to_string()).collect(),
        );
        let xfer_rows: Vec<Vec<f64>> = run_replications(&spec.seeds, |seed| {
            profiles
                .iter()
                .map(|p| transfer_campaign(p, seed))
                .collect()
        });
        let task_rows: Vec<Vec<f64>> = run_replications(&spec.seeds, |seed| {
            profiles.iter().map(|p| task_campaign(p, seed)).collect()
        });
        let xa = SeriesAggregate::from_replications(&xfer_rows);
        let ta = SeriesAggregate::from_replications(&task_rows);
        f.push(SeriesRow::with_sd(
            "transfer campaign",
            xa.means(),
            xa.std_devs(),
        ));
        f.push(SeriesRow::with_sd(
            "compute campaign",
            ta.means(),
            ta.std_devs(),
        ));
        f.note("the paper's conclusion, quantified: each profile wins the application it was designed for");
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_informed_selection_does_not_degrade() {
        let spec = ExperimentSpec {
            seeds: vec![1, 2],
            ..ExperimentSpec::quick()
        };
        let r = scaling::run_experiment(&spec);
        let econ = &r.seconds[0].means();
        let random = &r.seconds[1].means();
        // Economic stays roughly flat from 8 to 25 peers…
        assert!(
            econ[3] < econ[0] * 1.5,
            "economic degraded with scale: {econ:?}"
        );
        // …and beats the blind baseline at the largest scale.
        assert!(
            econ[3] < random[3],
            "economic {econ:?} should beat random {random:?} at 25 peers"
        );
    }

    #[test]
    fn churn_leaver_is_not_selected_after_departure() {
        let r = churn::run_experiment(7);
        assert!(!r.leaver_chosen_after_departure, "departed peer selected");
        assert!(r.started >= 8, "all selected transfers started");
        assert_eq!(r.completed, r.started, "all selected transfers completed");
    }

    #[test]
    fn request_selection_avoids_bad_owner() {
        let spec = ExperimentSpec {
            seeds: vec![1, 2],
            ..ExperimentSpec::quick()
        };
        let r = request::run_experiment(&spec);
        let means = r.seconds.means();
        // economic < random (random sometimes serves from SC7).
        assert!(means[0] < means[2], "economic {means:?} should beat random");
        for m in &means {
            assert!(m.is_finite() && *m > 0.0);
        }
    }

    #[test]
    fn profile_matches_application() {
        let spec = ExperimentSpec {
            seeds: vec![1, 2, 3],
            ..ExperimentSpec::quick()
        };
        let profile_names = ["file-oriented", "task-oriented"];
        let mut xfer = [0.0; 2];
        let mut task = [0.0; 2];
        for (i, p) in profile_names.iter().enumerate() {
            for &seed in &spec.seeds {
                xfer[i] += profiles::transfer_campaign(p, seed) / spec.seeds.len() as f64;
                task[i] += profiles::task_campaign(p, seed) / spec.seeds.len() as f64;
            }
        }
        // file-oriented wins the transfer campaign…
        assert!(
            xfer[0] > xfer[1],
            "transfer campaign: file-oriented {:.2} vs task-oriented {:.2}",
            xfer[0],
            xfer[1]
        );
        // …and task-oriented wins the compute campaign.
        assert!(
            task[1] > task[0],
            "compute campaign: task-oriented {:.2} vs file-oriented {:.2}",
            task[1],
            task[0]
        );
    }

    #[test]
    fn reports_render() {
        let spec = ExperimentSpec {
            seeds: vec![1],
            ..ExperimentSpec::quick()
        };
        assert!(scaling::run(&spec).render().contains("scaling"));
        assert!(request::run(&spec).render().contains("file request"));
    }
}
