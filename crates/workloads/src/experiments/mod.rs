//! One module per paper artifact (Table 1, Figures 2–7).
//!
//! Every module exposes `run(&ExperimentSpec) -> FigureReport` (plus a typed
//! result where useful). Reports carry the paper's published series next to
//! the measured ones so EXPERIMENTS.md can be regenerated mechanically.

pub mod ablation;
pub mod adaptation;
pub mod extensions;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod transfer_study;

pub use transfer_study::{fig2, fig3, fig4};

use overlay::records::TransferRecord;

use crate::scenario::ScenarioResult;

/// SC1…SC8 labels.
pub(crate) fn sc_labels() -> Vec<String> {
    planetlab::calibration::SC_LABELS
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Per-SC mean of `metric` over transfers labelled `label`.
/// Returns NaN for SCs with no matching transfer (kept visible in reports).
pub(crate) fn per_sc_transfer_metric(
    result: &ScenarioResult,
    label: &str,
    metric: impl Fn(&TransferRecord) -> Option<f64>,
) -> Vec<f64> {
    result
        .testbed
        .scs
        .iter()
        .map(|&sc| {
            let vals: Vec<f64> = result
                .log
                .transfers
                .iter()
                .filter(|t| t.to == sc && t.label == label)
                .filter_map(&metric)
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Nominal one-way network delay from the broker to an SC, in seconds —
/// subtracted from sender-clock petition latencies to recover the
/// receiver-side service delay the paper's Fig 2 reports.
pub(crate) fn broker_owd_secs(result: &ScenarioResult, sc: netsim::node::NodeId) -> f64 {
    result
        .testbed
        .topology
        .path(result.testbed.broker, sc)
        .one_way_delay
        .as_secs_f64()
}
