//! Table 1: the PlanetLab slice roster, plus the synthetic testbed's
//! per-node characterisation (our substitute for the real slice).

use std::fmt::Write as _;

use planetlab::builder::{build, TestbedConfig};
use planetlab::calibration::PAPER_FIG2_PETITION_SECS;
use planetlab::rtt::RttModel;
use planetlab::sites::{simple_clients, BROKER, TABLE1};

/// Renders the paper's Table 1 (the 25 slice nodes) with roles.
pub fn render_roster() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1 — nodes added to the PlanetLab slice ==");
    let _ = writeln!(
        out,
        "{:<40} {:<16} {:<3} {:<6}",
        "hostname", "city", "cc", "role"
    );
    for site in &TABLE1 {
        let _ = writeln!(
            out,
            "{:<40} {:<16} {:<3} {:<6}",
            site.hostname,
            site.city,
            site.country,
            site.label()
        );
    }
    let _ = writeln!(
        out,
        "{:<40} {:<16} {:<3} {:<6}",
        BROKER.hostname, BROKER.city, BROKER.country, "broker"
    );
    out
}

/// Renders the calibrated SC profiles: the testbed's ground truth.
pub fn render_testbed() -> String {
    let tb = build(&TestbedConfig::measurement_setup());
    let rtt = RttModel::default();
    let mut out = String::new();
    let _ = writeln!(out, "== Synthetic testbed — calibrated SC profiles ==");
    let _ = writeln!(
        out,
        "{:<5} {:<28} {:>9} {:>10} {:>9} {:>8}",
        "peer", "hostname", "rtt(ms)", "bw(MB/s)", "wake(s)", "cpu(gops)"
    );
    for (i, site) in simple_clients().iter().enumerate() {
        let sc = tb.sc(i as u8 + 1);
        let spec = tb.topology.node(sc);
        let link = tb.topology.access(sc);
        let _ = writeln!(
            out,
            "{:<5} {:<28} {:>9.1} {:>10.2} {:>9.2} {:>8.2}",
            format!("SC{}", i + 1),
            site.hostname,
            rtt.rtt_ms(&BROKER, site),
            link.down_bytes_per_sec / 1e6,
            spec.service_delay.mean_secs(),
            spec.cpu.base_gops,
        );
    }
    let _ = writeln!(
        out,
        "wake(s) calibrated to the paper's Fig 2 series: {:?}",
        PAPER_FIG2_PETITION_SECS
    );
    out
}

/// Full Table-1 report: roster + testbed characterisation.
pub fn run() -> String {
    let mut s = render_roster();
    s.push('\n');
    s.push_str(&render_testbed());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_lists_all_25_plus_broker() {
        let s = render_roster();
        assert_eq!(s.lines().count(), 2 + 25 + 1); // header rows + nodes + broker
        assert!(s.contains("ait05.us.es"));
        assert!(s.contains("nozomi.lsi.upc.edu"));
        assert!(s.contains("SC7"));
    }

    #[test]
    fn testbed_table_has_eight_scs() {
        let s = render_testbed();
        for i in 1..=8 {
            assert!(s.contains(&format!("SC{i}")), "missing SC{i}");
        }
        assert!(s.contains("27.13"), "SC7's calibration target shown");
    }

    #[test]
    fn combined_report() {
        let s = run();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Synthetic testbed"));
    }

    #[test]
    fn roles_match_paper_counts() {
        let scs = TABLE1
            .iter()
            .filter(|s| matches!(s.role, planetlab::sites::Role::SimpleClient(_)))
            .count();
        assert_eq!(scs, 8);
    }
}
