//! The shared blind-transfer study behind Figures 2, 3 and 4.
//!
//! The paper's §4.2 "File transmission" experiment: a large file is sent to
//! every SC peer with **no** peer selection, repeated 5 times. From the same
//! runs the paper reads three series:
//!
//! * Fig 2 — time each peer takes to *receive the petition*;
//! * Fig 3 — transmission time of the 50 Mb file;
//! * Fig 4 — time to receive the *last Mb*.
//!
//! We reproduce that by transferring 50 MB in 50 × 1 MB parts to all eight
//! peers concurrently (each run), so the last part is exactly the last Mb.

use overlay::broker::{BrokerCommand, TargetSpec};
use planetlab::calibration::{PAPER_FIG2_PETITION_SECS, PAPER_FIG4_SC7_SLOWDOWN_BAND};

use crate::attribution::{attribute_trace, Phase, TransferAttribution};
use crate::experiments::{broker_owd_secs, per_sc_transfer_metric, sc_labels};
use crate::report::{FigureReport, SeriesRow};
use crate::runner::{run_replications, run_traced, SeriesAggregate};
use crate::scenario::ScenarioConfig;
use crate::spec::{ExperimentSpec, MB};

const LABEL: &str = "fig234";
/// File size of the paper's measured transfer.
pub const FILE_SIZE: u64 = 50 * MB;
/// One part per megabyte so "the last Mb" is the last part.
pub const NUM_PARTS: u32 = 50;

/// Aggregated outputs of the study.
pub struct TransferStudy {
    /// Petition latency per SC, seconds (Fig 2).
    pub petition: SeriesAggregate,
    /// Total transmission time per SC, minutes (Fig 3).
    pub total_min: SeriesAggregate,
    /// Last-Mb time per SC, seconds (Fig 4).
    pub last_mb: SeriesAggregate,
    /// Attributed wake-up phase per SC, seconds (trace decomposition).
    pub wakeup: SeriesAggregate,
    /// Attributed transmission phase per SC, minutes.
    pub transmission_min: SeriesAggregate,
}

/// Per-SC mean of an attributed phase over one replication's transfers.
fn per_sc_phase(
    scs: &[netsim::node::NodeId],
    attrs: &[TransferAttribution],
    phase: Phase,
    scale: f64,
) -> Vec<f64> {
    scs.iter()
        .map(|&sc| {
            let vals: Vec<f64> = attrs
                .iter()
                .filter(|a| a.to == sc)
                .map(|a| a.phase_secs(phase) * scale)
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Runs the study: one blind 50 MB distribution per seed, traced so the
/// reports can break latency into attributed phases.
pub fn run(spec: &ExperimentSpec) -> TransferStudy {
    let rows = run_replications(&spec.seeds, |seed| {
        let cfg = ScenarioConfig::measurement_setup().at(
            spec.warmup,
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: FILE_SIZE,
                num_parts: NUM_PARTS,
                label: LABEL.into(),
            },
        );
        let result = run_traced(&cfg, seed).result;
        let petition = result
            .testbed
            .scs
            .iter()
            .zip(per_sc_transfer_metric(&result, LABEL, |t| {
                t.petition_latency_secs()
            }))
            .map(|(&sc, lat)| lat - broker_owd_secs(&result, sc))
            .collect::<Vec<f64>>();
        let total_min =
            per_sc_transfer_metric(&result, LABEL, |t| t.total_secs().map(|s| s / 60.0));
        let last_mb = per_sc_transfer_metric(&result, LABEL, |t| t.last_part_secs());
        let attrs = attribute_trace(&result.trace);
        let wakeup = per_sc_phase(&result.testbed.scs, &attrs, Phase::Wakeup, 1.0);
        let transmission_min =
            per_sc_phase(&result.testbed.scs, &attrs, Phase::Transmission, 1.0 / 60.0);
        (petition, total_min, last_mb, wakeup, transmission_min)
    });
    TransferStudy {
        petition: SeriesAggregate::from_replications(
            &rows.iter().map(|r| r.0.clone()).collect::<Vec<_>>(),
        ),
        total_min: SeriesAggregate::from_replications(
            &rows.iter().map(|r| r.1.clone()).collect::<Vec<_>>(),
        ),
        last_mb: SeriesAggregate::from_replications(
            &rows.iter().map(|r| r.2.clone()).collect::<Vec<_>>(),
        ),
        wakeup: SeriesAggregate::from_replications(
            &rows.iter().map(|r| r.3.clone()).collect::<Vec<_>>(),
        ),
        transmission_min: SeriesAggregate::from_replications(
            &rows.iter().map(|r| r.4.clone()).collect::<Vec<_>>(),
        ),
    }
}

/// Figure 2: time in receiving the petition, per SC peer.
pub mod fig2 {
    use super::*;

    /// Runs the experiment and builds the report.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        report(&super::run(spec))
    }

    /// Builds the Fig 2 report from an existing study.
    pub fn report(study: &TransferStudy) -> FigureReport {
        let mut f = FigureReport::new(
            "Figure 2",
            "Time in receiving the petition for file transmission",
            "seconds",
            sc_labels(),
        );
        f.push(SeriesRow::new("paper", PAPER_FIG2_PETITION_SECS.to_vec()));
        f.push(SeriesRow::with_sd(
            "measured",
            study.petition.means(),
            study.petition.std_devs(),
        ));
        f.push(SeriesRow::with_sd(
            "wakeup phase",
            study.wakeup.means(),
            study.wakeup.std_devs(),
        ));
        f.note("measured = petition handled at peer − petition sent − nominal one-way delay");
        f.note("wakeup phase = attributed petition→ack share of the traced timeline");
        f
    }
}

/// Figure 3: transmission time of the 50 Mb file, per SC peer.
pub mod fig3 {
    use super::*;

    /// Runs the experiment and builds the report.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        report(&super::run(spec))
    }

    /// Builds the Fig 3 report from an existing study.
    pub fn report(study: &TransferStudy) -> FigureReport {
        let mut f = FigureReport::new(
            "Figure 3",
            "Transmission time for a file of 50 Mb",
            "minutes",
            sc_labels(),
        );
        f.push(SeriesRow::with_sd(
            "measured",
            study.total_min.means(),
            study.total_min.std_devs(),
        ));
        f.push(SeriesRow::with_sd(
            "transmission phase",
            study.transmission_min.means(),
            study.transmission_min.std_devs(),
        ));
        f.note(
            "paper publishes this figure as a chart without numbers; expected shape: SC7 slowest",
        );
        f.note("transmission phase = attributed productive part-transfer share (minutes)");
        f
    }
}

/// Figure 4: transmission time of the last Mb, per SC peer.
pub mod fig4 {
    use super::*;

    /// Runs the experiment and builds the report.
    pub fn run(spec: &ExperimentSpec) -> FigureReport {
        report(&super::run(spec))
    }

    /// Builds the Fig 4 report from an existing study.
    pub fn report(study: &TransferStudy) -> FigureReport {
        let mut f = FigureReport::new(
            "Figure 4",
            "Transmission time of the last Mb",
            "seconds",
            sc_labels(),
        );
        let means = study.last_mb.means();
        f.push(SeriesRow::with_sd(
            "measured",
            means.clone(),
            study.last_mb.std_devs(),
        ));
        let others: Vec<f64> = means
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 6)
            .map(|(_, &v)| v)
            .collect();
        let mean_others = others.iter().sum::<f64>() / others.len() as f64;
        let slowdown = means[6] / mean_others;
        f.note(format!(
            "SC7 slowdown vs mean of others: {:.2}× (paper: {:.0}–{:.0}×)",
            slowdown, PAPER_FIG4_SC7_SLOWDOWN_BAND.0, PAPER_FIG4_SC7_SLOWDOWN_BAND.1
        ));
        let wakeup_min = study.wakeup.means()[6] / 60.0;
        let xmit_min = study.transmission_min.means()[6];
        f.note(format!(
            "SC7 bulk runs are {}-dominated: {:.2} min transmission vs {:.2} min wakeup",
            if xmit_min > wakeup_min {
                "transmission"
            } else {
                "wakeup"
            },
            xmit_min,
            wakeup_min
        ));
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{argmax, spearman};

    fn study() -> &'static TransferStudy {
        use std::sync::OnceLock;
        static STUDY: OnceLock<TransferStudy> = OnceLock::new();
        STUDY.get_or_init(|| run(&ExperimentSpec::quick()))
    }

    #[test]
    fn all_scs_have_data() {
        let s = study();
        for stat in &s.petition.stats {
            assert!(stat.count() >= 2, "petition data missing");
        }
        for m in s.total_min.means() {
            assert!(m.is_finite() && m > 0.0);
        }
    }

    #[test]
    fn fig2_shape_matches_paper() {
        let s = study();
        let measured = s.petition.means();
        // SC7 is the worst, by a wide margin.
        assert_eq!(argmax(&measured), Some(6), "measured {measured:?}");
        // Rank order strongly correlates with the paper's series.
        let rho = spearman(&measured, &PAPER_FIG2_PETITION_SECS);
        assert!(rho > 0.85, "spearman {rho}, measured {measured:?}");
        // Magnitudes: every SC within a factor ~2.5 of the paper (latencies
        // are lognormal, so per-rep means wobble) except the sub-100 ms
        // peers where the absolute error is bounded instead.
        for (i, (&m, &p)) in measured.iter().zip(&PAPER_FIG2_PETITION_SECS).enumerate() {
            if p < 0.5 {
                assert!((m - p).abs() < 0.5, "SC{}: {m} vs {p}", i + 1);
            } else {
                let ratio = m / p;
                assert!((0.4..2.5).contains(&ratio), "SC{}: {m} vs {p}", i + 1);
            }
        }
    }

    #[test]
    fn fig3_sc7_is_slowest_and_minutes_scale() {
        let s = study();
        let total = s.total_min.means();
        assert_eq!(argmax(&total), Some(6), "measured {total:?}");
        // Healthy peers transfer 50 MB in ~1 minute; SC7 takes several.
        for (i, &m) in total.iter().enumerate() {
            if i != 6 {
                assert!((0.4..4.0).contains(&m), "SC{} took {m} min", i + 1);
            }
        }
        assert!(total[6] > 3.0, "SC7 took {} min", total[6]);
    }

    #[test]
    fn fig4_sc7_slowdown_in_band() {
        let s = study();
        let last = s.last_mb.means();
        assert_eq!(argmax(&last), Some(6));
        let others: Vec<f64> = last
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 6)
            .map(|(_, &v)| v)
            .collect();
        let mean_others = others.iter().sum::<f64>() / others.len() as f64;
        let slowdown = last[6] / mean_others;
        assert!(
            (1.8..8.0).contains(&slowdown),
            "SC7 last-Mb slowdown {slowdown}"
        );
    }

    #[test]
    fn reports_render() {
        let s = study();
        let r2 = fig2::report(s).render();
        assert!(r2.contains("Figure 2") && r2.contains("27.13"));
        assert!(r2.contains("wakeup phase"), "{r2}");
        let r3 = fig3::report(s).render();
        assert!(r3.contains("Figure 3"));
        assert!(r3.contains("transmission phase"), "{r3}");
        let r4 = fig4::report(s).render();
        assert!(r4.contains("slowdown"));
        assert!(r4.contains("-dominated"), "{r4}");
    }

    #[test]
    fn attributed_phases_match_the_paper_story() {
        let s = study();
        let wakeup = s.wakeup.means();
        let xmit_min = s.transmission_min.means();
        // Wake-up is worst on SC7 and roughly tracks the directly measured
        // petition latency (the two observe the same protocol milestones).
        assert_eq!(argmax(&wakeup), Some(6), "wakeup {wakeup:?}");
        for (i, (&w, &p)) in wakeup.iter().zip(&s.petition.means()).enumerate() {
            assert!(
                (w - p).abs() < 1.0 + p * 0.5,
                "SC{}: wakeup {w} vs petition {p}",
                i + 1
            );
        }
        // Bulk runs are transmission-bound everywhere, including SC7: the
        // 50 MB payload costs minutes, the wake-up seconds.
        for (i, (&x, &w)) in xmit_min.iter().zip(&wakeup).enumerate() {
            assert!(
                x * 60.0 > w,
                "SC{}: transmission {x} min vs wakeup {w} s",
                i + 1
            );
        }
    }
}
