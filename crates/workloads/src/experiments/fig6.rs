//! Figure 6: file transmission time under the three peer selection models
//! (economic scheduling, data evaluator in same-priority mode, user's
//! preference in quick-peer mode), at 4-part and 16-part granularity.
//!
//! Scenario design (the paper gives the models and the measured times but
//! not the workload details; this scenario realises the *mechanism* each
//! model's description implies):
//!
//! 1. **Warm-up** — a small file goes to every peer (throughput + petition
//!    EWMAs for all), and five rounds of small tasks populate the §2.2 task
//!    statistics; the well-connected peers decline offers more often
//!    ([`WARMUP_TASK_ACCEPT`]), so their task statistics look worse.
//! 2. **Background load** — a 25 MB transfer is started to the historically
//!    fastest peer (SC4 by calibration), creating a *current-state* backlog
//!    that history alone cannot see.
//! 3. **Measured transfer** — 10 MB to the peer each model selects.
//!
//! Observed behaviour, matching each model's §2 description: economic
//! avoids the backlog *and* knows wake-up history → picks a prompt, fast,
//! idle peer (SC6); the data evaluator sees the backlog in its queue
//! criteria but — weighing task-acceptance statistics that are irrelevant
//! to a transfer and being blind to responsiveness — lands on a sluggish,
//! willing peer (SC5, 5.19 s wake-ups); quick-peer returns to its stale
//! favourite (SC4) and queues behind the background transfer.

use overlay::selector::ModelKind;
use planetlab::calibration::{PAPER_FIG6_16PARTS_SECS, PAPER_FIG6_4PARTS_SECS};

use crate::report::{FigureReport, SeriesRow};
use crate::runner::{default_workers, SeriesAggregate};
use crate::scenario::SelectorFactory;
use crate::spec::{ExperimentSpec, MB};
use crate::sweep::{fig67_grid, run_campaign, SeedScheme};

/// Size of the measured transfer.
pub const MEASURED_SIZE: u64 = 10 * MB;
/// Size of the background transfer congesting the historically-fastest peer.
pub const BACKGROUND_SIZE: u64 = 25 * MB;
/// Per-SC task-acceptance during warm-up: the well-connected peers (SC2,
/// SC4, SC6, SC8) are popular and decline task offers more often, so their
/// §2.2 task statistics look worse than the sluggish-but-willing peers'.
/// This is the information asymmetry that separates the data evaluator
/// (which weighs those statistics) from the economic model (which, for a
/// pure file transfer, cares only about predicted completion).
pub const WARMUP_TASK_ACCEPT: [f64; 8] = [1.0, 0.7, 1.0, 0.7, 1.0, 0.7, 1.0, 0.7];
/// Node id of the historically-fastest peer (SC4; broker=0, SC1=1, …).
const FASTEST_PEER_NODE: u32 = 4;
/// Hostname of the historically-fastest peer.
pub const FASTEST_PEER: &str = "planetlab1.csg.unizh.ch";
/// Granularities compared, as in the paper.
pub const GRANULARITIES: [u32; 2] = [4, 16];

/// The models compared (paper's three plus a random baseline), in report
/// order. The single source for [`model_names`] and the fig67 sweep grid.
pub const MODELS: [ModelKind; 4] = [
    ModelKind::Economic,
    ModelKind::SamePriority,
    ModelKind::QuickPeer,
    ModelKind::Random,
];

/// The node the background transfer congests (the historically-fastest
/// peer, SC4), for sweep cells that replicate this experiment's shape.
pub(crate) fn fastest_peer_node() -> netsim::node::NodeId {
    netsim::node::NodeId(FASTEST_PEER_NODE)
}

/// The models compared (paper's three plus a blind baseline).
pub fn model_names() -> Vec<String> {
    MODELS.iter().map(|m| m.name().to_string()).collect()
}

pub use peer_selection::service::UnknownModelError;

/// Seed salt mixed into this experiment's stochastic selectors, keeping
/// its historical random streams disjoint from the other drivers'.
const SEED_SALT: u64 = 0xF166;

/// Builds the selector factory implementing `kind`, or `None` for
/// [`ModelKind::Blind`] (blind mode installs no selector at all).
pub fn factory_for_kind(kind: ModelKind) -> Option<SelectorFactory> {
    peer_selection::service::factory_for(kind, SEED_SALT)
}

/// Resolves a model name to a selector factory, or reports the valid list.
/// `blind` is a valid axis spelling but names no selector, so it is
/// rejected here like any unknown name.
pub fn try_factory_for(model: &str) -> Result<SelectorFactory, UnknownModelError> {
    peer_selection::service::try_factory_for(model, SEED_SALT)
}

/// Typed result.
pub struct Fig6Result {
    /// Model names, report order.
    pub models: Vec<String>,
    /// Measured transfer seconds: `[granularity][model]` aggregate.
    pub seconds: Vec<SeriesAggregate>,
    /// Which peers each model chose, `[granularity][model]` → names seen.
    pub chosen: Vec<Vec<Vec<String>>>,
}

/// Runs the experiment as a fig67 sweep campaign with the spec's explicit
/// seed list: each (model, granularity) grid cell replays exactly the seeds
/// the classic harness used, so the statistics are unchanged — the sweep
/// driver only changes who schedules the work.
///
/// The `Result` stays for API stability: the built-in model list always
/// resolves, but psim funnels user-supplied names through the same
/// [`try_factory_for`] path and needs the error type.
pub fn run_experiment(spec: &ExperimentSpec) -> Result<Fig6Result, UnknownModelError> {
    let grid = fig67_grid(SeedScheme::Explicit(spec.seeds.clone()), spec.warmup);
    let campaign = run_campaign(&grid, default_workers()).expect("built-in fig67 grid is valid");
    // Cell order is model-major, parts fastest-varying: cell index =
    // model_index * GRANULARITIES.len() + granularity_index.
    let models = model_names();
    let mut seconds = Vec::new();
    let mut chosen = Vec::new();
    for (gi, _) in GRANULARITIES.iter().enumerate() {
        let mut stats = Vec::with_capacity(models.len());
        let mut chosen_g = Vec::with_capacity(models.len());
        for mi in 0..models.len() {
            let cell = &campaign.cells[mi * GRANULARITIES.len() + gi];
            let (_, stat) = cell
                .rows
                .first()
                .expect("selected-transfer cells have one row");
            stats.push(stat.clone());
            chosen_g.push(cell.chosen.clone());
        }
        seconds.push(SeriesAggregate { stats });
        chosen.push(chosen_g);
    }
    Ok(Fig6Result {
        models,
        seconds,
        chosen,
    })
}

/// Runs the experiment and builds the report.
pub fn run(spec: &ExperimentSpec) -> Result<FigureReport, UnknownModelError> {
    Ok(report(&run_experiment(spec)?))
}

/// Builds the Fig 6 report from a typed result.
pub fn report(result: &Fig6Result) -> FigureReport {
    let mut f = FigureReport::new(
        "Figure 6",
        "File transmission time by peer selection model",
        "seconds",
        result.models.clone(),
    );
    // Paper rows cover only the three models; pad the baseline with NaN.
    let mut paper4 = PAPER_FIG6_4PARTS_SECS.to_vec();
    let mut paper16 = PAPER_FIG6_16PARTS_SECS.to_vec();
    while paper4.len() < result.models.len() {
        paper4.push(f64::NAN);
        paper16.push(f64::NAN);
    }
    f.push(SeriesRow::new("paper, 4 parts", paper4));
    f.push(SeriesRow::new("paper, 16 parts", paper16));
    for (gi, parts) in GRANULARITIES.iter().enumerate() {
        f.push(SeriesRow::with_sd(
            format!("measured, {parts} parts"),
            result.seconds[gi].means(),
            result.seconds[gi].std_devs(),
        ));
    }
    for (parts, chosen_g) in GRANULARITIES.iter().zip(&result.chosen) {
        let picks: Vec<String> = result
            .models
            .iter()
            .zip(chosen_g)
            .map(|(m, names)| format!("{m}→{}", names.join("/")))
            .collect();
        f.note(format!("{parts}-part picks: {}", picks.join(", ")));
    }
    f.note(
        "absolute scale differs from the paper (units unrecoverable from the \
         publication); the reproduced shape is the model ordering",
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static Fig6Result {
        use std::sync::OnceLock;
        static R: OnceLock<Fig6Result> = OnceLock::new();
        R.get_or_init(|| run_experiment(&ExperimentSpec::quick()).expect("built-in models"))
    }

    #[test]
    fn unknown_model_is_an_error_not_a_panic() {
        let err = match try_factory_for("psychic") {
            Ok(_) => panic!("`psychic` must not resolve to a selector"),
            Err(e) => e,
        };
        assert_eq!(err.model, "psychic");
        let msg = err.to_string();
        assert!(msg.contains("psychic"));
        for m in err.valid_models() {
            assert!(msg.contains(&m), "error lists valid model {m}");
        }
        assert!(try_factory_for("economic").is_ok());
    }

    #[test]
    fn ordering_matches_paper_at_4_parts() {
        let r = result();
        let means = r.seconds[0].means(); // 4 parts
        let (econ, same, quick) = (means[0], means[1], means[2]);
        assert!(
            econ < same,
            "economic {econ} should beat same-priority {same}"
        );
        assert!(
            same < quick,
            "same-priority {same} should beat quick-peer {quick}"
        );
    }

    #[test]
    fn models_beat_random_baseline() {
        // Random can luck into the same peer as economic in a given seed,
        // so the baseline claim is "economic is never worse".
        let r = result();
        for (parts, agg) in GRANULARITIES.iter().zip(&r.seconds) {
            let means = agg.means();
            let random = means[3];
            assert!(
                means[0] <= random * 1.001,
                "economic must not lose to random at {parts} parts ({} vs {random})",
                means[0]
            );
            assert!(
                means[2] > random || means[1] > means[0],
                "selection effects should be visible"
            );
        }
    }

    #[test]
    fn models_pick_the_expected_peers() {
        let r = result();
        // Economic avoids the backlogged SC2 and the sluggish peers.
        for names in &r.chosen[0][0] {
            assert_ne!(
                names, FASTEST_PEER,
                "economic must avoid the backlogged peer"
            );
            assert_ne!(names, "planetlab1.itwm.fhg.de", "economic must avoid SC7");
        }
        // Quick-peer goes to its stale favourite SC2.
        for names in &r.chosen[0][2] {
            assert_eq!(names, FASTEST_PEER, "quick-peer picks its stale favourite");
        }
    }

    #[test]
    fn gap_narrows_at_finer_granularity() {
        let r = result();
        let m4 = r.seconds[0].means();
        let m16 = r.seconds[1].means();
        let gap4 = m4[2] / m4[0]; // quick / economic at 4 parts
        let gap16 = m16[2] / m16[0];
        assert!(
            gap16 < gap4 * 1.2,
            "relative gap should not widen: 4-part {gap4}, 16-part {gap16}"
        );
    }

    #[test]
    fn report_renders() {
        let s = report(result()).render();
        assert!(s.contains("Figure 6"));
        assert!(s.contains("economic"));
        assert!(s.contains("paper, 4 parts"));
        assert!(s.contains("picks:"));
    }
}
