//! Figure 7: just execution vs transmission + execution, per SC peer.
//!
//! The paper's virtual-campus workload: a processing task either runs on
//! data already present at the peer ("just execution") or first ships its
//! 50 Mb input file and then runs ("transmission & execution"). The figure
//! shows both bars per peer, in minutes, with SC7 dominating.

use overlay::broker::{BrokerCommand, TargetSpec};

use crate::experiments::sc_labels;
use crate::report::{FigureReport, SeriesRow};
use crate::runner::{run_replications, SeriesAggregate};
use crate::scenario::{run_scenario, ScenarioConfig, ScenarioResult};
use crate::spec::{ExperimentSpec, MB};

/// Compute demand of the processing task, giga-ops (≈5 min on a healthy,
/// lightly loaded 1-gops peer).
pub const WORK_GOPS: f64 = 300.0;
/// Input file shipped in the transmission+execution variant.
pub const INPUT_SIZE: u64 = 50 * MB;
/// Parts used to ship the input (1 MB parts, as in the Fig 3 study).
pub const INPUT_PARTS: u32 = 50;

/// Typed result.
pub struct Fig7Result {
    /// Just-execution minutes per SC.
    pub exec_only: SeriesAggregate,
    /// Transmission+execution minutes per SC.
    pub trans_exec: SeriesAggregate,
}

fn per_sc_task_minutes(result: &ScenarioResult, label: &str) -> Vec<f64> {
    result
        .testbed
        .scs
        .iter()
        .map(|&sc| {
            let vals: Vec<f64> = result
                .log
                .tasks
                .iter()
                .filter(|t| t.on == sc && t.success)
                .filter(|t| {
                    // Exec-only tasks have no input; shipped tasks do.
                    match label {
                        "exec" => t.input_bytes == 0,
                        _ => t.input_bytes > 0,
                    }
                })
                .filter_map(|t| t.total_secs().map(|s| s / 60.0))
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

fn scenario(with_input: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::measurement_setup();
    let (input_bytes, label) = if with_input {
        (INPUT_SIZE, "fig7-trans")
    } else {
        (0, "fig7-exec")
    };
    cfg = cfg.at(
        netsim::time::SimDuration::from_secs(60),
        BrokerCommand::SubmitTask {
            target: TargetSpec::AllClients,
            work_gops: WORK_GOPS,
            input_bytes,
            input_parts: INPUT_PARTS,
            label: label.into(),
        },
    );
    cfg
}

/// Runs the experiment: exec-only and transmission+execution scenarios.
pub fn run_experiment(spec: &ExperimentSpec) -> Fig7Result {
    let exec_rows = run_replications(&spec.seeds, |seed| {
        let result = run_scenario(&scenario(false), seed);
        per_sc_task_minutes(&result, "exec")
    });
    let trans_rows = run_replications(&spec.seeds, |seed| {
        let result = run_scenario(&scenario(true), seed);
        per_sc_task_minutes(&result, "trans")
    });
    Fig7Result {
        exec_only: SeriesAggregate::from_replications(&exec_rows),
        trans_exec: SeriesAggregate::from_replications(&trans_rows),
    }
}

/// Runs the experiment and builds the report.
pub fn run(spec: &ExperimentSpec) -> FigureReport {
    report(&run_experiment(spec))
}

/// Builds the Fig 7 report from a typed result.
pub fn report(result: &Fig7Result) -> FigureReport {
    let mut f = FigureReport::new(
        "Figure 7",
        "Just execution vs transmission & execution",
        "minutes",
        sc_labels(),
    );
    f.push(SeriesRow::with_sd(
        "just execution",
        result.exec_only.means(),
        result.exec_only.std_devs(),
    ));
    f.push(SeriesRow::with_sd(
        "transmission & execution",
        result.trans_exec.means(),
        result.trans_exec.std_devs(),
    ));
    let exec = result.exec_only.means();
    let trans = result.trans_exec.means();
    let overhead: Vec<f64> = exec.iter().zip(&trans).map(|(e, t)| t - e).collect();
    let mean_overhead = overhead.iter().sum::<f64>() / overhead.len() as f64;
    f.note(format!(
        "mean transmission overhead: {mean_overhead:.2} min; SC7 dominates both bars \
         (paper: chart only, shape criterion)"
    ));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::argmax;

    fn result() -> &'static Fig7Result {
        use std::sync::OnceLock;
        static R: OnceLock<Fig7Result> = OnceLock::new();
        R.get_or_init(|| run_experiment(&ExperimentSpec::quick()))
    }

    #[test]
    fn transmission_adds_overhead_everywhere() {
        let r = result();
        let exec = r.exec_only.means();
        let trans = r.trans_exec.means();
        for i in 0..8 {
            assert!(exec[i].is_finite(), "SC{} exec missing", i + 1);
            assert!(
                trans[i] > exec[i],
                "SC{}: trans+exec {} must exceed exec {}",
                i + 1,
                trans[i],
                exec[i]
            );
        }
    }

    #[test]
    fn sc7_dominates_both_series() {
        let r = result();
        assert_eq!(argmax(&r.exec_only.means()), Some(6));
        assert_eq!(argmax(&r.trans_exec.means()), Some(6));
    }

    #[test]
    fn minutes_scale_matches_paper_band() {
        // Paper's Fig 7 y-axis runs 0–30 minutes.
        let r = result();
        for &m in &r.trans_exec.means() {
            assert!((1.0..40.0).contains(&m), "implausible minutes {m}");
        }
        let exec = r.exec_only.means();
        assert!(exec[6] > 3.0 * exec[1], "SC7 execution far slower than SC2");
    }

    #[test]
    fn report_renders() {
        let s = report(result()).render();
        assert!(s.contains("Figure 7"));
        assert!(s.contains("just execution"));
        assert!(s.contains("transmission overhead"));
    }
}
