//! Figure 5: transmission time of a 100 Mb file sent whole vs divided into
//! 4 and 16 parts, per SC peer.
//!
//! The paper's finding: "the transmission time of the file as a whole it's
//! not worth!" — whole-file transfer collapses (JXTA pipes buffer entire
//! messages), while 16 × 6.25 Mb parts average ≈1.7 minutes.

use planetlab::calibration::PAPER_FIG5_16PARTS_AVG_MIN;

use crate::experiments::sc_labels;
use crate::report::{FigureReport, SeriesRow};
use crate::runner::{default_workers, SeriesAggregate};
use crate::spec::{ExperimentSpec, MB};
use crate::sweep::{fig345_grid, run_campaign, SeedScheme};

/// The file size of the experiment.
pub const FILE_SIZE: u64 = 100 * MB;
/// The granularities compared: whole, 4 parts, 16 parts.
pub const GRANULARITIES: [u32; 3] = [1, 4, 16];

/// Typed result: per-granularity, per-SC minutes.
pub struct Fig5Result {
    /// One aggregate per granularity, ordered like [`GRANULARITIES`].
    pub per_granularity: Vec<SeriesAggregate>,
}

impl Fig5Result {
    /// Mean across SCs for granularity index `g`.
    pub fn average_minutes(&self, g: usize) -> f64 {
        let means = self.per_granularity[g].means();
        means.iter().sum::<f64>() / means.len() as f64
    }
}

/// Runs the experiment as a fig345 sweep campaign with the spec's explicit
/// seed list: one grid cell per granularity, each replaying exactly the
/// seeds the classic harness used, so the statistics are unchanged.
pub fn run_experiment(spec: &ExperimentSpec) -> Fig5Result {
    let grid = fig345_grid(SeedScheme::Explicit(spec.seeds.clone()), spec.warmup);
    let campaign = run_campaign(&grid, default_workers()).expect("built-in fig345 grid is valid");
    let per_granularity = campaign
        .cells
        .into_iter()
        .map(|cell| SeriesAggregate {
            stats: cell.rows.into_iter().map(|(_, stat)| stat).collect(),
        })
        .collect();
    Fig5Result { per_granularity }
}

/// Runs the experiment and builds the report.
pub fn run(spec: &ExperimentSpec) -> FigureReport {
    report(&run_experiment(spec))
}

/// Builds the Fig 5 report from a typed result.
pub fn report(result: &Fig5Result) -> FigureReport {
    let mut f = FigureReport::new(
        "Figure 5",
        "File transmission time, 100 Mb whole vs 4 vs 16 parts",
        "minutes",
        sc_labels(),
    );
    let names = ["complete file", "4 parts", "16 parts"];
    for (i, name) in names.iter().enumerate() {
        f.push(SeriesRow::with_sd(
            *name,
            result.per_granularity[i].means(),
            result.per_granularity[i].std_devs(),
        ));
    }
    f.note(format!(
        "16-part average across peers: {:.2} min (paper: {:.1} min)",
        result.average_minutes(2),
        PAPER_FIG5_16PARTS_AVG_MIN
    ));
    let sixteen = result.per_granularity[2].means();
    let healthy: Vec<f64> = sixteen
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 6)
        .map(|(_, &v)| v)
        .collect();
    f.note(format!(
        "16-part average excluding the SC7 outlier: {:.2} min",
        healthy.iter().sum::<f64>() / healthy.len() as f64
    ));
    f.note(format!(
        "whole-file average: {:.1} min — 'not worth it', as the paper puts it",
        result.average_minutes(0)
    ));
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static Fig5Result {
        use std::sync::OnceLock;
        static R: OnceLock<Fig5Result> = OnceLock::new();
        R.get_or_init(|| run_experiment(&ExperimentSpec::quick()))
    }

    #[test]
    fn whole_file_is_much_slower_than_16_parts() {
        let r = result();
        let whole = r.average_minutes(0);
        let sixteen = r.average_minutes(2);
        assert!(
            whole > 5.0 * sixteen,
            "whole {whole} min vs 16-part {sixteen} min"
        );
    }

    #[test]
    fn granularity_ordering_holds_per_peer() {
        let r = result();
        let whole = r.per_granularity[0].means();
        let four = r.per_granularity[1].means();
        let sixteen = r.per_granularity[2].means();
        for i in 0..8 {
            assert!(
                whole[i] > four[i],
                "SC{}: whole {} !> 4-part {}",
                i + 1,
                whole[i],
                four[i]
            );
            assert!(
                four[i] > sixteen[i],
                "SC{}: 4-part {} !> 16-part {}",
                i + 1,
                four[i],
                sixteen[i]
            );
        }
    }

    #[test]
    fn sixteen_part_average_near_paper() {
        let r = result();
        let avg = r.average_minutes(2);
        // Paper: 1.7 min. Allow a generous band — SC7 drags the mean up.
        assert!((1.0..4.0).contains(&avg), "16-part avg {avg} min");
    }

    #[test]
    fn report_renders_with_notes() {
        let rep = report(result());
        let s = rep.render();
        assert!(s.contains("Figure 5"));
        assert!(s.contains("complete file"));
        assert!(s.contains("16-part average"));
    }
}
