//! Testable transport-model ablations.
//!
//! DESIGN.md commits to ablating the simulator's design choices; the bench
//! harness times them, and this module *asserts* them: each transport knob
//! is switched off in turn and the effect on the paper's headline numbers
//! is measured. The key claim — "sending the file whole is not worth it"
//! exists *because* JXTA pipes degrade on huge messages — is visible here:
//! without the large-message penalty, whole-file transfer matches chunked
//! transfer (minus per-part overhead).

use netsim::transport::TransportConfig;
use overlay::broker::{BrokerCommand, TargetSpec};

use crate::report::{FigureReport, SeriesRow};
use crate::scenario::{run_scenario, ScenarioConfig};
use crate::spec::{ExperimentSpec, MB};

/// The transport variants ablated.
pub fn variants() -> Vec<(&'static str, TransportConfig)> {
    vec![
        ("full model", TransportConfig::default()),
        (
            "no TCP bound",
            TransportConfig {
                enable_tcp_bound: false,
                ..TransportConfig::default()
            },
        ),
        (
            "no slow start",
            TransportConfig {
                enable_slow_start: false,
                ..TransportConfig::default()
            },
        ),
        (
            "no large-msg penalty",
            TransportConfig {
                enable_large_msg_penalty: false,
                ..TransportConfig::default()
            },
        ),
        ("ideal", TransportConfig::ideal()),
    ]
}

/// Per-variant headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Variant name.
    pub name: &'static str,
    /// Mean blind 20 MB / 20-part transfer across the eight SCs, seconds.
    pub chunked_secs: f64,
    /// Whole-file 100 MB transfer to SC4, minutes.
    pub whole_file_min: f64,
    /// 16-part 100 MB transfer to SC4, minutes.
    pub parts16_min: f64,
}

fn blind_mean_secs(transport: &TransportConfig, seed: u64) -> f64 {
    let cfg = ScenarioConfig::builder()
        .transport(transport.clone())
        .at(
            netsim::time::SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 20 * MB,
                num_parts: 20,
                label: "ablate".into(),
            },
        )
        .build()
        .expect("ablation scenario is valid");
    let r = run_scenario(&cfg, seed);
    let ts: Vec<f64> = r
        .log
        .transfers
        .iter()
        .filter_map(|t| t.total_secs())
        .collect();
    ts.iter().sum::<f64>() / ts.len().max(1) as f64
}

fn sc4_transfer_min(transport: &TransportConfig, parts: u32, seed: u64) -> f64 {
    let cfg = ScenarioConfig::builder()
        .transport(transport.clone())
        .at(
            netsim::time::SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Node(netsim::node::NodeId(4)),
                size_bytes: 100 * MB,
                num_parts: parts,
                label: "g".into(),
            },
        )
        .build()
        .expect("ablation scenario is valid");
    let r = run_scenario(&cfg, seed);
    r.log.transfers[0]
        .total_secs()
        .map(|s| s / 60.0)
        .unwrap_or(f64::NAN)
}

/// Measures every variant (single representative seed per point — the
/// ablation compares model structure, not noise).
pub fn run_experiment(seed: u64) -> Vec<AblationPoint> {
    variants()
        .into_iter()
        .map(|(name, transport)| AblationPoint {
            name,
            chunked_secs: blind_mean_secs(&transport, seed),
            whole_file_min: sc4_transfer_min(&transport, 1, seed),
            parts16_min: sc4_transfer_min(&transport, 16, seed),
        })
        .collect()
}

/// Runs and renders the ablation table.
pub fn run(_spec: &ExperimentSpec) -> FigureReport {
    let points = run_experiment(1);
    let mut f = FigureReport::new(
        "Ablation: transport model",
        "Headline metrics with each penalty removed",
        "mixed units (s / min / min)",
        vec![
            "blind 20MB (s)".into(),
            "whole 100MB (min)".into(),
            "16-part 100MB (min)".into(),
        ],
    );
    for p in &points {
        f.push(SeriesRow::new(
            p.name,
            vec![p.chunked_secs, p.whole_file_min, p.parts16_min],
        ));
    }
    f.note("the whole-file pathology (Fig 5) exists iff the large-message penalty is on");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> &'static Vec<AblationPoint> {
        use std::sync::OnceLock;
        static P: OnceLock<Vec<AblationPoint>> = OnceLock::new();
        P.get_or_init(|| run_experiment(1))
    }

    fn by_name(name: &str) -> &'static AblationPoint {
        points().iter().find(|p| p.name == name).expect("variant")
    }

    #[test]
    fn every_penalty_slows_things_down() {
        let full = by_name("full model");
        let ideal = by_name("ideal");
        assert!(full.chunked_secs > ideal.chunked_secs);
        assert!(full.whole_file_min > ideal.whole_file_min);
    }

    #[test]
    fn whole_file_pathology_requires_large_msg_penalty() {
        let full = by_name("full model");
        let no_penalty = by_name("no large-msg penalty");
        // With the penalty: whole ≫ 16 parts (the paper's Fig 5 finding).
        assert!(
            full.whole_file_min > 5.0 * full.parts16_min,
            "whole {} vs 16-part {}",
            full.whole_file_min,
            full.parts16_min
        );
        // Without it: whole-file transfer is fine (even slightly better —
        // no per-part round trips).
        assert!(
            no_penalty.whole_file_min < 1.5 * no_penalty.parts16_min,
            "whole {} vs 16-part {}",
            no_penalty.whole_file_min,
            no_penalty.parts16_min
        );
    }

    #[test]
    fn slow_start_costs_per_part() {
        let full = by_name("full model");
        let no_ss = by_name("no slow start");
        // Chunked transfers pay slow start per part; removing it helps.
        assert!(no_ss.chunked_secs < full.chunked_secs);
    }

    #[test]
    fn report_renders() {
        let spec = ExperimentSpec::quick();
        let s = run(&spec).render();
        assert!(s.contains("Ablation"));
        assert!(s.contains("full model"));
        assert!(s.contains("ideal"));
    }
}
