//! Adaptation study: how selection models respond when the world changes.
//!
//! The paper's models are static policies; its future work asks about
//! real large-scale deployments, where peer conditions *shift*. This
//! experiment runs a long campaign of selected transfers and injects a
//! sustained backlog on the favourite peer (SC4) partway through:
//!
//! * rounds 0–7   — steady state ("pre");
//! * rounds 8–15  — SC4 is congested by repeated background transfers
//!   ("congested");
//! * rounds 16–23 — the background has drained ("recovered").
//!
//! Economic selection re-plans instantly from live queue state; the bandits
//! must *relearn* from outcome feedback; quick-peer never adapts at all.

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, TargetSpec};

use crate::report::{FigureReport, SeriesRow};
use crate::runner::{run_replications, SeriesAggregate};
use crate::scenario::{run_scenario, ScenarioConfig, SelectorFactory};
use crate::spec::{ExperimentSpec, MB};

/// Measured transfer rounds.
pub const ROUNDS: u64 = 24;
/// Seconds between rounds.
pub const ROUND_SPACING: u64 = 60;
/// Size of each measured transfer.
pub const MEASURED_SIZE: u64 = 5 * MB;
/// The congested phase: rounds `[8, 16)`.
pub const SHIFT_START: u64 = 8;
/// End of the congested phase.
pub const SHIFT_END: u64 = 16;

/// Models compared.
pub fn model_names() -> Vec<&'static str> {
    vec!["economic", "ucb1", "eps-greedy", "quick-peer"]
}

/// Seed salt keeping this study's random streams disjoint from the other
/// drivers'.
const SEED_SALT: u64 = 0xADA7;

fn factory(model: &'static str) -> SelectorFactory {
    peer_selection::service::try_factory_for(model, SEED_SALT)
        .expect("adaptation study uses known model names")
}

/// Per-model mean transfer seconds in each phase window.
pub struct AdaptationResult {
    /// Model names, report order.
    pub models: Vec<&'static str>,
    /// `[model]` → aggregate over (pre, congested, recovered).
    pub windows: Vec<SeriesAggregate>,
}

fn one_run(model: &'static str, seed: u64) -> Vec<f64> {
    let t0 = SimDuration::from_secs(60);
    let campaign_start = 600u64;
    let mut cfg = ScenarioConfig::measurement_setup()
        .with_selector(factory(model))
        .at(
            t0,
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "warmup".into(),
            },
        );
    for r in 0..ROUNDS {
        cfg = cfg.at(
            SimDuration::from_secs(campaign_start + ROUND_SPACING * r),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: MEASURED_SIZE,
                num_parts: 5,
                label: format!("round-{r:02}"),
            },
        );
    }
    // Sustained congestion on SC4 through the shift window: a 120 MB
    // background (~85 s at SC4's rate) starts 5 s before every second
    // measured round, so the backlog is always visible at selection time.
    for k in 0..4u64 {
        cfg = cfg.at(
            SimDuration::from_secs(campaign_start + ROUND_SPACING * (SHIFT_START + 2 * k) - 5),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Node(netsim::node::NodeId(4)),
                size_bytes: 120 * MB,
                num_parts: 20,
                label: format!("background-{k}"),
            },
        );
    }
    let result = run_scenario(&cfg, seed);
    let mut windows = vec![Vec::new(), Vec::new(), Vec::new()];
    for r in 0..ROUNDS {
        let label = format!("round-{r:02}");
        if let Some(secs) = result
            .log
            .transfers
            .iter()
            .find(|t| t.label == label)
            .and_then(|t| t.total_secs())
        {
            let w = if r < SHIFT_START {
                0
            } else if r < SHIFT_END {
                1
            } else {
                2
            };
            windows[w].push(secs);
        }
    }
    windows
        .into_iter()
        .map(|w| w.iter().sum::<f64>() / w.len().max(1) as f64)
        .collect()
}

/// Runs the study.
pub fn run_experiment(spec: &ExperimentSpec) -> AdaptationResult {
    let models = model_names();
    let windows = models
        .iter()
        .map(|model| {
            let rows = run_replications(&spec.seeds, |seed| one_run(model, seed));
            SeriesAggregate::from_replications(&rows)
        })
        .collect();
    AdaptationResult { models, windows }
}

/// Runs and renders.
pub fn run(spec: &ExperimentSpec) -> FigureReport {
    let result = run_experiment(spec);
    let mut f = FigureReport::new(
        "Extension: adaptation",
        "Mean selected 5 MB transfer per phase (favourite peer congested mid-campaign)",
        "seconds",
        vec!["pre".into(), "congested".into(), "recovered".into()],
    );
    for (m, agg) in result.models.iter().zip(&result.windows) {
        f.push(SeriesRow::with_sd(*m, agg.means(), agg.std_devs()));
    }
    f.note("economic re-plans from live queues; bandits relearn from outcomes; quick-peer never adapts");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static AdaptationResult {
        use std::sync::OnceLock;
        static R: OnceLock<AdaptationResult> = OnceLock::new();
        R.get_or_init(|| {
            run_experiment(&ExperimentSpec {
                seeds: vec![1, 2],
                ..ExperimentSpec::quick()
            })
        })
    }

    fn window(model: &str, w: usize) -> f64 {
        let r = result();
        let i = r.models.iter().position(|m| *m == model).unwrap();
        r.windows[i].means()[w]
    }

    #[test]
    fn all_models_have_complete_curves() {
        let r = result();
        for (m, agg) in r.models.iter().zip(&r.windows) {
            for v in agg.means() {
                assert!(v.is_finite() && v > 0.0, "{m} has a hole in its curve");
            }
        }
    }

    #[test]
    fn congestion_hurts_the_static_model_most() {
        // Quick-peer keeps sending to the congested favourite; economic
        // routes around it.
        let econ = window("economic", 1);
        let quick = window("quick-peer", 1);
        assert!(
            quick > 1.5 * econ,
            "congested phase: quick-peer {quick} vs economic {econ}"
        );
    }

    #[test]
    fn economic_is_stable_across_phases() {
        let pre = window("economic", 0);
        let congested = window("economic", 1);
        assert!(
            congested < pre * 2.0,
            "economic should degrade little: pre {pre}, congested {congested}"
        );
    }

    #[test]
    fn quick_peer_snaps_back_after_drain() {
        let congested = window("quick-peer", 1);
        let recovered = window("quick-peer", 2);
        assert!(
            recovered < congested,
            "recovery should help the static model: {congested} → {recovered}"
        );
    }

    #[test]
    fn report_renders() {
        let spec = ExperimentSpec {
            seeds: vec![1],
            ..ExperimentSpec::quick()
        };
        let s = run(&spec).render();
        assert!(s.contains("adaptation"));
        assert!(s.contains("congested"));
    }
}
