//! Engine throughput measurement: the data source for the
//! `engine_throughput` criterion bench and the `psim bench-engine`
//! subcommand (which renders `BENCH_engine.json`).
//!
//! Two workloads are driven through the real engine:
//!
//! * a ping-pong actor pair — the pure event-loop hot path (send → plan →
//!   deliver) with nothing else on it, and
//! * the paper's 8-client broker scenario — the full overlay protocol stack.
//!
//! A third measurement isolates the metrics layer: the same bookkeeping the
//! engine does per event (two counter bumps and one observation), once
//! through the legacy string-keyed path (per-event key allocation plus a
//! `BTreeMap` walk, as before interning) and once through the interned
//! [`MetricId`](netsim::metrics::MetricId) path the hot loop uses now.

use std::time::Instant;

use netsim::engine::{Actor, Context, Engine, Payload};
use netsim::link::{AccessLink, PathSpec};
use netsim::metrics::Metrics;
use netsim::node::{NodeId, NodeSpec};
use netsim::time::SimDuration;
use netsim::topology::Topology;
use netsim::transport::TransportConfig;
use overlay::broker::{BrokerCommand, TargetSpec};

use crate::scenario::{run_scenario, ScenarioConfig};
use crate::spec::MB;

/// One timed engine run.
#[derive(Debug, Clone)]
pub struct EngineBenchResult {
    /// Events processed by the engine.
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Largest number of simultaneously pending events.
    pub peak_queue_len: usize,
}

impl EngineBenchResult {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Nanoseconds of wall time per event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.wall_secs * 1e9 / self.events as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug)]
struct Packet;

impl Payload for Packet {
    fn wire_size(&self) -> u64 {
        64
    }
    fn kind(&self) -> &'static str {
        "pkt"
    }
}

/// How much extra per-event metrics work a ping-pong actor performs, to
/// compare the engine's current interned bookkeeping against the
/// string-keyed bookkeeping it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsProbe {
    /// No extra work: the engine's own (interned) bookkeeping only.
    None,
    /// Replays the pre-interning per-event cost on top: for each message,
    /// two counter increments and one observation through string keys,
    /// each paying the key allocation the old `Metrics::incr` did.
    LegacyStrings,
}

struct Bouncer {
    peer: NodeId,
    remaining: u64,
    probe: MetricsProbe,
}

impl Actor<Packet> for Bouncer {
    fn on_start(&mut self, ctx: &mut Context<Packet>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, Packet);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Packet>, from: NodeId, _msg: Packet) {
        if self.probe == MetricsProbe::LegacyStrings {
            let sent = String::from("legacy.messages_sent");
            let bytes = String::from("legacy.bytes_sent");
            let secs = String::from("legacy.delivery_secs");
            let m = ctx.metrics();
            m.incr(&sent, 1);
            m.incr(&bytes, 64);
            m.observe(&secs, 0.005);
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, Packet);
        }
    }
}

fn run_pingpong(messages: u64, seed: u64, probe: MetricsProbe) -> EngineBenchResult {
    let mut topo = Topology::new();
    let a = topo.add_node(NodeSpec::responsive("a"), AccessLink::default());
    let b = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
    topo.set_path_symmetric(a, b, PathSpec::from_owd_ms(5.0, 0.0));
    let mut engine = Engine::new(topo, TransportConfig::ideal(), seed);
    engine.set_event_limit(messages.saturating_mul(4).max(1_000));
    engine.register(
        a,
        Box::new(Bouncer {
            peer: b,
            remaining: messages / 2 + messages % 2,
            probe,
        }),
    );
    engine.register(
        b,
        Box::new(Bouncer {
            peer: a,
            remaining: messages / 2,
            probe,
        }),
    );
    let start = Instant::now();
    engine.run();
    let wall_secs = start.elapsed().as_secs_f64();
    EngineBenchResult {
        events: engine.events_processed(),
        wall_secs,
        peak_queue_len: engine.peak_queue_len(),
    }
}

/// Drives `messages` messages through a two-node ping-pong pair and times
/// the run. Every message is one deliver event, so `messages = 1_000_000`
/// puts at least a million events through the engine.
pub fn pingpong(messages: u64, seed: u64) -> EngineBenchResult {
    run_pingpong(messages, seed, MetricsProbe::None)
}

/// The same ping-pong run, with the pre-interning string-keyed metrics cost
/// replayed per message — the "before" side of the optimization, measured
/// in the same binary.
pub fn pingpong_string_metrics(messages: u64, seed: u64) -> EngineBenchResult {
    run_pingpong(messages, seed, MetricsProbe::LegacyStrings)
}

/// Runs the paper's 8-client measurement setup through a multi-round file
/// distribution plus a task campaign, and times the engine.
pub fn broker_scenario(rounds: u32, seed: u64) -> EngineBenchResult {
    let mut cfg = ScenarioConfig::measurement_setup();
    for round in 0..rounds {
        cfg = cfg.at(
            SimDuration::from_secs(60 + round as u64 * 600),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 12 * MB,
                num_parts: 12,
                label: format!("bench-{round}"),
            },
        );
    }
    cfg = cfg.at(
        SimDuration::from_secs(60 + rounds as u64 * 600),
        BrokerCommand::SubmitTask {
            target: TargetSpec::AllClients,
            work_gops: 120.0,
            input_bytes: 2 * MB,
            input_parts: 4,
            label: "bench-task".into(),
        },
    );
    let start = Instant::now();
    let result = run_scenario(&cfg, seed);
    let wall_secs = start.elapsed().as_secs_f64();
    EngineBenchResult {
        events: result.events_processed,
        wall_secs,
        peak_queue_len: result.peak_queue_len,
    }
}

/// Per-operation cost of the metrics layer, string-keyed vs interned.
#[derive(Debug, Clone, Copy)]
pub struct MetricsOverhead {
    /// ns per (incr, incr, observe) triple through the string API with a
    /// per-event key allocation (the pre-interning engine pattern).
    pub string_ns_per_event: f64,
    /// ns per identical triple through pre-resolved ids.
    pub interned_ns_per_event: f64,
}

impl MetricsOverhead {
    /// How many times faster the interned path is.
    pub fn speedup(&self) -> f64 {
        if self.interned_ns_per_event > 0.0 {
            self.string_ns_per_event / self.interned_ns_per_event
        } else {
            0.0
        }
    }
}

/// Measures `events` repetitions of the engine's per-send bookkeeping
/// (two counter increments and one observation) through both metric paths.
/// The registry is pre-populated with a realistic name set so the string
/// path pays representative map depth.
pub fn metrics_overhead(events: u64) -> MetricsOverhead {
    let populate = |m: &mut Metrics| {
        for name in [
            "engine.timers_pending_hwm",
            "net.bytes_sent",
            "net.messages_delivered",
            "net.messages_dropped_no_actor",
            "net.messages_lost",
            "net.messages_sent",
            "overlay.content_published",
            "overlay.file_requests_served",
            "overlay.file_requests_unserved",
            "overlay.gossip_received",
            "overlay.jobs_unplaced",
            "overlay.joins",
            "overlay.retransmissions",
            "overlay.retries_exhausted",
            "overlay.tasks_completed",
            "overlay.tasks_failed",
            "overlay.tasks_submitted",
            "overlay.tasks_timed_out",
            "overlay.transfers_cancelled",
            "overlay.transfers_completed",
            "overlay.transfers_started",
        ] {
            m.counter_id(name);
        }
        m.stat_id("net.delivery_secs");
    };

    let mut m = Metrics::new();
    populate(&mut m);
    let start = Instant::now();
    for i in 0..events {
        // The allocation mirrors the `name.to_string()` the old
        // `Metrics::incr` performed on every call.
        let sent = String::from("net.messages_sent");
        let bytes = String::from("net.bytes_sent");
        let secs = String::from("net.delivery_secs");
        m.incr(&sent, 1);
        m.incr(&bytes, 64);
        m.observe(&secs, i as f64 * 1e-6);
    }
    let string_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;
    assert_eq!(m.counter("net.messages_sent"), events);

    let mut m = Metrics::new();
    populate(&mut m);
    let sent = m.counter_id("net.messages_sent");
    let bytes = m.counter_id("net.bytes_sent");
    let secs = m.stat_id("net.delivery_secs");
    let start = Instant::now();
    for i in 0..events {
        m.incr_id(sent, 1);
        m.incr_id(bytes, 64);
        m.observe_id(secs, i as f64 * 1e-6);
    }
    let interned_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;
    assert_eq!(m.counter("net.messages_sent"), events);

    MetricsOverhead {
        string_ns_per_event,
        interned_ns_per_event,
    }
}

/// Per-operation cost of the broker's per-message name and body handling:
/// fresh `String` allocations (the pre-`Arc` pattern — every record write
/// paid a `node_name().to_string()` and every instant-message fan-out a
/// full body `clone()`) versus refcount clones of interned `Arc<str>`
/// values, the pattern the broker registry and `OverlayMsg::Instant` use
/// now.
#[derive(Debug, Clone, Copy)]
pub struct NameCloneOverhead {
    /// ns per (hostname, body) pair materialised as fresh `String`s.
    pub string_ns_per_event: f64,
    /// ns per identical pair cloned from interned `Arc<str>`s.
    pub arc_ns_per_event: f64,
}

impl NameCloneOverhead {
    /// How many times faster the `Arc<str>` path is.
    pub fn speedup(&self) -> f64 {
        if self.arc_ns_per_event > 0.0 {
            self.string_ns_per_event / self.arc_ns_per_event
        } else {
            0.0
        }
    }
}

/// Measures `events` repetitions of the broker's per-message string work
/// through both patterns: a representative hostname + instant-message body,
/// first allocated fresh each event (the old hot path), then refcount-cloned
/// from values interned once (the current hot path).
pub fn name_clone_overhead(events: u64) -> NameCloneOverhead {
    use std::hint::black_box;
    use std::sync::Arc;

    let host = "planetlab1.csg.unizh.ch";
    let body = "instant message body: campus render status ping";

    let start = Instant::now();
    for _ in 0..events {
        let name = black_box(host).to_string();
        let text = black_box(body).to_string();
        black_box((&name, &text));
    }
    let string_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;

    let name: Arc<str> = Arc::from(host);
    let text: Arc<str> = Arc::from(body);
    let start = Instant::now();
    for _ in 0..events {
        let n = Arc::clone(black_box(&name));
        let t = Arc::clone(black_box(&text));
        black_box((&n, &t));
    }
    let arc_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;

    NameCloneOverhead {
        string_ns_per_event,
        arc_ns_per_event,
    }
}

/// Renders the `BENCH_engine.json` document tracking the engine's
/// performance trajectory across PRs.
pub fn render_json(
    pingpong_interned: &EngineBenchResult,
    pingpong_strings: &EngineBenchResult,
    broker: &EngineBenchResult,
    overhead: &MetricsOverhead,
    names: &NameCloneOverhead,
) -> String {
    let section = |r: &EngineBenchResult| {
        format!(
            "{{\"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"ns_per_event\": {:.1}, \"peak_queue_len\": {}}}",
            r.events,
            r.wall_secs,
            r.events_per_sec(),
            r.ns_per_event(),
            r.peak_queue_len
        )
    };
    let speedup = if pingpong_interned.ns_per_event() > 0.0 {
        pingpong_strings.ns_per_event() / pingpong_interned.ns_per_event()
    } else {
        0.0
    };
    format!(
        "{{\n  \"pingpong\": {},\n  \"pingpong_string_metrics_baseline\": {},\n  \"engine_speedup_vs_string_baseline\": {:.2},\n  \"broker_8_clients\": {},\n  \"metrics_layer\": {{\"string_ns_per_event\": {:.1}, \"interned_ns_per_event\": {:.1}, \"speedup\": {:.2}}},\n  \"name_interning\": {{\"string_ns_per_event\": {:.1}, \"arc_ns_per_event\": {:.1}, \"speedup\": {:.2}}}\n}}\n",
        section(pingpong_interned),
        section(pingpong_strings),
        speedup,
        section(broker),
        overhead.string_ns_per_event,
        overhead.interned_ns_per_event,
        overhead.speedup(),
        names.string_ns_per_event,
        names.arc_ns_per_event,
        names.speedup()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_counts_every_message() {
        let r = pingpong(10_000, 1);
        assert_eq!(r.events, 10_000, "one deliver event per message");
        assert!(r.peak_queue_len >= 1);
        assert!(r.wall_secs > 0.0);
    }

    #[test]
    fn string_probe_runs_same_schedule() {
        let a = pingpong(2_000, 3);
        let b = pingpong_string_metrics(2_000, 3);
        assert_eq!(
            a.events, b.events,
            "probe must not change the event history"
        );
    }

    #[test]
    fn interned_path_is_faster() {
        let o = metrics_overhead(200_000);
        assert!(
            o.speedup() > 1.0,
            "interned ids should beat string keys ({:.1} vs {:.1} ns)",
            o.string_ns_per_event,
            o.interned_ns_per_event
        );
    }

    #[test]
    fn name_clone_overhead_measures_both_sides() {
        // The String-vs-Arc margin is allocator- and machine-dependent (a
        // warm thread-local allocator clones short strings in ~15 ns, the
        // same order as an uncontended refcount pair), so asserting an
        // ordering here is flaky. Pin the harness instead: both sides
        // produce finite, positive per-event costs and a finite ratio.
        let o = name_clone_overhead(200_000);
        assert!(
            o.string_ns_per_event > 0.0 && o.string_ns_per_event.is_finite(),
            "string side measured {} ns",
            o.string_ns_per_event
        );
        assert!(
            o.arc_ns_per_event > 0.0 && o.arc_ns_per_event.is_finite(),
            "arc side measured {} ns",
            o.arc_ns_per_event
        );
        assert!(o.speedup().is_finite() && o.speedup() > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = pingpong(1_000, 1);
        let o = metrics_overhead(10_000);
        let n = name_clone_overhead(10_000);
        let json = render_json(&r, &r, &r, &o, &n);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("events_per_sec").count(), 3);
        assert!(json.contains("metrics_layer"));
        assert!(json.contains("name_interning"));
    }
}
