//! Engine throughput measurement: the data source for the
//! `engine_throughput` criterion bench and the `psim bench-engine`
//! subcommand (which renders `BENCH_engine.json`).
//!
//! Two workloads are driven through the real engine:
//!
//! * a ping-pong actor pair — the pure event-loop hot path (send → plan →
//!   deliver) with nothing else on it, and
//! * the paper's 8-client broker scenario — the full overlay protocol stack.
//!
//! A third measurement isolates the metrics layer: the same bookkeeping the
//! engine does per event (two counter bumps and one observation), once
//! through the legacy string-keyed path (per-event key allocation plus a
//! `BTreeMap` walk, as before interning) and once through the interned
//! [`MetricId`](netsim::metrics::MetricId) path the hot loop uses now.

use std::time::Instant;

use netsim::engine::{Actor, Context, Engine, Payload};
use netsim::link::{AccessLink, PathSpec};
use netsim::metrics::Metrics;
use netsim::node::{NodeId, NodeSpec};
use netsim::time::SimDuration;
use netsim::topology::Topology;
use netsim::transport::TransportConfig;
use overlay::broker::{BrokerCommand, TargetSpec};

use crate::scenario::{run_scenario, ScenarioConfig};
use crate::spec::MB;

/// One timed engine run.
#[derive(Debug, Clone)]
pub struct EngineBenchResult {
    /// Events processed by the engine.
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Largest number of simultaneously pending events.
    pub peak_queue_len: usize,
}

impl EngineBenchResult {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Nanoseconds of wall time per event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.wall_secs * 1e9 / self.events as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug)]
struct Packet;

impl Payload for Packet {
    fn wire_size(&self) -> u64 {
        64
    }
    fn kind(&self) -> &'static str {
        "pkt"
    }
}

/// How much extra per-event metrics work a ping-pong actor performs, to
/// compare the engine's current interned bookkeeping against the
/// string-keyed bookkeeping it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsProbe {
    /// No extra work: the engine's own (interned) bookkeeping only.
    None,
    /// Replays the pre-interning per-event cost on top: for each message,
    /// two counter increments and one observation through string keys,
    /// each paying the key allocation the old `Metrics::incr` did.
    LegacyStrings,
}

struct Bouncer {
    peer: NodeId,
    remaining: u64,
    probe: MetricsProbe,
}

impl Actor<Packet> for Bouncer {
    fn on_start(&mut self, ctx: &mut Context<Packet>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, Packet);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Packet>, from: NodeId, _msg: Packet) {
        if self.probe == MetricsProbe::LegacyStrings {
            let sent = String::from("legacy.messages_sent");
            let bytes = String::from("legacy.bytes_sent");
            let secs = String::from("legacy.delivery_secs");
            let m = ctx.metrics();
            m.incr(&sent, 1);
            m.incr(&bytes, 64);
            m.observe(&secs, 0.005);
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, Packet);
        }
    }
}

fn run_pingpong(messages: u64, seed: u64, probe: MetricsProbe) -> EngineBenchResult {
    let mut topo = Topology::new();
    let a = topo.add_node(NodeSpec::responsive("a"), AccessLink::default());
    let b = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
    topo.set_path_symmetric(a, b, PathSpec::from_owd_ms(5.0, 0.0));
    let mut engine = Engine::new(topo, TransportConfig::ideal(), seed);
    engine.set_event_limit(messages.saturating_mul(4).max(1_000));
    engine.register(
        a,
        Box::new(Bouncer {
            peer: b,
            remaining: messages / 2 + messages % 2,
            probe,
        }),
    );
    engine.register(
        b,
        Box::new(Bouncer {
            peer: a,
            remaining: messages / 2,
            probe,
        }),
    );
    let start = Instant::now();
    engine.run();
    let wall_secs = start.elapsed().as_secs_f64();
    EngineBenchResult {
        events: engine.events_processed(),
        wall_secs,
        peak_queue_len: engine.peak_queue_len(),
    }
}

/// Drives `messages` messages through a two-node ping-pong pair and times
/// the run. Every message is one deliver event, so `messages = 1_000_000`
/// puts at least a million events through the engine.
pub fn pingpong(messages: u64, seed: u64) -> EngineBenchResult {
    run_pingpong(messages, seed, MetricsProbe::None)
}

/// The same ping-pong run, with the pre-interning string-keyed metrics cost
/// replayed per message — the "before" side of the optimization, measured
/// in the same binary.
pub fn pingpong_string_metrics(messages: u64, seed: u64) -> EngineBenchResult {
    run_pingpong(messages, seed, MetricsProbe::LegacyStrings)
}

/// Runs the paper's 8-client measurement setup through a multi-round file
/// distribution plus a task campaign, and times the engine.
pub fn broker_scenario(rounds: u32, seed: u64) -> EngineBenchResult {
    let mut cfg = ScenarioConfig::measurement_setup();
    for round in 0..rounds {
        cfg = cfg.at(
            SimDuration::from_secs(60 + round as u64 * 600),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 12 * MB,
                num_parts: 12,
                label: format!("bench-{round}"),
            },
        );
    }
    cfg = cfg.at(
        SimDuration::from_secs(60 + rounds as u64 * 600),
        BrokerCommand::SubmitTask {
            target: TargetSpec::AllClients,
            work_gops: 120.0,
            input_bytes: 2 * MB,
            input_parts: 4,
            label: "bench-task".into(),
        },
    );
    let start = Instant::now();
    let result = run_scenario(&cfg, seed);
    let wall_secs = start.elapsed().as_secs_f64();
    EngineBenchResult {
        events: result.events_processed,
        wall_secs,
        peak_queue_len: result.peak_queue_len,
    }
}

/// Per-operation cost of the metrics layer, string-keyed vs interned.
#[derive(Debug, Clone, Copy)]
pub struct MetricsOverhead {
    /// ns per (incr, incr, observe) triple through the string API with a
    /// per-event key allocation (the pre-interning engine pattern).
    pub string_ns_per_event: f64,
    /// ns per identical triple through pre-resolved ids.
    pub interned_ns_per_event: f64,
}

impl MetricsOverhead {
    /// How many times faster the interned path is.
    pub fn speedup(&self) -> f64 {
        if self.interned_ns_per_event > 0.0 {
            self.string_ns_per_event / self.interned_ns_per_event
        } else {
            0.0
        }
    }
}

/// Measures `events` repetitions of the engine's per-send bookkeeping
/// (two counter increments and one observation) through both metric paths.
/// The registry is pre-populated with a realistic name set so the string
/// path pays representative map depth.
pub fn metrics_overhead(events: u64) -> MetricsOverhead {
    let populate = |m: &mut Metrics| {
        for name in [
            "engine.timers_pending_hwm",
            "net.bytes_sent",
            "net.messages_delivered",
            "net.messages_dropped_no_actor",
            "net.messages_lost",
            "net.messages_sent",
            "overlay.content_published",
            "overlay.file_requests_served",
            "overlay.file_requests_unserved",
            "overlay.gossip_received",
            "overlay.jobs_unplaced",
            "overlay.joins",
            "overlay.retransmissions",
            "overlay.retries_exhausted",
            "overlay.tasks_completed",
            "overlay.tasks_failed",
            "overlay.tasks_submitted",
            "overlay.tasks_timed_out",
            "overlay.transfers_cancelled",
            "overlay.transfers_completed",
            "overlay.transfers_started",
        ] {
            m.counter_id(name);
        }
        m.stat_id("net.delivery_secs");
    };

    let mut m = Metrics::new();
    populate(&mut m);
    let start = Instant::now();
    for i in 0..events {
        // The allocation mirrors the `name.to_string()` the old
        // `Metrics::incr` performed on every call.
        let sent = String::from("net.messages_sent");
        let bytes = String::from("net.bytes_sent");
        let secs = String::from("net.delivery_secs");
        m.incr(&sent, 1);
        m.incr(&bytes, 64);
        m.observe(&secs, i as f64 * 1e-6);
    }
    let string_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;
    assert_eq!(m.counter("net.messages_sent"), events);

    let mut m = Metrics::new();
    populate(&mut m);
    let sent = m.counter_id("net.messages_sent");
    let bytes = m.counter_id("net.bytes_sent");
    let secs = m.stat_id("net.delivery_secs");
    let start = Instant::now();
    for i in 0..events {
        m.incr_id(sent, 1);
        m.incr_id(bytes, 64);
        m.observe_id(secs, i as f64 * 1e-6);
    }
    let interned_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;
    assert_eq!(m.counter("net.messages_sent"), events);

    MetricsOverhead {
        string_ns_per_event,
        interned_ns_per_event,
    }
}

/// Per-operation cost of the broker's per-message name handling: fresh
/// `String` allocations (the pre-`Arc` pattern — every record write paid a
/// `node_name().to_string()` *retained for the life of the record*) versus
/// refcount clones of `Arc<str>` values interned once at admission, the
/// pattern the registry, `CandidateView` rosters and selection records use
/// now.
///
/// An earlier version of this bench cloned and immediately dropped one pair
/// per iteration, which let a warm thread-local allocator recycle the same
/// slab and reported the two sides as equal (0.98×). Record writes don't do
/// that: the clone outlives the event, buffered in the run log. The bench
/// therefore retains each clone in a batch (as `RunLog` does) and drops the
/// batch wholesale, so the `String` side pays the allocate-and-keep cost the
/// broker actually paid.
#[derive(Debug, Clone, Copy)]
pub struct NameCloneOverhead {
    /// ns per retained record name materialised as a fresh `String`.
    pub string_ns_per_event: f64,
    /// ns per identical retained name cloned from an interned `Arc<str>`.
    pub arc_ns_per_event: f64,
}

impl NameCloneOverhead {
    /// How many times faster the `Arc<str>` path is.
    pub fn speedup(&self) -> f64 {
        if self.arc_ns_per_event > 0.0 {
            self.string_ns_per_event / self.arc_ns_per_event
        } else {
            0.0
        }
    }
}

/// Measures `events` record-name writes through both patterns, batched the
/// way the run log retains them: each event clones one of a realistic
/// PlanetLab hostname set into a live batch of 1024 records, and batches are
/// dropped wholesale (as a drained `RunLog` is). The `String` side allocates
/// and keeps a buffer per event; the `Arc<str>` side bumps a refcount on a
/// value interned once.
pub fn name_clone_overhead(events: u64) -> NameCloneOverhead {
    use std::hint::black_box;
    use std::sync::Arc;

    const BATCH: usize = 1024;
    let hosts: [&str; 8] = [
        "planetlab1.ssvl.kth.se",
        "planetlab2.csg.unizh.ch",
        "planetlab1.diku.copenhagen.dk",
        "planetlab3.upc.rediris.es",
        "planetlab1.itwm.fhg.de",
        "planetlab2.polito.torino.it",
        "planetlab1.info.ucl.ac.be",
        "planetlab2.cs.vu.amsterdam.nl",
    ];

    let mut batch: Vec<String> = Vec::with_capacity(BATCH);
    let start = Instant::now();
    for i in 0..events {
        // The allocation mirrors the `node_name().to_string()` every record
        // write performed before interning — retained, not dropped.
        batch.push(black_box(hosts[(i % 8) as usize]).to_string());
        if batch.len() == BATCH {
            black_box(&batch);
            batch.clear();
        }
    }
    black_box(&batch);
    drop(batch);
    let string_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;

    let interned: Vec<Arc<str>> = hosts.iter().map(|&h| Arc::from(h)).collect();
    let mut batch: Vec<Arc<str>> = Vec::with_capacity(BATCH);
    let start = Instant::now();
    for i in 0..events {
        batch.push(Arc::clone(black_box(&interned[(i % 8) as usize])));
        if batch.len() == BATCH {
            black_box(&batch);
            batch.clear();
        }
    }
    black_box(&batch);
    drop(batch);
    let arc_ns_per_event = start.elapsed().as_secs_f64() * 1e9 / events.max(1) as f64;

    NameCloneOverhead {
        string_ns_per_event,
        arc_ns_per_event,
    }
}

/// One worker-count point of the parallel-engine bench.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBenchPoint {
    /// Worker threads the sharded engine ran with.
    pub workers: usize,
    /// Events processed (identical at every worker count, by construction).
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Lookahead windows executed.
    pub rounds: u64,
    /// Sum of per-window execution spans across all shards, seconds.
    pub busy_secs: f64,
    /// Sum over rounds of the slowest worker's busy span, seconds. The
    /// wall-clock floor a perfectly synchronised run could reach.
    pub critical_path_secs: f64,
}

impl ParallelBenchPoint {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// How many-fold the per-window work overlapped across workers:
    /// `busy / critical_path`, bounded above by the worker count by
    /// construction. 1.0 for a single worker; the modeled wall-clock
    /// speedup on a host with enough free cores.
    pub fn occupancy(&self) -> f64 {
        if self.critical_path_secs > 0.0 {
            self.busy_secs / self.critical_path_secs
        } else {
            0.0
        }
    }
}

/// Runs the multi-region workload once per entry of `workers_list` (same
/// config and seed — the histories are byte-identical, only the thread
/// count differs) and times each run. Tracing stays disabled so the bench
/// measures the engine, not the trace ring.
pub fn parallel_engine(
    cfg: &crate::multiregion::MultiRegionConfig,
    workers_list: &[usize],
    seed: u64,
) -> Vec<ParallelBenchPoint> {
    workers_list
        .iter()
        .map(|&workers| {
            let cfg = crate::multiregion::MultiRegionConfig {
                shard_workers: workers,
                trace_capacity: None,
                ..cfg.clone()
            };
            let start = Instant::now();
            let result = crate::multiregion::run_multiregion(&cfg, seed)
                .unwrap_or_else(|e| panic!("bench multi-region run failed: {e}"));
            let wall_secs = start.elapsed().as_secs_f64();
            ParallelBenchPoint {
                workers,
                events: result.events_processed,
                wall_secs,
                rounds: result.profile.rounds,
                busy_secs: result.profile.busy.as_secs_f64(),
                critical_path_secs: result.profile.critical_path.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the `BENCH_parallel_engine.json` document: measured wall-clock
/// throughput per worker count plus the critical-path model.
///
/// Two speedup columns on purpose. `speedup_vs_1` is measured wall clock —
/// on a host with fewer cores than workers it saturates near 1.0× and the
/// `saturated` flag says so. `modeled_parallel_occupancy` is the same run's
/// `busy / critical_path` ratio: how many-fold the per-window work
/// overlapped across workers, bounded by the worker count by construction
/// (each round contributes its worker-busy sum to `busy` and its slowest
/// worker to `critical_path`). It models the wall-clock speedup a host with
/// ≥ `workers` free cores would see, excluding synchronisation overhead,
/// and stays meaningful on a saturated host.
pub fn render_parallel_json(
    cfg: &crate::multiregion::MultiRegionConfig,
    points: &[ParallelBenchPoint],
) -> String {
    let host = crate::runner::detect_host_parallelism();
    let saturated = points.iter().any(|p| p.workers > host);
    let base_eps = points.first().map(|p| p.events_per_sec()).unwrap_or(0.0);
    let point_json = |p: &ParallelBenchPoint| {
        let speedup = if base_eps > 0.0 {
            p.events_per_sec() / base_eps
        } else {
            0.0
        };
        let modeled = p.occupancy();
        format!(
            "{{\"workers\":{},\"events\":{},\"wall_secs\":{:.4},\"events_per_sec\":{:.1},\
             \"speedup_vs_1\":{:.3},\"modeled_parallel_occupancy\":{:.3},\
             \"rounds\":{},\"busy_secs\":{:.4},\"critical_path_secs\":{:.4}}}",
            p.workers,
            p.events,
            p.wall_secs,
            p.events_per_sec(),
            speedup,
            modeled,
            p.rounds,
            p.busy_secs,
            p.critical_path_secs,
        )
    };
    let points_json = points.iter().map(point_json).collect::<Vec<_>>().join(",");
    format!(
        "{{\"bench\":\"parallel_engine\",\"schema\":1,\"host_parallelism\":{host},\
         \"saturated\":{saturated},\
         \"scenario\":{{\"regions\":{},\"clients_per_region\":{},\"rounds\":{},\
         \"intra_owd_ms\":{},\"inter_owd_ms\":{},\"file_mb\":{},\"horizon_secs\":{}}},\
         \"note\":\"speedup_vs_1 is measured wall clock (ceiling = host_parallelism); \
         modeled_parallel_occupancy is busy/critical_path per run, an upper \
         bound on parallel capacity that excludes synchronisation overhead\",\
         \"points\":[{points_json}]}}\n",
        cfg.regions,
        cfg.clients_per_region,
        cfg.rounds,
        cfg.intra_owd_ms,
        cfg.inter_owd_ms,
        cfg.file_bytes / crate::spec::MB,
        cfg.horizon.as_secs_f64(),
    )
}

/// Renders the `BENCH_engine.json` document tracking the engine's
/// performance trajectory across PRs.
pub fn render_json(
    pingpong_interned: &EngineBenchResult,
    pingpong_strings: &EngineBenchResult,
    broker: &EngineBenchResult,
    overhead: &MetricsOverhead,
    names: &NameCloneOverhead,
) -> String {
    let section = |r: &EngineBenchResult| {
        format!(
            "{{\"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"ns_per_event\": {:.1}, \"peak_queue_len\": {}}}",
            r.events,
            r.wall_secs,
            r.events_per_sec(),
            r.ns_per_event(),
            r.peak_queue_len
        )
    };
    let speedup = if pingpong_interned.ns_per_event() > 0.0 {
        pingpong_strings.ns_per_event() / pingpong_interned.ns_per_event()
    } else {
        0.0
    };
    format!(
        "{{\n  \"pingpong\": {},\n  \"pingpong_string_metrics_baseline\": {},\n  \"engine_speedup_vs_string_baseline\": {:.2},\n  \"broker_8_clients\": {},\n  \"metrics_layer\": {{\"string_ns_per_event\": {:.1}, \"interned_ns_per_event\": {:.1}, \"speedup\": {:.2}}},\n  \"name_interning\": {{\"string_ns_per_event\": {:.1}, \"arc_ns_per_event\": {:.1}, \"speedup\": {:.2}}}\n}}\n",
        section(pingpong_interned),
        section(pingpong_strings),
        speedup,
        section(broker),
        overhead.string_ns_per_event,
        overhead.interned_ns_per_event,
        overhead.speedup(),
        names.string_ns_per_event,
        names.arc_ns_per_event,
        names.speedup()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_counts_every_message() {
        let r = pingpong(10_000, 1);
        assert_eq!(r.events, 10_000, "one deliver event per message");
        assert!(r.peak_queue_len >= 1);
        assert!(r.wall_secs > 0.0);
    }

    #[test]
    fn string_probe_runs_same_schedule() {
        let a = pingpong(2_000, 3);
        let b = pingpong_string_metrics(2_000, 3);
        assert_eq!(
            a.events, b.events,
            "probe must not change the event history"
        );
    }

    #[test]
    fn interned_path_is_faster() {
        let o = metrics_overhead(200_000);
        assert!(
            o.speedup() > 1.0,
            "interned ids should beat string keys ({:.1} vs {:.1} ns)",
            o.string_ns_per_event,
            o.interned_ns_per_event
        );
    }

    #[test]
    fn name_clone_overhead_measures_both_sides() {
        let o = name_clone_overhead(400_000);
        assert!(
            o.string_ns_per_event > 0.0 && o.string_ns_per_event.is_finite(),
            "string side measured {} ns",
            o.string_ns_per_event
        );
        assert!(
            o.arc_ns_per_event > 0.0 && o.arc_ns_per_event.is_finite(),
            "arc side measured {} ns",
            o.arc_ns_per_event
        );
        // With retention modelled (the clone outlives the event in a record
        // batch, as in the run log), the refcount bump beats the
        // allocate-and-keep path on any allocator.
        assert!(
            o.speedup() > 1.0,
            "interned names should beat retained String clones ({:.1} vs {:.1} ns)",
            o.string_ns_per_event,
            o.arc_ns_per_event
        );
    }

    #[test]
    fn parallel_bench_is_worker_invariant_and_json_has_schema_fields() {
        let cfg = crate::multiregion::MultiRegionConfig {
            regions: 2,
            clients_per_region: 2,
            rounds: 1,
            horizon: netsim::time::SimDuration::from_secs(300),
            ..Default::default()
        };
        let points = parallel_engine(&cfg, &[1, 2], 3);
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].events, points[1].events,
            "worker count must not change the event history"
        );
        assert!(points.iter().all(|p| p.rounds > 0 && p.wall_secs > 0.0));
        let json = render_parallel_json(&cfg, &points);
        for field in [
            "\"bench\":\"parallel_engine\"",
            "\"schema\":1",
            "\"host_parallelism\"",
            "\"saturated\"",
            "\"events_per_sec\"",
            "\"speedup_vs_1\"",
            "\"modeled_parallel_occupancy\"",
            "\"critical_path_secs\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = pingpong(1_000, 1);
        let o = metrics_overhead(10_000);
        let n = name_clone_overhead(10_000);
        let json = render_json(&r, &r, &r, &o, &n);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("events_per_sec").count(), 3);
        assert!(json.contains("metrics_layer"));
        assert!(json.contains("name_interning"));
    }
}
