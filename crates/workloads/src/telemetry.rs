//! Standard time-series column sets for the workload runners.
//!
//! The recorders built here define the *one* schema each workload's
//! deterministic series artifact uses, so `psim profile`, the property
//! tests, and the CI `profile-determinism` job all diff byte-identical
//! CSV for a fixed `(config, seed, num_shards)` — at any worker count.
//!
//! Column conventions:
//! * population counts are **cumulative** (the current state of the
//!   fleet), rates are **deltas** (events inside the window);
//! * `registry_bytes` / `registry_peers` sum the per-broker
//!   `registry.bytes.<node>` / `registry.peers.<node>` gauges the
//!   brokers publish on their gossip cadence, and `bytes_per_peer` is
//!   their ratio (0 while no gauge has been published yet);
//! * `script_bytes` is the one-shot lifecycle-script footprint every
//!   peer reports at start, so it converges to the fleet total.

use netsim::time::SimDuration;
use netsim::timeseries::{SeriesMode, SeriesSource, TimeSeriesError, TimeSeriesRecorder};

/// Columns for churn workloads: population movement, refusals, transfer
/// progress, and registry memory accounting.
pub fn churn_series(interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
    let mut rec = TimeSeriesRecorder::new(interval)?;
    rec.register(
        "peers_connected",
        SeriesSource::Diff(
            Box::new(SeriesSource::Sum(vec![
                SeriesSource::Counter("churn.joins".into()),
                SeriesSource::Counter("churn.rejoins".into()),
            ])),
            Box::new(SeriesSource::Counter("churn.leaves".into())),
        ),
        SeriesMode::Cumulative,
    );
    rec.register(
        "joins",
        SeriesSource::Counter("churn.joins".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "rejoins",
        SeriesSource::Counter("churn.rejoins".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "leaves",
        SeriesSource::Counter("churn.leaves".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "refused_petitions",
        SeriesSource::Counter("churn.refused_petitions".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "refused_tasks",
        SeriesSource::Counter("churn.refused_tasks".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "transfers_completed",
        SeriesSource::Counter("overlay.transfers_completed".into()),
        SeriesMode::Cumulative,
    );
    register_registry_columns(&mut rec);
    rec.register(
        "script_bytes",
        SeriesSource::Counter("churn.script_bytes".into()),
        SeriesMode::Cumulative,
    );
    Ok(rec)
}

/// Columns for multi-region overlay workloads: traffic and transfer
/// rates plus the same registry memory accounting as [`churn_series`].
pub fn overlay_series(interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
    let mut rec = TimeSeriesRecorder::new(interval)?;
    rec.register(
        "messages_sent",
        SeriesSource::Counter("net.messages_sent".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "bytes_sent",
        SeriesSource::Counter("net.bytes_sent".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "joins",
        SeriesSource::Counter("overlay.joins".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "transfers_completed",
        SeriesSource::Counter("overlay.transfers_completed".into()),
        SeriesMode::Cumulative,
    );
    register_registry_columns(&mut rec);
    Ok(rec)
}

/// Columns for federation workloads: population, forwarding traffic
/// between brokers, failover re-homes, and the registry accounting.
pub fn federation_series(interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
    let mut rec = TimeSeriesRecorder::new(interval)?;
    rec.register(
        "peers_connected",
        SeriesSource::Diff(
            Box::new(SeriesSource::Sum(vec![
                SeriesSource::Counter("churn.joins".into()),
                SeriesSource::Counter("churn.rejoins".into()),
            ])),
            Box::new(SeriesSource::Counter("churn.leaves".into())),
        ),
        SeriesMode::Cumulative,
    );
    rec.register(
        "joins",
        SeriesSource::Counter("churn.joins".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "rehomes",
        SeriesSource::Counter("churn.rehomes".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "petitions_forwarded",
        SeriesSource::Counter("overlay.petitions_forwarded".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "forwards_served",
        SeriesSource::Counter("overlay.forwards_served".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "stale_views_dropped",
        SeriesSource::Counter("overlay.stale_views_dropped".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "transfers_completed",
        SeriesSource::Counter("overlay.transfers_completed".into()),
        SeriesMode::Cumulative,
    );
    register_registry_columns(&mut rec);
    Ok(rec)
}

/// Columns for streaming workloads: piece flow, playback starts, and
/// rebuffering movement, plus the registry accounting.
pub fn streaming_series(interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
    let mut rec = TimeSeriesRecorder::new(interval)?;
    rec.register(
        "streams_started",
        SeriesSource::Counter("streaming.streams_started".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "pieces_received",
        SeriesSource::Counter("streaming.pieces_received".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "playbacks_started",
        SeriesSource::Counter("streaming.playbacks_started".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "rebuffers",
        SeriesSource::Counter("streaming.rebuffers".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "rebuffer_ms",
        SeriesSource::Counter("streaming.rebuffer_ms".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "completions",
        SeriesSource::Counter("streaming.completions".into()),
        SeriesMode::Cumulative,
    );
    register_registry_columns(&mut rec);
    Ok(rec)
}

/// The shared registry-memory columns: fleet-wide byte and peer-count
/// sums over the per-broker gauges, and their ratio.
fn register_registry_columns(rec: &mut TimeSeriesRecorder) {
    let bytes = SeriesSource::GaugePrefix("registry.bytes.".into());
    let peers = SeriesSource::GaugePrefix("registry.peers.".into());
    rec.register("registry_bytes", bytes.clone(), SeriesMode::Cumulative);
    rec.register("registry_peers", peers.clone(), SeriesMode::Cumulative);
    rec.register(
        "bytes_per_peer",
        SeriesSource::Ratio(Box::new(bytes), Box::new(peers)),
        SeriesMode::Cumulative,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::metrics::Metrics;

    #[test]
    fn churn_columns_are_stable() {
        let rec = churn_series(SimDuration::from_secs(60)).expect("positive interval");
        let names: Vec<&str> = rec.names().collect();
        assert_eq!(
            names,
            [
                "peers_connected",
                "joins",
                "rejoins",
                "leaves",
                "refused_petitions",
                "refused_tasks",
                "transfers_completed",
                "registry_bytes",
                "registry_peers",
                "bytes_per_peer",
                "script_bytes",
            ]
        );
    }

    #[test]
    fn overlay_columns_are_stable() {
        let rec = overlay_series(SimDuration::from_secs(60)).expect("positive interval");
        let names: Vec<&str> = rec.names().collect();
        assert_eq!(
            names,
            [
                "messages_sent",
                "bytes_sent",
                "joins",
                "transfers_completed",
                "registry_bytes",
                "registry_peers",
                "bytes_per_peer",
            ]
        );
    }

    #[test]
    fn federation_columns_are_stable() {
        let rec = federation_series(SimDuration::from_secs(60)).expect("positive interval");
        let names: Vec<&str> = rec.names().collect();
        assert_eq!(
            names,
            [
                "peers_connected",
                "joins",
                "rehomes",
                "petitions_forwarded",
                "forwards_served",
                "stale_views_dropped",
                "transfers_completed",
                "registry_bytes",
                "registry_peers",
                "bytes_per_peer",
            ]
        );
    }

    #[test]
    fn streaming_columns_are_stable() {
        let rec = streaming_series(SimDuration::from_secs(60)).expect("positive interval");
        let names: Vec<&str> = rec.names().collect();
        assert_eq!(
            names,
            [
                "streams_started",
                "pieces_received",
                "playbacks_started",
                "rebuffers",
                "rebuffer_ms",
                "completions",
                "registry_bytes",
                "registry_peers",
                "bytes_per_peer",
            ]
        );
    }

    #[test]
    fn bytes_per_peer_is_zero_before_any_gauge_publishes() {
        let mut rec = churn_series(SimDuration::from_secs(10)).expect("positive interval");
        let m = Metrics::default();
        rec.sample_up_to(netsim::time::SimTime::ZERO + SimDuration::from_secs(10), &m);
        let row = &rec.rows()[rec.rows().len() - 1];
        let idx = rec
            .names()
            .position(|n| n == "bytes_per_peer")
            .expect("column exists");
        assert_eq!(row.values[idx], 0.0);
    }
}
