//! Sweep-pool scaling measurement (`psim bench-sweep` → `BENCH_sweep.json`).
//!
//! Split out of [`crate::sweep`]: the campaign machinery defines *what* a
//! grid computes; this module measures how the work-stealing pool that
//! runs it scales with the worker count, in the two modes DESIGN.md §11
//! describes (calibrated wait-bound cells vs real CPU-bound simulation
//! cells).

use crate::runner::run_indexed;
use crate::sweep::{run_campaign, SweepError, SweepSpec};

/// One point of a scaling measurement.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker-pool width.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Completed cell-replications per wall-clock second.
    pub cells_per_sec: f64,
}

/// Measures pool throughput on *wait-bound* calibrated cells: every task
/// sleeps `cell_wait` (a stand-in for a real campaign cell that waits on a
/// remote testbed — on PlanetLab each cell is wall-clock-bound, not
/// CPU-bound). Wait-bound cells isolate the pool's overlap behaviour from
/// the host's core count: even a single-core host overlaps sleeping
/// workers, so this is the honest upper bound the pool itself delivers.
pub fn measure_pool_scaling(
    tasks: usize,
    cell_wait: std::time::Duration,
    workers_list: &[usize],
) -> Vec<ScalingPoint> {
    workers_list
        .iter()
        .map(|&workers| {
            let start = std::time::Instant::now();
            run_indexed(tasks, workers, |_| std::thread::sleep(cell_wait));
            let wall_secs = start.elapsed().as_secs_f64();
            ScalingPoint {
                workers,
                wall_secs,
                cells_per_sec: tasks as f64 / wall_secs,
            }
        })
        .collect()
}

/// Measures the same pool on real CPU-bound simulation cells by running
/// `spec` once per worker count. On an N-core host the speedup ceiling is
/// N; the numbers are still worth recording to catch pool overhead
/// regressions.
pub fn measure_campaign_scaling(
    spec: &SweepSpec,
    workers_list: &[usize],
) -> Result<Vec<ScalingPoint>, SweepError> {
    let tasks = spec.expand()?.len() * spec.replications();
    workers_list
        .iter()
        .map(|&workers| {
            let start = std::time::Instant::now();
            run_campaign(spec, workers)?;
            let wall_secs = start.elapsed().as_secs_f64();
            Ok(ScalingPoint {
                workers,
                wall_secs,
                cells_per_sec: tasks as f64 / wall_secs,
            })
        })
        .collect()
}

/// Renders the `BENCH_sweep.json` artifact: the wait-bound pool scaling
/// (headline `speedup_4_vs_1`) plus the CPU-bound campaign numbers, with
/// the host parallelism recorded so readers can judge the latter.
pub fn render_scaling_json(
    pool: &[ScalingPoint],
    pool_tasks: usize,
    pool_cell_ms: u64,
    campaign: &[ScalingPoint],
    campaign_grid: &str,
    campaign_tasks: usize,
) -> String {
    let point_json = |p: &ScalingPoint, baseline: f64| {
        format!(
            "{{\"workers\":{},\"wall_secs\":{:.4},\"cells_per_sec\":{:.3},\"speedup_vs_1\":{:.3}}}",
            p.workers,
            p.wall_secs,
            p.cells_per_sec,
            p.cells_per_sec / baseline
        )
    };
    let points_json = |points: &[ScalingPoint]| {
        let baseline = points.first().map(|p| p.cells_per_sec).unwrap_or(1.0);
        points
            .iter()
            .map(|p| point_json(p, baseline))
            .collect::<Vec<_>>()
            .join(",")
    };
    let headline = |points: &[ScalingPoint], workers: usize| {
        let baseline = points.first().map(|p| p.cells_per_sec).unwrap_or(1.0);
        points
            .iter()
            .find(|p| p.workers == workers)
            .map(|p| p.cells_per_sec / baseline)
            .unwrap_or(f64::NAN)
    };
    let host = crate::runner::detect_host_parallelism();
    // CPU-bound cells cannot scale past the host's cores: when the bench ran
    // with more workers than cores, flag the document so flat 0.95–1.0×
    // campaign points read as saturation, not regression.
    let saturated = pool.iter().chain(campaign.iter()).any(|p| p.workers > host);
    let w1 = pool.first().map(|p| p.cells_per_sec).unwrap_or(f64::NAN);
    let w4 = pool
        .iter()
        .find(|p| p.workers == 4)
        .map(|p| p.cells_per_sec)
        .unwrap_or(f64::NAN);
    format!(
        "{{\"bench\":\"sweep_scaling\",\"schema\":1,\"host_parallelism\":{host},\
         \"saturated\":{saturated},\
         \"pool_wait_bound\":{{\"note\":\"calibrated wait-bound cells (PlanetLab-style \
         wall-clock cells); isolates pool overlap from host core count\",\
         \"tasks\":{pool_tasks},\"cell_ms\":{pool_cell_ms},\"points\":[{pool_points}]}},\
         \"campaign_sim\":{{\"note\":\"real CPU-bound simulation cells; speedup ceiling \
         is host_parallelism\",\"grid\":\"{campaign_grid}\",\"tasks\":{campaign_tasks},\
         \"points\":[{campaign_points}]}},\
         \"cells_per_sec_workers1\":{w1:.3},\"cells_per_sec_workers4\":{w4:.3},\
         \"speedup_4_vs_1\":{headline4:.3}}}",
        pool_points = points_json(pool),
        campaign_points = points_json(campaign),
        headline4 = headline(pool, 4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_scaling_overlaps_wait_bound_cells() {
        let points = measure_pool_scaling(8, std::time::Duration::from_millis(5), &[1, 4]);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].cells_per_sec > points[0].cells_per_sec * 1.5,
            "4 workers should overlap sleeps: {} vs {}",
            points[1].cells_per_sec,
            points[0].cells_per_sec
        );
        let json = render_scaling_json(&points, 8, 5, &[], "none", 0);
        assert!(json.contains("\"bench\":\"sweep_scaling\""));
        assert!(json.contains("speedup_4_vs_1"));
    }
}
