//! Report rendering: aligned text tables comparing measured series against
//! the paper's published values.

use std::fmt::Write as _;

/// One named series of values aligned with a report's labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Series name ("measured", "paper", "economic", …).
    pub name: String,
    /// One value per label.
    pub values: Vec<f64>,
    /// Optional per-label standard deviations (printed as ±).
    pub std_devs: Option<Vec<f64>>,
}

impl SeriesRow {
    /// A plain series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        SeriesRow {
            name: name.into(),
            values,
            std_devs: None,
        }
    }

    /// A series with dispersion.
    pub fn with_sd(name: impl Into<String>, values: Vec<f64>, sds: Vec<f64>) -> Self {
        SeriesRow {
            name: name.into(),
            values,
            std_devs: Some(sds),
        }
    }
}

/// A rendered experiment artifact (one per paper table/figure).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Artifact id, e.g. `"Figure 2"`.
    pub id: String,
    /// Descriptive title.
    pub title: String,
    /// Unit of every value.
    pub unit: String,
    /// Column labels (SC1…SC8, model names, …).
    pub labels: Vec<String>,
    /// The series (rows).
    pub rows: Vec<SeriesRow>,
    /// Free-form notes appended to the rendering.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        unit: impl Into<String>,
        labels: Vec<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            labels,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a series row (must match the label count).
    pub fn push(&mut self, row: SeriesRow) {
        assert_eq!(row.values.len(), self.labels.len(), "row/label mismatch");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Looks a row up by name.
    pub fn row(&self, name: &str) -> Option<&SeriesRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ({}) ==", self.id, self.title, self.unit);
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match &r.std_devs {
                        Some(sds) => format!("{:.2}±{:.2}", v, sds[i]),
                        None => format_value(*v),
                    })
                    .collect()
            })
            .collect();
        let col_w: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                cells
                    .iter()
                    .map(|row| row[i].len())
                    .chain(std::iter::once(l.len()))
                    .max()
                    .unwrap_or(l.len())
            })
            .collect();
        let _ = write!(out, "{:name_w$}", "");
        for (l, w) in self.labels.iter().zip(&col_w) {
            let _ = write!(out, "  {l:>w$}");
        }
        let _ = writeln!(out);
        for (r, row_cells) in self.rows.iter().zip(&cells) {
            let _ = write!(out, "{:name_w$}", r.name);
            for (c, w) in row_cells.iter().zip(&col_w) {
                let _ = write!(out, "  {c:>w$}");
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Renders comma-separated values (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{}", self.labels.join(","));
        for r in &self.rows {
            let vals: Vec<String> = r.values.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{},{}", r.name, vals.join(","));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Index of the maximum value (None when empty or all-NaN).
pub fn argmax(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
}

/// Index of the minimum value (None when empty or all-NaN).
pub fn argmin(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
}

/// Spearman rank correlation between two equal-length series —
/// the "does the measured ordering match the paper's?" statistic.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut ranks = vec![0.0; xs.len()];
        // Ties receive the average of their rank positions.
        let mut pos = 0;
        while pos < idx.len() {
            let mut end = pos + 1;
            while end < idx.len() && xs[idx[end]] == xs[idx[pos]] {
                end += 1;
            }
            let avg = (pos + end - 1) as f64 / 2.0;
            for &i in &idx[pos..end] {
                ranks[i] = avg;
            }
            pos = end;
        }
        ranks
    };
    let (ra, rb) = (rank(a), rank(b));
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let (x, y) = (ra[i] - mean, rb[i] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut f = FigureReport::new(
            "Figure 2",
            "Petition time",
            "seconds",
            vec!["SC1".into(), "SC2".into()],
        );
        f.push(SeriesRow::new("paper", vec![12.86, 0.04]));
        f.push(SeriesRow::with_sd(
            "measured",
            vec![12.5, 0.05],
            vec![1.0, 0.01],
        ));
        f.note("means over 5 repetitions");
        f
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Figure 2"));
        assert!(s.contains("SC1"));
        assert!(s.contains("12.86"));
        assert!(s.contains("12.50±1.00"));
        assert!(s.contains("note: means over 5 repetitions"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,SC1,SC2"));
        assert!(lines[1].starts_with("paper,"));
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn push_validates_length() {
        let mut f = sample();
        f.push(SeriesRow::new("bad", vec![1.0]));
    }

    #[test]
    fn row_lookup() {
        let f = sample();
        assert!(f.row("paper").is_some());
        assert!(f.row("nope").is_none());
    }

    #[test]
    fn argmax_argmin() {
        let v = [3.0, 1.0, 5.0, 2.0];
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmin(&v), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_constant() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.123), "0.123");
        assert_eq!(format_value(5.5), "5.50");
        assert_eq!(format_value(123.456), "123.5");
    }
}
