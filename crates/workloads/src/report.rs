//! Report rendering: aligned text tables comparing measured series against
//! the paper's published values, plus trace post-processing (per-transfer
//! timelines reconstructed from typed events) and a deterministic metrics
//! snapshot for `psim report`.

use std::fmt::Write as _;

use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::time::SimTime;
use netsim::trace::{Trace, TraceEventKind};

/// One named series of values aligned with a report's labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Series name ("measured", "paper", "economic", …).
    pub name: String,
    /// One value per label.
    pub values: Vec<f64>,
    /// Optional per-label standard deviations (printed as ±).
    pub std_devs: Option<Vec<f64>>,
}

impl SeriesRow {
    /// A plain series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        SeriesRow {
            name: name.into(),
            values,
            std_devs: None,
        }
    }

    /// A series with dispersion.
    pub fn with_sd(name: impl Into<String>, values: Vec<f64>, sds: Vec<f64>) -> Self {
        SeriesRow {
            name: name.into(),
            values,
            std_devs: Some(sds),
        }
    }
}

/// A rendered experiment artifact (one per paper table/figure).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Artifact id, e.g. `"Figure 2"`.
    pub id: String,
    /// Descriptive title.
    pub title: String,
    /// Unit of every value.
    pub unit: String,
    /// Column labels (SC1…SC8, model names, …).
    pub labels: Vec<String>,
    /// The series (rows).
    pub rows: Vec<SeriesRow>,
    /// Free-form notes appended to the rendering.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        unit: impl Into<String>,
        labels: Vec<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            labels,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a series row (must match the label count).
    pub fn push(&mut self, row: SeriesRow) {
        assert_eq!(row.values.len(), self.labels.len(), "row/label mismatch");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Looks a row up by name.
    pub fn row(&self, name: &str) -> Option<&SeriesRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ({}) ==", self.id, self.title, self.unit);
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match &r.std_devs {
                        Some(sds) => format!("{:.2}±{:.2}", v, sds[i]),
                        None => format_value(*v),
                    })
                    .collect()
            })
            .collect();
        let col_w: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                cells
                    .iter()
                    .map(|row| row[i].len())
                    .chain(std::iter::once(l.len()))
                    .max()
                    .unwrap_or(l.len())
            })
            .collect();
        let _ = write!(out, "{:name_w$}", "");
        for (l, w) in self.labels.iter().zip(&col_w) {
            let _ = write!(out, "  {l:>w$}");
        }
        let _ = writeln!(out);
        for (r, row_cells) in self.rows.iter().zip(&cells) {
            let _ = write!(out, "{:name_w$}", r.name);
            for (c, w) in row_cells.iter().zip(&col_w) {
                let _ = write!(out, "  {c:>w$}");
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Renders comma-separated values (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{}", self.labels.join(","));
        for r in &self.rows {
            let vals: Vec<String> = r.values.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{},{}", r.name, vals.join(","));
        }
        out
    }
}

/// One part's milestones, reconstructed from `part_sent`/`part_confirmed`
/// trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct PartTimeline {
    /// Part index within the transfer.
    pub index: u32,
    /// Part size in bytes.
    pub bytes: u64,
    /// When the sender first transmitted this part.
    pub sent_at: SimTime,
    /// When the first *accepted* confirm arrived (first-confirm-wins: later
    /// duplicates never move this).
    pub confirmed_at: Option<SimTime>,
}

/// One transfer's life, reconstructed from the typed trace
/// (`petition_sent` → parts → `transfer_completed`).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferTimeline {
    /// Raw transfer id (matches the `xfer` JSONL field).
    pub transfer: u128,
    /// The sending node.
    pub sender: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Announced part count.
    pub num_parts: u32,
    /// When the petition was sent.
    pub began_at: SimTime,
    /// First petition-ack verdict seen, if any.
    pub acked: Option<bool>,
    /// When the transfer closed (complete or cancelled).
    pub ended_at: Option<SimTime>,
    /// Whether it completed successfully (`None` while open).
    pub ok: Option<bool>,
    /// Per-part milestones, in first-send order.
    pub parts: Vec<PartTimeline>,
    /// Retransmissions attributed to this transfer.
    pub retransmissions: u32,
}

impl TransferTimeline {
    /// End-to-end duration in seconds, if the transfer closed.
    pub fn duration_secs(&self) -> Option<f64> {
        self.ended_at
            .map(|t| t.duration_since(self.began_at).as_secs_f64())
    }

    /// Final part's send → first accepted confirm, in seconds (the trace
    /// view of the paper's Fig 4 metric).
    pub fn last_part_secs(&self) -> Option<f64> {
        let last = self.parts.iter().max_by_key(|p| p.index)?;
        last.confirmed_at
            .map(|t| t.duration_since(last.sent_at).as_secs_f64())
    }
}

/// Reconstructs per-transfer timelines from a typed trace, in the order
/// transfers first appear. Duplicate `part_sent` rows (retransmissions)
/// keep the first send instant; only accepted confirms stamp
/// `confirmed_at`, and only the first of those wins.
pub fn transfer_timelines(trace: &Trace) -> Vec<TransferTimeline> {
    let mut order: Vec<u128> = Vec::new();
    let mut by_id: std::collections::HashMap<u128, TransferTimeline> =
        std::collections::HashMap::new();
    for ev in trace.events() {
        match &ev.kind {
            TraceEventKind::PetitionSent {
                transfer,
                to,
                bytes,
                parts,
            } => {
                by_id.entry(*transfer).or_insert_with(|| {
                    order.push(*transfer);
                    TransferTimeline {
                        transfer: *transfer,
                        sender: ev.node,
                        to: *to,
                        bytes: *bytes,
                        num_parts: *parts,
                        began_at: ev.time,
                        acked: None,
                        ended_at: None,
                        ok: None,
                        parts: Vec::new(),
                        retransmissions: 0,
                    }
                });
            }
            TraceEventKind::PetitionAcked { transfer, accepted } => {
                if let Some(t) = by_id.get_mut(transfer) {
                    if t.acked.is_none() {
                        t.acked = Some(*accepted);
                    }
                }
            }
            TraceEventKind::PartSent {
                transfer,
                index,
                bytes,
            } => {
                if let Some(t) = by_id.get_mut(transfer) {
                    if !t.parts.iter().any(|p| p.index == *index) {
                        t.parts.push(PartTimeline {
                            index: *index,
                            bytes: *bytes,
                            sent_at: ev.time,
                            confirmed_at: None,
                        });
                    }
                }
            }
            TraceEventKind::PartConfirmed {
                transfer,
                index,
                accepted: true,
            } => {
                if let Some(t) = by_id.get_mut(transfer) {
                    if let Some(p) = t.parts.iter_mut().find(|p| p.index == *index) {
                        if p.confirmed_at.is_none() {
                            p.confirmed_at = Some(ev.time);
                        }
                    }
                }
            }
            TraceEventKind::Retransmission { transfer, .. } => {
                if let Some(t) = by_id.get_mut(transfer) {
                    t.retransmissions += 1;
                }
            }
            TraceEventKind::TransferCompleted { transfer, ok } => {
                if let Some(t) = by_id.get_mut(transfer) {
                    if t.ended_at.is_none() {
                        t.ended_at = Some(ev.time);
                        t.ok = Some(*ok);
                    }
                }
            }
            _ => {}
        }
    }
    order
        .into_iter()
        .filter_map(|id| by_id.remove(&id))
        .collect()
}

/// Renders transfer timelines as an aligned text table.
pub fn render_timelines(timelines: &[TransferTimeline]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4}  {:>6} -> {:>6}  {:>10}  {:>5}  {:>7}  {:>9}  {:>9}  {:>6}",
        "#", "from", "to", "bytes", "parts", "retx", "total_s", "last_p_s", "ok"
    );
    for (i, t) in timelines.iter().enumerate() {
        let fmt_opt = |v: Option<f64>| match v {
            Some(s) => format!("{s:.3}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>4}  {:>6} -> {:>6}  {:>10}  {:>5}  {:>7}  {:>9}  {:>9}  {:>6}",
            i,
            t.sender.0,
            t.to.0,
            t.bytes,
            t.parts.len(),
            t.retransmissions,
            fmt_opt(t.duration_secs()),
            fmt_opt(t.last_part_secs()),
            t.ok.map(|ok| ok.to_string()).unwrap_or_else(|| "-".into()),
        );
    }
    out
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Renders a deterministic JSON snapshot of the engine metrics: counters
/// and stats in sorted name order, fixed field order, non-finite values as
/// `null`. Two same-seed runs produce byte-identical snapshots.
pub fn metrics_snapshot_json(metrics: &Metrics) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in metrics.counters_sorted().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"stats\":{");
    for (i, (name, s)) in metrics.stats_sorted().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{{\"count\":{},\"mean\":", s.count());
        push_json_f64(&mut out, s.mean());
        out.push_str(",\"min\":");
        push_json_f64(&mut out, s.min());
        out.push_str(",\"max\":");
        push_json_f64(&mut out, s.max());
        out.push('}');
    }
    out.push_str("}}");
    out
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Index of the maximum value (None when empty or all-NaN).
pub fn argmax(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
}

/// Index of the minimum value (None when empty or all-NaN).
pub fn argmin(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
}

/// Spearman rank correlation between two equal-length series —
/// the "does the measured ordering match the paper's?" statistic.
///
/// NaN/infinite pairs are excluded before ranking (the same finite-filter
/// discipline as [`argmax`]/[`argmin`]): a position where *either* series
/// is non-finite contributes nothing. Fewer than two finite pairs → 0.0
/// (no ordering evidence either way).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 1.0;
    }
    let keep: Vec<usize> = (0..a.len())
        .filter(|&i| a[i].is_finite() && b[i].is_finite())
        .collect();
    let n = keep.len();
    if n < 2 {
        return 0.0;
    }
    let a: Vec<f64> = keep.iter().map(|&i| a[i]).collect();
    let b: Vec<f64> = keep.iter().map(|&i| b[i]).collect();
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite after filter"));
        let mut ranks = vec![0.0; xs.len()];
        // Ties receive the average of their rank positions.
        let mut pos = 0;
        while pos < idx.len() {
            let mut end = pos + 1;
            while end < idx.len() && xs[idx[end]] == xs[idx[pos]] {
                end += 1;
            }
            let avg = (pos + end - 1) as f64 / 2.0;
            for &i in &idx[pos..end] {
                ranks[i] = avg;
            }
            pos = end;
        }
        ranks
    };
    let (ra, rb) = (rank(&a), rank(&b));
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let (x, y) = (ra[i] - mean, rb[i] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut f = FigureReport::new(
            "Figure 2",
            "Petition time",
            "seconds",
            vec!["SC1".into(), "SC2".into()],
        );
        f.push(SeriesRow::new("paper", vec![12.86, 0.04]));
        f.push(SeriesRow::with_sd(
            "measured",
            vec![12.5, 0.05],
            vec![1.0, 0.01],
        ));
        f.note("means over 5 repetitions");
        f
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Figure 2"));
        assert!(s.contains("SC1"));
        assert!(s.contains("12.86"));
        assert!(s.contains("12.50±1.00"));
        assert!(s.contains("note: means over 5 repetitions"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,SC1,SC2"));
        assert!(lines[1].starts_with("paper,"));
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn push_validates_length() {
        let mut f = sample();
        f.push(SeriesRow::new("bad", vec![1.0]));
    }

    #[test]
    fn row_lookup() {
        let f = sample();
        assert!(f.row("paper").is_some());
        assert!(f.row("nope").is_none());
    }

    #[test]
    fn argmax_argmin() {
        let v = [3.0, 1.0, 5.0, 2.0];
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmin(&v), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_constant() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn spearman_skips_nan_pairs_instead_of_panicking() {
        // A NaN in either series drops that pair; the remaining finite
        // pairs are ranked normally (here: a perfect ordering).
        let a = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let b = [10.0, 20.0, 30.0, f64::NAN, 50.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        // Infinities are excluded under the same finite-filter.
        let c = [1.0, f64::INFINITY, 3.0, 4.0, 5.0];
        let d = [50.0, 20.0, 30.0, 20.0, 10.0];
        assert!((spearman(&c, &d) + 1.0).abs() < 1e-12);
        // Fewer than two finite pairs: no ordering evidence.
        assert_eq!(spearman(&[f64::NAN, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(spearman(&[f64::NAN, f64::NAN], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.123), "0.123");
        assert_eq!(format_value(5.5), "5.50");
        assert_eq!(format_value(123.456), "123.5");
    }

    use netsim::time::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::with_capacity(64);
        let sender = NodeId(0);
        tr.record(
            t(1.0),
            sender,
            TraceEventKind::PetitionSent {
                transfer: 42,
                to: NodeId(3),
                bytes: 200,
                parts: 2,
            },
        );
        tr.record(
            t(1.5),
            sender,
            TraceEventKind::PetitionAcked {
                transfer: 42,
                accepted: true,
            },
        );
        tr.record(
            t(1.5),
            sender,
            TraceEventKind::PartSent {
                transfer: 42,
                index: 0,
                bytes: 100,
            },
        );
        tr.record(
            t(2.0),
            sender,
            TraceEventKind::PartConfirmed {
                transfer: 42,
                index: 0,
                accepted: true,
            },
        );
        tr.record(
            t(2.0),
            sender,
            TraceEventKind::PartSent {
                transfer: 42,
                index: 1,
                bytes: 100,
            },
        );
        // A retransmission of part 1: duplicate send, then two confirms —
        // only the first accepted confirm may stamp the milestone.
        tr.record(
            t(4.0),
            sender,
            TraceEventKind::Retransmission {
                transfer: 42,
                part: Some(1),
                attempt: 2,
            },
        );
        tr.record(
            t(4.0),
            sender,
            TraceEventKind::PartSent {
                transfer: 42,
                index: 1,
                bytes: 100,
            },
        );
        tr.record(
            t(4.5),
            sender,
            TraceEventKind::PartConfirmed {
                transfer: 42,
                index: 1,
                accepted: true,
            },
        );
        tr.record(
            t(4.5),
            sender,
            TraceEventKind::TransferCompleted {
                transfer: 42,
                ok: true,
            },
        );
        tr.record(
            t(5.0),
            sender,
            TraceEventKind::PartConfirmed {
                transfer: 42,
                index: 1,
                accepted: false,
            },
        );
        tr
    }

    #[test]
    fn timelines_reconstruct_first_confirm_wins() {
        let tls = transfer_timelines(&sample_trace());
        assert_eq!(tls.len(), 1);
        let tl = &tls[0];
        assert_eq!(tl.transfer, 42);
        assert_eq!(tl.to, NodeId(3));
        assert_eq!(tl.acked, Some(true));
        assert_eq!(tl.ok, Some(true));
        assert_eq!(tl.retransmissions, 1);
        assert_eq!(tl.parts.len(), 2);
        // Part 1 keeps its first send (t=2.0) and its first accepted
        // confirm (t=4.5); the rejected duplicate at t=5.0 is ignored.
        assert_eq!(tl.parts[1].sent_at, t(2.0));
        assert_eq!(tl.parts[1].confirmed_at, Some(t(4.5)));
        assert!((tl.last_part_secs().unwrap() - 2.5).abs() < 1e-9);
        assert!((tl.duration_secs().unwrap() - 3.5).abs() < 1e-9);
        let rendered = render_timelines(&tls);
        assert!(rendered.contains("3.500"), "total seconds rendered");
        assert!(rendered.contains("true"));
    }

    #[test]
    fn timelines_leave_open_transfers_unfinished() {
        let mut tr = Trace::with_capacity(8);
        tr.record(
            t(0.0),
            NodeId(1),
            TraceEventKind::PetitionSent {
                transfer: 7,
                to: NodeId(2),
                bytes: 10,
                parts: 1,
            },
        );
        let tls = transfer_timelines(&tr);
        assert_eq!(tls.len(), 1);
        assert_eq!(tls[0].ended_at, None);
        assert_eq!(tls[0].ok, None);
        assert_eq!(tls[0].duration_secs(), None);
        assert_eq!(tls[0].last_part_secs(), None);
    }

    #[test]
    fn metrics_snapshot_is_sorted_and_deterministic() {
        let mut m = Metrics::new();
        m.incr("zeta", 2);
        m.incr("alpha", 1);
        m.observe("lat", 1.5);
        m.observe("lat", 2.5);
        let a = metrics_snapshot_json(&m);
        let b = metrics_snapshot_json(&m);
        assert_eq!(a, b);
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters sorted by name");
        assert!(a.contains("\"lat\":{\"count\":2,\"mean\":2,\"min\":1.5,\"max\":2.5}"));
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.ends_with("}}"));
    }

    #[test]
    fn json_f64_renders_non_finite_as_null() {
        let mut s = String::new();
        push_json_f64(&mut s, f64::NAN);
        s.push(',');
        push_json_f64(&mut s, f64::INFINITY);
        s.push(',');
        push_json_f64(&mut s, 1.25);
        assert_eq!(s, "null,null,1.25");
    }
}
