//! Parallel replication runner.
//!
//! The paper repeats every experiment five times and averages. Replications
//! are embarrassingly parallel (one independent simulation per seed), so we
//! fan them out over scoped threads and merge the results in seed order —
//! parallelism never changes the numbers.

use netsim::metrics::RunningStat;

use crate::scenario::{run_scenario_traced, ScenarioConfig, ScenarioResult};

/// Default trace ring-buffer size for [`run_traced`]: large enough to hold
/// every event of the paper's single-transfer scenarios.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One traced replication: the deterministic JSONL export, its FNV digest
/// (equal digests ⇔ byte-identical JSONL), and the full scenario result.
pub struct TracedRun {
    /// One JSON object per line, in event order.
    pub jsonl: String,
    /// FNV-1a digest over the JSONL bytes.
    pub digest: u64,
    /// The underlying scenario result (log, metrics, trace).
    pub result: ScenarioResult,
}

/// Runs one replication of `cfg` under `seed` with tracing forced on
/// (`cfg.trace_capacity`, or [`DEFAULT_TRACE_CAPACITY`] when unset) and
/// exports the trace as deterministic JSONL.
pub fn run_traced(cfg: &ScenarioConfig, seed: u64) -> TracedRun {
    let capacity = cfg.trace_capacity().unwrap_or(DEFAULT_TRACE_CAPACITY);
    let result = run_scenario_traced(cfg, seed, capacity);
    let jsonl = result.trace.to_jsonl();
    let digest = result.trace.digest();
    TracedRun {
        jsonl,
        digest,
        result,
    }
}

/// Runs `f` once per seed, in parallel, returning results in seed order.
pub fn run_replications<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    run_indexed(seeds.len(), seeds.len(), |i| f(seeds[i]))
}

/// The host's usable core count, detected robustly: prefer
/// [`std::thread::available_parallelism`] (cgroup/affinity-aware), fall back
/// to counting `processor` entries in `/proc/cpuinfo` (containers that mask
/// the syscall but mount procfs), and report 1 when both fail rather than
/// guessing high. Scaling benches key their `saturated` annotation off this
/// value, so a CPU-bound 0.95–1.0× point on a saturated host reads as the
/// expected outcome instead of a regression.
pub fn detect_host_parallelism() -> usize {
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        let procs = cpuinfo
            .lines()
            .filter(|l| l.starts_with("processor"))
            .count();
        if procs > 0 {
            return procs;
        }
    }
    1
}

/// A sensible worker-pool width for this host: the detected parallelism,
/// capped at 8 (campaign cells are memory-hungry simulations; more workers
/// than cores only adds scheduling noise).
pub fn default_workers() -> usize {
    detect_host_parallelism().min(8)
}

/// Runs `f(0..count)` over a bounded pool of `workers` scoped threads and
/// returns the results in index order.
///
/// Work-stealing over a shared atomic cursor: each worker claims the next
/// unclaimed index as it frees up, so long tasks don't stall the queue
/// behind them. Results land in per-index slots, so the output order — and
/// therefore every number derived from it — is independent of the worker
/// count and of scheduling. `workers` is clamped to `[1, count]`; with one
/// worker (or at most one task) everything runs inline on the caller's
/// thread.
pub fn run_indexed<R, F>(count: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = workers.clamp(1, count.max(1));
    if count <= 1 || workers == 1 {
        return (0..count).map(&f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let slots = &slots;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

/// Aggregates one named series across replications: each replication
/// produces a vector of values (one per label); the aggregate keeps a
/// [`RunningStat`] per label.
///
/// Aggregation is order-insensitive in the mean (Welford merging), so
/// folding replications as they finish in parallel produces the same
/// figures as folding them in seed order.
#[derive(Debug, Clone)]
#[must_use = "an aggregate carries the replication statistics; dropping it discards the experiment's numbers"]
pub struct SeriesAggregate {
    /// Per-label statistics, indexed like the input vectors.
    pub stats: Vec<RunningStat>,
}

impl SeriesAggregate {
    /// Creates an aggregate for `n` labels.
    pub fn new(n: usize) -> Self {
        SeriesAggregate {
            stats: vec![RunningStat::new(); n],
        }
    }

    /// Folds one replication's values in (must match the label count).
    pub fn add(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.stats.len(), "label count mismatch");
        for (stat, &v) in self.stats.iter_mut().zip(values) {
            stat.record(v);
        }
    }

    /// Aggregates many replications at once. The label count is taken
    /// from the first row; every row must match it (see
    /// [`SeriesAggregate::add`]).
    pub fn from_replications(rows: &[Vec<f64>]) -> Self {
        let n = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut agg = SeriesAggregate::new(n);
        for row in rows {
            agg.add(row);
        }
        agg
    }

    /// Mean per label.
    #[must_use]
    pub fn means(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.mean()).collect()
    }

    /// Standard deviation (Bessel-corrected, matching the paper's
    /// 5-repetition error bars) per label.
    #[must_use]
    pub fn std_devs(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.std_dev()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_in_seed_order() {
        let seeds = [5u64, 1, 9, 3];
        let results = run_replications(&seeds, |s| s * 10);
        assert_eq!(results, vec![50, 10, 90, 30]);
    }

    #[test]
    fn all_seeds_actually_run() {
        let counter = AtomicU64::new(0);
        let seeds: Vec<u64> = (0..16).collect();
        run_replications(&seeds, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn single_seed_runs_inline() {
        let results = run_replications(&[42], |s| s + 1);
        assert_eq!(results, vec![43]);
    }

    #[test]
    fn empty_seed_list() {
        let results: Vec<u64> = run_replications(&[], |s| s);
        assert!(results.is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let seeds: Vec<u64> = (0..8).collect();
        let parallel = run_replications(&seeds, |s| s * s + 7);
        let sequential: Vec<u64> = seeds.iter().map(|&s| s * s + 7).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn run_indexed_order_is_worker_count_invariant() {
        let expected: Vec<usize> = (0..23).map(|i| i * i).collect();
        for workers in [1, 2, 4, 64] {
            let got = run_indexed(23, workers, |i| i * i);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
        run_indexed(40, 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn run_indexed_zero_count() {
        let got: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn series_aggregate_means_and_sds() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let agg = SeriesAggregate::from_replications(&rows);
        assert_eq!(agg.means(), vec![3.0, 20.0]);
        assert!((agg.std_devs()[0] - 2.0).abs() < 1e-12);
        assert_eq!(agg.stats[0].count(), 3);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn series_aggregate_rejects_ragged_rows() {
        let mut agg = SeriesAggregate::new(2);
        agg.add(&[1.0, 2.0, 3.0]);
    }
}
