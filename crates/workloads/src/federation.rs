//! Federated-broker workload: homing, cross-broker petition forwarding,
//! and scripted broker failover at testbed scale.
//!
//! Drives a [`synthtopo`](crate::synthtopo) testbed with one broker per
//! region wired into an [`overlay::federation::Federation`]: brokers
//! gossip rosters on a cadence, forward `Selected` petitions they cannot
//! place locally to a live fellow broker (hop-budgeted), and — when an
//! outage is scripted — one broker crashes mid-run while its clients
//! detect the silence by probe timeout and re-home down their preference
//! list.
//!
//! The driver is a [`Workload`] on the [`harness`](crate::harness): it
//! contributes the testbed plan, the full federation spec (homing,
//! staleness, outage), the fleet, the [`federation_series`] schema, and
//! the summary JSON.
//!
//! Determinism contract matches [`churn`](crate::churn): peer scripts and
//! arrival instants derive only from the master seed and node id, the
//! sharded engine's event order is worker-count independent, so for a
//! fixed `(config, seed, num_shards)` the result — trace digest, metrics,
//! federation dynamics — is byte-identical at any `shard_workers`. The CI
//! workload-determinism job diffs `psim federate` output at 1 vs 4
//! workers (including a `--kill-broker-at` run) to hold this line.

use netsim::engine::{Actor, RunOutcome};
use netsim::metrics::Metrics;
use netsim::node::NodeId;
use netsim::parallel::ParallelProfile;
use netsim::profile::ExecutionProfile;
use netsim::rng::{DelayDistribution, SimRng};
use netsim::time::{SimDuration, SimTime};
use netsim::timeseries::{TimeSeriesError, TimeSeriesRecorder};
use netsim::trace::{Trace, TraceEventKind};
use overlay::broker::{Broker, BrokerCommand, BrokerConfig, TargetSpec};
use overlay::federation::{FailoverPolicy, HomingPolicy};
use overlay::lifecycle::{LifecycleConfig, LifecyclePeer, LifecycleScript, SessionPlan};
use overlay::message::OverlayMsg;
use overlay::records::RunLog;
use overlay::selector::RoundRobinSelector;

pub use crate::harness::BrokerOutage;
use crate::harness::{
    defaults, BuildCtx, FederationSpec, HarnessError, HarnessRun, TopologyPlan, Workload,
    WorkloadBuilder,
};
use crate::scenario::ScenarioError;
use crate::synthtopo::{build_synth_topo, SynthTopoConfig};
use crate::telemetry::federation_series;

/// Parameters of one federation run.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// The synthetic testbed; one broker per region.
    pub topo: SynthTopoConfig,
    /// How clients map to their home-broker preference list.
    pub homing: HomingPolicy,
    /// Broker-to-broker roster gossip cadence
    /// ([`defaults::GOSSIP_INTERVAL`]).
    pub gossip_interval: SimDuration,
    /// Tolerated age of gossiped candidate views; `None` = the builder
    /// default of three gossip rounds.
    pub staleness_bound: Option<SimDuration>,
    /// Hop budget for cross-broker petition forwarding (0 = off).
    pub forward_hops: u32,
    /// Probe cadence / silence threshold the clients re-home with.
    pub failover: FailoverPolicy,
    /// Virtual-time horizon bounding the run.
    pub horizon: SimDuration,
    /// Shard count (fixed across worker counts; must be `<= regions`).
    pub num_shards: usize,
    /// Worker threads for the sharded engine.
    pub shard_workers: usize,
    /// Selected-peer distribution rounds per broker.
    pub rounds: usize,
    /// Gap between successive distribution rounds.
    pub round_interval: SimDuration,
    /// Size of each distributed file in bytes.
    pub file_bytes: u64,
    /// Parts per distributed file.
    pub file_parts: u32,
    /// Peer arrivals are sampled uniformly over this window.
    pub arrival_spread: SimDuration,
    /// When `Some((r, offset))`, region `r`'s peers arrive `offset` late —
    /// its broker faces scheduled rounds with an empty registry, which is
    /// exactly what forces cross-broker forwarding.
    pub late_region: Option<(usize, SimDuration)>,
    /// Scripted broker crash/restart, if any.
    pub kill: Option<BrokerOutage>,
    /// Typed-trace ring capacity; `None` keeps tracing disabled.
    pub trace_capacity: Option<usize>,
    /// When `Some`, a [`federation_series`] recorder samples merged
    /// metrics at this sim-time interval.
    pub series_interval: Option<SimDuration>,
    /// Record per-shard execution accounting.
    pub profile_execution: bool,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            topo: SynthTopoConfig::default(),
            homing: HomingPolicy::RegionAffinity,
            gossip_interval: defaults::GOSSIP_INTERVAL,
            staleness_bound: None,
            forward_hops: 2,
            failover: FailoverPolicy::default(),
            horizon: SimDuration::from_secs(900),
            num_shards: 4,
            shard_workers: 1,
            rounds: 3,
            round_interval: SimDuration::from_secs(240),
            file_bytes: crate::spec::MB,
            file_parts: 4,
            arrival_spread: SimDuration::from_secs(100),
            late_region: None,
            kill: None,
            trace_capacity: Some(defaults::TRACE_CAPACITY),
            series_interval: None,
            profile_execution: false,
        }
    }
}

/// Federation accounting: how petitions and clients moved between
/// brokers. Read back out of merged run metrics, so worker-count
/// invariant by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationDynamics {
    /// First-time client joins.
    pub joins: u64,
    /// Failover re-homes (client gave up on a silent broker).
    pub rehomes: u64,
    /// Petitions a broker handed to a fellow broker.
    pub petitions_forwarded: u64,
    /// Forwarded petitions received from fellow brokers.
    pub forwards_received: u64,
    /// Forwarded petitions placed on a local candidate.
    pub forwards_served: u64,
    /// Forwarded petitions dropped with an exhausted hop budget.
    pub forwards_exhausted: u64,
    /// Gossiped candidate views rejected (tombstoned or conflicting).
    pub stale_views_dropped: u64,
    /// Roster gossip messages received.
    pub gossip_received: u64,
    /// Transfers that completed.
    pub transfers_completed: u64,
}

impl FederationDynamics {
    /// Reads the counters back out of merged run metrics.
    pub fn from_metrics(m: &Metrics) -> Self {
        FederationDynamics {
            joins: m.counter("churn.joins"),
            rehomes: m.counter("churn.rehomes"),
            petitions_forwarded: m.counter("overlay.petitions_forwarded"),
            forwards_received: m.counter("overlay.forwards_received"),
            forwards_served: m.counter("overlay.forwards_served"),
            forwards_exhausted: m.counter("overlay.forwards_exhausted"),
            stale_views_dropped: m.counter("overlay.stale_views_dropped"),
            gossip_received: m.counter("overlay.gossip_received"),
            transfers_completed: m.counter("overlay.transfers_completed"),
        }
    }
}

/// Five-number-ish summary of a latency sample set, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Smallest sample.
    pub min_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Largest sample.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarises `samples`; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut min_s = f64::INFINITY;
        let mut max_s = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min_s = min_s.min(s);
            max_s = max_s.max(s);
            sum += s;
        }
        Some(LatencySummary {
            count: samples.len(),
            min_s,
            mean_s: sum / samples.len() as f64,
            max_s,
        })
    }
}

/// Outputs of one federation run.
pub struct FederationResult {
    /// Merged run log (shard order, worker-count invariant).
    pub log: RunLog,
    /// Merged engine metrics.
    pub metrics: Metrics,
    /// Merged typed trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final virtual time.
    pub elapsed: SimTime,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Largest per-shard backlog (diagnostic; not worker-invariant).
    pub peak_queue_len: usize,
    /// Window/occupancy profile of the parallel run.
    pub profile: ParallelProfile,
    /// Federation movement totals.
    pub dynamics: FederationDynamics,
    /// Re-home delays after the scripted crash (crash instant → each
    /// `PeerRehomed` trace event), when an outage was scripted and
    /// tracing was on.
    pub recovery: Option<LatencySummary>,
    /// Windowed time-series rows, when `series_interval` was set.
    pub series: Option<TimeSeriesRecorder>,
    /// Per-shard execution accounting, when `profile_execution` was set.
    pub exec_profile: Option<ExecutionProfile>,
}

impl FederationResult {
    /// Receiver-observed petition latencies of every handled petition,
    /// seconds, in merged-log order.
    pub fn petition_latencies(&self) -> Vec<f64> {
        self.log
            .transfers
            .iter()
            .filter_map(|t| t.petition_latency_secs())
            .collect()
    }
}

/// The seed a peer's script and identity derive from: master seed plus
/// node id, nothing else (same construction as the churn workload).
fn peer_seed(seed: u64, node: NodeId) -> u64 {
    seed.wrapping_mul(6364136223846793005)
        .wrapping_add(node.index() as u64)
}

/// Re-home delays after a scripted crash: crash instant → each
/// `PeerRehomed` trace event at or after it.
fn recovery_summary(trace: &Trace, kill: Option<BrokerOutage>) -> Option<LatencySummary> {
    kill.and_then(|kill| {
        let down_at = SimTime::ZERO + kill.down_at;
        let samples: Vec<f64> = trace
            .events()
            .filter_map(|e| match e.kind {
                TraceEventKind::PeerRehomed { .. } if e.time >= down_at => {
                    Some((e.time - down_at).as_secs_f64())
                }
                _ => None,
            })
            .collect();
        LatencySummary::from_samples(&samples)
    })
}

/// The federation driver as a harness [`Workload`].
pub struct FederationWorkload<'a> {
    /// The run parameters (shared with [`run_federation`]).
    pub cfg: &'a FederationConfig,
}

impl Workload for FederationWorkload<'_> {
    fn name(&self) -> &'static str {
        "federation"
    }

    fn topology(&self, seed: u64) -> Result<TopologyPlan, HarnessError> {
        let built = build_synth_topo(&self.cfg.topo, seed);
        let map = self.cfg.topo.shard_map(self.cfg.num_shards)?;
        Ok(TopologyPlan {
            topo: built.topo,
            map,
            brokers: built.brokers,
        })
    }

    fn federation(&self) -> FederationSpec {
        FederationSpec {
            homing: self.cfg.homing,
            gossip_interval: self.cfg.gossip_interval,
            staleness_bound: self.cfg.staleness_bound,
            forward_hops: self.cfg.forward_hops,
            outage: self.cfg.kill,
        }
    }

    fn actors(&self, cx: &BuildCtx<'_>) -> Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> {
        let cfg = self.cfg;
        let mut actors: Vec<(NodeId, Box<dyn Actor<OverlayMsg> + Send>)> = Vec::new();
        for (r, &broker) in cx.brokers.iter().enumerate() {
            let mut broker_cfg = BrokerConfig::new(cx.seed ^ (0xFEDE_0000 + r as u64));
            broker_cfg.stop_when_idle = false;
            broker_cfg.selector = Some(Box::new(RoundRobinSelector::new()));
            cx.federation.configure(r, &mut broker_cfg);
            for round in 0..cfg.rounds {
                broker_cfg = broker_cfg.at(
                    SimDuration::from_secs(120) + cfg.round_interval * round as u64,
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Selected,
                        size_bytes: cfg.file_bytes,
                        num_parts: cfg.file_parts,
                        label: format!("fed-r{r}-round{round}"),
                    },
                );
            }
            actors.push((
                broker,
                Box::new(Broker::new(broker_cfg, cx.sink_of(broker))),
            ));
        }
        for r in 0..cfg.topo.regions {
            let late_offset = match cfg.late_region {
                Some((lr, offset)) if lr == r => offset,
                _ => SimDuration::ZERO,
            };
            for node in cfg.topo.peer_nodes(r) {
                let pseed = peer_seed(cx.seed, node);
                let mut rng = SimRng::new(pseed).split(0xFEDE_0001);
                let spread = DelayDistribution::Uniform {
                    lo: 0.0,
                    hi: cfg.arrival_spread.as_secs_f64().max(1.0),
                };
                let arrival =
                    late_offset + SimDuration::from_secs_f64(spread.sample_secs(&mut rng));
                // One session outliving the horizon: federation peers never
                // leave by script, so every departure-shaped transition the
                // run sees is a failover re-home.
                let script = LifecycleScript {
                    arrival,
                    sessions: vec![SessionPlan {
                        length: cfg.horizon * 2,
                        off_time: SimDuration::ZERO,
                        cpu_gops: rng.pareto(0.5, 1.8),
                    }],
                };
                let peer_cfg = LifecycleConfig {
                    brokers: cx.federation.homes_for(node, r),
                    script,
                    accepts_tasks: true,
                    failover: Some(cfg.failover),
                };
                actors.push((node, Box::new(LifecyclePeer::new(peer_cfg, pseed))));
            }
        }
        actors
    }

    fn series_schema(&self, interval: SimDuration) -> Result<TimeSeriesRecorder, TimeSeriesError> {
        federation_series(interval)
    }

    fn summarize(&self, seed: u64, run: &HarnessRun) -> String {
        let petition: Vec<f64> = run
            .log
            .transfers
            .iter()
            .filter_map(|t| t.petition_latency_secs())
            .collect();
        let mut tail = render_summary(
            self.cfg,
            seed,
            run.outcome,
            run.elapsed,
            run.events_processed,
            run.trace.digest(),
            run.log.transfers.len(),
            FederationDynamics::from_metrics(&run.metrics),
            LatencySummary::from_samples(&petition),
            recovery_summary(&run.trace, self.cfg.kill),
        );
        tail.push('\n');
        tail
    }
}

/// JSON fragment for an optional latency summary (`null` when absent).
fn summary_fragment(summary: Option<LatencySummary>) -> String {
    match summary {
        Some(s) => format!(
            "{{\"count\":{},\"min_s\":{},\"mean_s\":{},\"max_s\":{}}}",
            s.count, s.min_s, s.mean_s, s.max_s
        ),
        None => "null".to_string(),
    }
}

/// The summary JSON shared by [`Workload::summarize`] and
/// [`summary_json`] — one format string, two result shapes.
#[allow(clippy::too_many_arguments)]
fn render_summary(
    cfg: &FederationConfig,
    seed: u64,
    outcome: RunOutcome,
    elapsed: SimTime,
    events: u64,
    digest: u64,
    transfers: usize,
    d: FederationDynamics,
    petition: Option<LatencySummary>,
    recovery: Option<LatencySummary>,
) -> String {
    format!(
        "{{\"workload\":\"federation\",\"brokers\":{},\"peers\":{},\"num_shards\":{},\
         \"horizon_secs\":{},\"seed\":{},\"homing\":\"{:?}\",\"gossip_secs\":{},\
         \"outcome\":\"{:?}\",\"elapsed_secs\":{},\"events\":{},\
         \"trace_digest\":\"{:016x}\",\"transfers\":{},\
         \"dynamics\":{{\"joins\":{},\"rehomes\":{},\"petitions_forwarded\":{},\
         \"forwards_received\":{},\"forwards_served\":{},\"forwards_exhausted\":{},\
         \"stale_views_dropped\":{}}},\
         \"petition_latency\":{},\"recovery\":{}}}",
        cfg.topo.regions,
        cfg.topo.peers,
        cfg.num_shards,
        cfg.horizon.as_secs_f64(),
        seed,
        cfg.homing,
        cfg.gossip_interval.as_secs_f64(),
        outcome,
        elapsed.as_secs_f64(),
        events,
        digest,
        transfers,
        d.joins,
        d.rehomes,
        d.petitions_forwarded,
        d.forwards_received,
        d.forwards_served,
        d.forwards_exhausted,
        d.stale_views_dropped,
        summary_fragment(petition),
        summary_fragment(recovery),
    )
}

/// Renders the worker-invariant summary JSON `psim federate` and
/// `psim bench-federation` embed (no trailing newline).
pub fn summary_json(cfg: &FederationConfig, seed: u64, result: &FederationResult) -> String {
    render_summary(
        cfg,
        seed,
        result.outcome,
        result.elapsed,
        result.events_processed,
        result.trace.digest(),
        result.log.transfers.len(),
        result.dynamics,
        LatencySummary::from_samples(&result.petition_latencies()),
        result.recovery,
    )
}

/// Runs one federation replication of `cfg` under `seed` on the harness.
/// Byte-identical for any `shard_workers` at fixed shards. Invalid
/// shard counts, degenerate topologies, and rejected federation
/// parameters surface as [`ScenarioError`]s instead of panics.
pub fn run_federation(
    cfg: &FederationConfig,
    seed: u64,
) -> Result<FederationResult, ScenarioError> {
    let harness = WorkloadBuilder::new()
        .horizon(cfg.horizon)
        .shard_workers(cfg.shard_workers)
        .trace_capacity(cfg.trace_capacity)
        .series_interval(cfg.series_interval)
        .profile_execution(cfg.profile_execution)
        .build()?;
    let run = harness.run(&FederationWorkload { cfg }, seed)?;
    let dynamics = FederationDynamics::from_metrics(&run.metrics);
    let recovery = recovery_summary(&run.trace, cfg.kill);
    Ok(FederationResult {
        log: run.log,
        metrics: run.metrics,
        trace: run.trace,
        outcome: run.outcome,
        elapsed: run.elapsed,
        events_processed: run.events_processed,
        peak_queue_len: run.peak_queue_len,
        profile: run.profile,
        dynamics,
        recovery,
        series: run.series,
        exec_profile: run.exec_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Small federation: three regions, one late region so its broker's
    /// scheduled rounds fire against an empty registry and forward. The
    /// slow gossip cadence matters: fast gossip would hand the late
    /// broker remote candidate views, and gossiped candidates satisfy
    /// `Selected` directly — forwarding is the *no viable candidate at
    /// all* path, local or gossiped.
    fn small() -> FederationConfig {
        FederationConfig {
            topo: SynthTopoConfig {
                regions: 3,
                peers: 18,
                ..SynthTopoConfig::default()
            },
            num_shards: 3,
            rounds: 2,
            round_interval: SimDuration::from_secs(180),
            horizon: SimDuration::from_secs(900),
            gossip_interval: SimDuration::from_secs(400),
            late_region: Some((1, SimDuration::from_secs(600))),
            ..FederationConfig::default()
        }
    }

    #[test]
    fn forwarded_petitions_are_worker_count_invariant() {
        let runs: Vec<FederationResult> = [1, 2, 4]
            .iter()
            .map(|&w| {
                run_federation(
                    &FederationConfig {
                        shard_workers: w,
                        ..small()
                    },
                    2026,
                )
                .expect("small config is valid")
            })
            .collect();
        assert_ne!(runs[0].trace.len(), 0, "trace must not be empty");
        assert!(
            runs[0].dynamics.petitions_forwarded > 0,
            "the late region's rounds must forward: {:?}",
            runs[0].dynamics
        );
        assert!(
            runs[0].dynamics.forwards_served > 0,
            "some forwarded petition must land on a live candidate"
        );
        for r in &runs[1..] {
            assert_eq!(r.outcome, runs[0].outcome);
            assert_eq!(r.trace.digest(), runs[0].trace.digest());
            assert_eq!(r.elapsed, runs[0].elapsed);
            assert_eq!(r.events_processed, runs[0].events_processed);
            assert_eq!(r.metrics.render(), runs[0].metrics.render());
            assert_eq!(r.dynamics, runs[0].dynamics);
            assert_eq!(r.log.transfers.len(), runs[0].log.transfers.len());
            assert_eq!(r.petition_latencies(), runs[0].petition_latencies());
        }
    }

    #[test]
    fn failover_rehomes_clients_without_double_confirms() {
        let peers_in_killed_region = 6; // 18 peers / 3 regions
        let result = run_federation(
            &FederationConfig {
                kill: Some(BrokerOutage {
                    region: 0,
                    down_at: SimDuration::from_secs(400),
                    restart_at: None,
                }),
                horizon: SimDuration::from_secs(1200),
                late_region: None,
                ..small()
            },
            77,
        )
        .expect("failover config is valid");
        assert_eq!(
            result.dynamics.rehomes, peers_in_killed_region,
            "every client of the dead broker re-homes exactly once"
        );
        let recovery = result.recovery.expect("rehomes leave trace events");
        assert_eq!(recovery.count as u64, result.dynamics.rehomes);
        assert!(
            recovery.min_s > 0.0,
            "re-homing cannot precede the crash it reacts to"
        );
        // No transfer record is double-confirmed: each part index is
        // confirmed at most once, and never more parts than the file has.
        assert!(!result.log.transfers.is_empty());
        for t in &result.log.transfers {
            let mut confirmed = HashSet::new();
            for p in t.parts.iter().filter(|p| p.confirmed_at.is_some()) {
                assert!(
                    confirmed.insert(p.index),
                    "part {} of {} confirmed twice",
                    p.index,
                    t.label
                );
            }
            assert!(confirmed.len() <= t.num_parts as usize);
        }
    }

    #[test]
    fn failover_runs_are_worker_count_invariant() {
        let cfg = |w| FederationConfig {
            shard_workers: w,
            kill: Some(BrokerOutage {
                region: 2,
                down_at: SimDuration::from_secs(300),
                restart_at: Some(SimDuration::from_secs(700)),
            }),
            horizon: SimDuration::from_secs(1100),
            ..small()
        };
        let one = run_federation(&cfg(1), 9).expect("valid");
        let four = run_federation(&cfg(4), 9).expect("valid");
        assert!(one.dynamics.rehomes > 0, "the crash must strand clients");
        assert_eq!(one.trace.digest(), four.trace.digest());
        assert_eq!(one.metrics.render(), four.metrics.render());
        assert_eq!(one.dynamics, four.dynamics);
    }

    #[test]
    fn consistent_hash_homing_runs_and_spreads() {
        let result = run_federation(
            &FederationConfig {
                homing: HomingPolicy::ConsistentHash,
                late_region: None,
                ..small()
            },
            5,
        )
        .expect("hash homing is valid");
        assert_eq!(result.dynamics.joins, 18, "every peer joins");
        assert!(result.dynamics.transfers_completed > 0);
    }
}
