//! # workloads — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation:
//!
//! * [`spec`] — units and the paper's 5-repetition methodology.
//! * [`scenario`] — wiring: testbed → engine → broker/clients → records.
//! * [`runner`] — parallel replication over seeds (std scoped threads).
//! * [`report`] — paper-vs-measured table rendering and shape statistics.
//! * [`attribution`] — per-transfer latency phase decomposition over traces.
//! * [`harness`] — the shared workload harness: validated builder, the
//!   [`Workload`](harness::Workload) trait, engine assembly, artifact rules.
//! * [`multiregion`] — federated multi-region workload for the sharded engine.
//! * [`synthtopo`] — procedural million-peer testbeds (blocked topologies,
//!   haversine inter-region delays, power-law capacities).
//! * [`churn`] — scripted join/leave/rejoin workload over a synthetic
//!   testbed (`psim churn`, `psim bench-churn`).
//! * [`federation`] — multi-broker federation workload: homing, petition
//!   forwarding, broker failover (`psim federate`, `psim bench-federation`).
//! * [`streaming`] — streaming-on-demand workload: playback buffers,
//!   piece-selection policies, rebuffering metrics (`psim stream`,
//!   `psim bench-streaming`).
//! * [`telemetry`] — the standard windowed time-series column sets the
//!   workloads record (`psim profile`).
//! * [`sweep`] — grid-sweep campaigns over typed axes (`psim sweep`).
//! * [`sweepbench`] — sweep-pool scaling measurement (`BENCH_sweep.json`).
//! * [`enginebench`] — engine throughput measurement (`BENCH_engine.json`).
//! * [`experiments`] — one module per artifact: `table1`, `fig2`…`fig7`.
//!
//! ```no_run
//! use workloads::experiments;
//! use workloads::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::paper_defaults();
//! println!("{}", experiments::fig2::run(&spec).render());
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod churn;
pub mod enginebench;
pub mod experiments;
pub mod federation;
pub mod harness;
pub mod multiregion;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod streaming;
pub mod sweep;
pub mod sweepbench;
pub mod synthtopo;
pub mod telemetry;
