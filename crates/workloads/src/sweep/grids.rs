//! The named sweep grids: each paper-facing campaign as a [`SweepSpec`].
//!
//! Split out of `sweep` so the axis/expansion/rendering machinery and the
//! concrete grid catalog stay separately auditable. `psim sweep` resolves
//! names through [`named_grid`]; [`named_grid_list`] is the help text.

use netsim::time::SimDuration;

use super::{
    CellWorkload, ModelKind, SeedScheme, SweepSpec, TestbedAxis, ACCEPT_ALL, FIG6_WARMUP_ACCEPT,
};
use crate::experiments::{fig5, fig6};
use crate::spec::ExperimentSpec;
use crate::streaming::{PiecePolicy, UploadProfile};

/// The Figs 3–5 grid: the 100 MB file broadcast whole vs 4 vs 16 parts —
/// 3 cells × 8 SC rows = the paper's 24 transmission-time cells.
pub fn fig345_grid(seeds: SeedScheme, warmup: SimDuration) -> SweepSpec {
    SweepSpec {
        name: "fig345".into(),
        workload: CellWorkload::Distribute {
            size_bytes: fig5::FILE_SIZE,
        },
        models: vec![ModelKind::Blind],
        parts: fig5::GRANULARITIES.to_vec(),
        drop_probabilities: vec![0.0],
        testbeds: vec![TestbedAxis::Measurement],
        accept_profiles: vec![ACCEPT_ALL],
        brokers: vec![1],
        gossip_staleness: vec![0.0],
        piece_policies: vec![PiecePolicy::Sequential],
        windows: vec![1],
        uploads: vec![UploadProfile::Home],
        seeds,
        warmup,
    }
}

/// The Figs 6–7 grid: the four selection models × {4, 16} parts over the
/// warm-up/background/measured-transfer scenario.
pub fn fig67_grid(seeds: SeedScheme, warmup: SimDuration) -> SweepSpec {
    SweepSpec {
        name: "fig67".into(),
        workload: CellWorkload::SelectedTransfer {
            measured_bytes: fig6::MEASURED_SIZE,
            background_bytes: fig6::BACKGROUND_SIZE,
        },
        models: fig6::MODELS.to_vec(),
        parts: fig6::GRANULARITIES.to_vec(),
        drop_probabilities: vec![0.0],
        testbeds: vec![TestbedAxis::Measurement],
        accept_profiles: vec![FIG6_WARMUP_ACCEPT],
        brokers: vec![1],
        gossip_staleness: vec![0.0],
        piece_policies: vec![PiecePolicy::Sequential],
        windows: vec![1],
        uploads: vec![UploadProfile::Home],
        seeds,
        warmup,
    }
}

/// The federation grid: mean petition latency across broker count × the
/// gossip/staleness cadence — the `psim bench-federation` axes as a sweep
/// campaign, so replications and CSV/JSON rendering come for free.
pub fn federation_grid(seeds: SeedScheme) -> SweepSpec {
    SweepSpec {
        name: "federation".into(),
        workload: CellWorkload::Federation { peers: 64 },
        models: vec![ModelKind::Blind],
        parts: vec![4],
        drop_probabilities: vec![0.0],
        testbeds: vec![TestbedAxis::Measurement],
        accept_profiles: vec![ACCEPT_ALL],
        brokers: vec![2, 4],
        gossip_staleness: vec![30.0, 240.0],
        piece_policies: vec![PiecePolicy::Sequential],
        windows: vec![1],
        uploads: vec![UploadProfile::Home],
        seeds,
        warmup: SimDuration::ZERO,
    }
}

/// The streaming grid: median startup delay and fleet rebuffering across
/// piece policy × request window × uplink distribution — the
/// arXiv:1402.2187 selection axes as a sweep campaign.
pub fn streaming_grid(seeds: SeedScheme) -> SweepSpec {
    SweepSpec {
        name: "streaming".into(),
        workload: CellWorkload::Streaming { viewers: 16 },
        models: vec![ModelKind::Blind],
        parts: vec![1],
        drop_probabilities: vec![0.0],
        testbeds: vec![TestbedAxis::Measurement],
        accept_profiles: vec![ACCEPT_ALL],
        brokers: vec![1],
        gossip_staleness: vec![0.0],
        piece_policies: PiecePolicy::ALL.to_vec(),
        windows: vec![2, 8],
        uploads: vec![UploadProfile::Home, UploadProfile::Campus],
        seeds,
        warmup: SimDuration::ZERO,
    }
}

/// The grid names `psim sweep` accepts.
pub fn named_grid_list() -> Vec<&'static str> {
    vec!["fig345", "fig67", "federation", "streaming"]
}

/// Resolves a named grid with a derived seed scheme. `None` for unknown
/// names; see [`named_grid_list`].
pub fn named_grid(name: &str, campaign_seed: u64, replications: usize) -> Option<SweepSpec> {
    let seeds = SeedScheme::Derived {
        campaign_seed,
        replications,
    };
    let warmup = ExperimentSpec::paper_defaults().warmup;
    match name {
        "fig345" => Some(fig345_grid(seeds, warmup)),
        "fig67" => Some(fig67_grid(seeds, warmup)),
        "federation" => Some(federation_grid(seeds)),
        "streaming" => Some(streaming_grid(seeds)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_campaign;
    use super::*;

    #[test]
    fn fig345_covers_all_24_paper_cells() {
        let spec = fig345_grid(SeedScheme::Explicit(vec![1]), SimDuration::from_secs(60));
        let campaign = run_campaign(&spec, 4).expect("valid grid");
        assert_eq!(campaign.cells.len(), 3, "whole, 4 parts, 16 parts");
        let csv = campaign.to_csv();
        let data_rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(data_rows.len(), 24, "8 SCs x 3 splits");
        for sc in 1..=8 {
            assert_eq!(
                data_rows
                    .iter()
                    .filter(|r| r.contains(&format!(",SC{sc},")))
                    .count(),
                3,
                "SC{sc} appears once per split"
            );
        }
        // Finer granularity is faster, as in Fig 5.
        let mean_of = |ci: usize| {
            let means: Vec<f64> = campaign.cells[ci]
                .rows
                .iter()
                .map(|(_, s)| s.mean())
                .collect();
            means.iter().sum::<f64>() / means.len() as f64
        };
        assert!(mean_of(0) > mean_of(1), "whole slower than 4 parts");
        assert!(mean_of(1) > mean_of(2), "4 parts slower than 16");
    }

    #[test]
    fn federation_grid_runs_and_is_worker_invariant() {
        let mk = || {
            let mut s = federation_grid(SeedScheme::Derived {
                campaign_seed: 5,
                replications: 1,
            });
            s.workload = CellWorkload::Federation { peers: 24 };
            s.gossip_staleness = vec![240.0];
            s
        };
        let one = run_campaign(&mk(), 1).expect("valid grid");
        let four = run_campaign(&mk(), 4).expect("valid grid");
        assert_eq!(one.to_csv(), four.to_csv());
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.cells.len(), 2, "2 broker counts x 1 cadence");
        assert!(one.to_csv().starts_with(
            "grid,cell,testbed,accept,model,drop,parts,brokers,staleness,policy,window,upload,label,unit,reps,mean,sd,min,max\n"
        ));
        for c in &one.cells {
            assert_eq!(c.rows.len(), 1);
            assert_eq!(c.rows[0].0, "petition_mean");
            assert!(c.rows[0].1.mean() > 0.0, "petition latency recorded");
        }
        assert_eq!(one.cells[0].cell.brokers, 2);
        assert_eq!(one.cells[1].cell.brokers, 4);
    }

    #[test]
    fn streaming_grid_runs_and_is_worker_invariant() {
        let mk = || {
            let mut s = streaming_grid(SeedScheme::Derived {
                campaign_seed: 5,
                replications: 1,
            });
            s.workload = CellWorkload::Streaming { viewers: 8 };
            s.piece_policies = vec![PiecePolicy::Sequential, PiecePolicy::Windowed];
            s.windows = vec![4];
            s.uploads = vec![UploadProfile::Home];
            s
        };
        let one = run_campaign(&mk(), 1).expect("valid grid");
        let four = run_campaign(&mk(), 4).expect("valid grid");
        assert_eq!(one.to_csv(), four.to_csv());
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.cells.len(), 2, "2 policies x 1 window x 1 upload");
        for c in &one.cells {
            let labels: Vec<&str> = c.rows.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(labels, ["startup_p50", "rebuffer_secs"]);
            assert!(c.rows[0].1.mean() > 0.0, "playback started");
        }
        assert_eq!(one.cells[0].cell.piece_policy, PiecePolicy::Sequential);
        assert_eq!(one.cells[1].cell.piece_policy, PiecePolicy::Windowed);
        // The policy axis moves the figures: the two cells differ.
        assert_ne!(
            one.cells[0].rows[0].1.mean(),
            one.cells[1].rows[0].1.mean(),
            "startup medians differ across policies"
        );
    }

    #[test]
    fn named_grids_resolve_and_unknown_does_not() {
        for name in named_grid_list() {
            let spec = named_grid(name, 1, 2).expect("listed grid resolves");
            spec.validate().expect("listed grid is valid");
        }
        assert!(named_grid("fig999", 1, 2).is_none());
    }
}
