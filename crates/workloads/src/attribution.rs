//! Latency attribution: where each transfer's time actually went.
//!
//! The typed trace records every petition, part, confirm, retransmission
//! and completion; this module replays those events per transfer and
//! decomposes the end-to-end latency into **non-overlapping phases**:
//!
//! * `broker_queue` — the transfer's command sat in the broker waiting
//!   (e.g. for a peer to join) before the petition could go out;
//! * `wakeup` — petition sent → first petition ack, minus any timeout/
//!   retransmission time in that window (the paper's Fig 2 story: SC7's
//!   wake-up service alone costs ~27 s);
//! * `transmission` — productive part transfer time (each part's window
//!   runs from the previous confirm to its own first accepted confirm);
//! * `retrans_stall` — time between the first and last retransmission
//!   probe of a stage: successive retries that still weren't answered;
//! * `timeout_idle` — silence before the first retransmission of a stage
//!   fired, and the dead tail of cancelled transfers.
//!
//! The phase windows partition `[enqueued, ended]` exactly, and all the
//! arithmetic is integer nanoseconds ([`SimDuration`]), so the phases sum
//! to the end-to-end latency **exactly** — not merely to float round-off.
//! That invariant is asserted by property tests over full traced runs and
//! is a strong end-to-end check on the protocol stack's event emission.

use std::collections::HashMap;
use std::fmt::Write as _;

use netsim::metrics::{Histogram, Metrics};
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{Trace, TraceEventKind};

/// Number of attribution phases.
pub const PHASE_COUNT: usize = 5;

/// Histogram layout shared by every phase histogram: 1 ms base, 32
/// doubling buckets (top bound ≈ 4.3 × 10⁶ s, far beyond any horizon).
pub const PHASE_HISTOGRAM_BASE: f64 = 0.001;
/// See [`PHASE_HISTOGRAM_BASE`].
pub const PHASE_HISTOGRAM_BUCKETS: usize = 32;

/// One attribution phase (see the module docs for definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Command queued in the broker before the petition went out.
    BrokerQueue,
    /// Petition sent → first ack (productive share of that window).
    Wakeup,
    /// Productive part-transfer time.
    Transmission,
    /// Between first and last retransmission probe of a stage.
    RetransStall,
    /// Silence before a stage's first retransmission; dead tail of
    /// cancelled transfers.
    TimeoutIdle,
}

impl Phase {
    /// Every phase, in canonical (rendering) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::BrokerQueue,
        Phase::Wakeup,
        Phase::Transmission,
        Phase::RetransStall,
        Phase::TimeoutIdle,
    ];

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BrokerQueue => "broker_queue",
            Phase::Wakeup => "wakeup",
            Phase::Transmission => "transmission",
            Phase::RetransStall => "retrans_stall",
            Phase::TimeoutIdle => "timeout_idle",
        }
    }

    /// Index into a `[T; PHASE_COUNT]` phase array.
    pub fn index(self) -> usize {
        match self {
            Phase::BrokerQueue => 0,
            Phase::Wakeup => 1,
            Phase::Transmission => 2,
            Phase::RetransStall => 3,
            Phase::TimeoutIdle => 4,
        }
    }
}

/// One transfer's phase decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferAttribution {
    /// Raw transfer id (matches the `xfer` JSONL field).
    pub transfer: u128,
    /// The sending node (broker or instructed client).
    pub sender: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// Total file size in bytes.
    pub bytes: u64,
    /// When the transfer's command was first runnable (= `began_at`
    /// unless the broker deferred it).
    pub enqueued_at: SimTime,
    /// When the petition went out.
    pub began_at: SimTime,
    /// When the transfer closed (complete or cancelled).
    pub ended_at: SimTime,
    /// Whether it completed successfully.
    pub ok: bool,
    /// Retransmissions attributed to this transfer.
    pub retransmissions: u32,
    /// Per-phase durations, indexed by [`Phase::index`]. Sums exactly to
    /// [`TransferAttribution::end_to_end`].
    pub phases: [SimDuration; PHASE_COUNT],
}

impl TransferAttribution {
    /// Duration of one phase.
    pub fn phase(&self, p: Phase) -> SimDuration {
        self.phases[p.index()]
    }

    /// Duration of one phase in seconds.
    pub fn phase_secs(&self, p: Phase) -> f64 {
        self.phase(p).as_secs_f64()
    }

    /// Enqueue → close. Equals the sum of all phases exactly (integer
    /// nanoseconds throughout).
    pub fn end_to_end(&self) -> SimDuration {
        self.ended_at.duration_since(self.enqueued_at)
    }

    /// The phase that consumed the most time (ties go to the earlier
    /// phase in [`Phase::ALL`] order, deterministically).
    pub fn dominant_phase(&self) -> Phase {
        let mut best = Phase::ALL[0];
        for p in Phase::ALL {
            if self.phase(p) > self.phase(best) {
                best = p;
            }
        }
        best
    }
}

/// Partial per-transfer state accumulated while walking the trace.
struct Pending {
    sender: NodeId,
    to: NodeId,
    bytes: u64,
    enqueued_at: Option<SimTime>,
    began_at: SimTime,
    acked_at: Option<SimTime>,
    /// First accepted confirm per part index.
    confirms: HashMap<u32, SimTime>,
    /// `(time, part)` of every retransmission, in trace order.
    retrans: Vec<(SimTime, Option<u32>)>,
    ended: Option<(SimTime, bool)>,
}

/// One milestone-bounded stage of a transfer.
struct Stage {
    end: SimTime,
    /// Where the productive remainder of the window goes.
    productive: Phase,
    /// Which retransmissions belong to this stage.
    part: Option<u32>,
}

/// Splits the window `[start, end]` among `timeout_idle` / `retrans_stall`
/// / `productive` according to the retransmissions that fired inside it.
fn split_stage(
    phases: &mut [SimDuration; PHASE_COUNT],
    start: SimTime,
    end: SimTime,
    productive: Phase,
    retrans: &[SimTime],
) {
    let window = end.duration_since(start);
    if retrans.is_empty() {
        phases[productive.index()] += window;
        return;
    }
    // Clamp probe times into the window so a late-fired probe can never
    // push a phase negative or double-count across stages.
    let first = retrans[0].max(start).min(end);
    let last = retrans[retrans.len() - 1].max(start).min(end);
    phases[Phase::TimeoutIdle.index()] += first.duration_since(start);
    phases[Phase::RetransStall.index()] += last.duration_since(first);
    phases[productive.index()] += end.duration_since(last);
}

/// Reconstructs and attributes every **closed** transfer in the trace, in
/// the order transfers first appear. Open transfers (no
/// `transfer_completed` event) are skipped: their phases cannot be
/// finalized.
pub fn attribute_trace(trace: &Trace) -> Vec<TransferAttribution> {
    let mut order: Vec<u128> = Vec::new();
    let mut by_id: HashMap<u128, Pending> = HashMap::new();
    for ev in trace.events() {
        match &ev.kind {
            TraceEventKind::TransferQueued {
                transfer,
                enqueued_at,
            } => {
                // Arrives just before the petition event; stash it for the
                // record created there.
                by_id
                    .entry(*transfer)
                    .or_insert_with(|| {
                        order.push(*transfer);
                        Pending {
                            sender: ev.node,
                            to: ev.node,
                            bytes: 0,
                            enqueued_at: None,
                            began_at: ev.time,
                            acked_at: None,
                            confirms: HashMap::new(),
                            retrans: Vec::new(),
                            ended: None,
                        }
                    })
                    .enqueued_at = Some(*enqueued_at);
            }
            TraceEventKind::PetitionSent {
                transfer,
                to,
                bytes,
                ..
            } => {
                let p = by_id.entry(*transfer).or_insert_with(|| {
                    order.push(*transfer);
                    Pending {
                        sender: ev.node,
                        to: *to,
                        bytes: *bytes,
                        enqueued_at: None,
                        began_at: ev.time,
                        acked_at: None,
                        confirms: HashMap::new(),
                        retrans: Vec::new(),
                        ended: None,
                    }
                });
                p.to = *to;
                p.bytes = *bytes;
                p.began_at = ev.time;
            }
            TraceEventKind::PetitionAcked { transfer, .. } => {
                if let Some(p) = by_id.get_mut(transfer) {
                    if p.acked_at.is_none() {
                        p.acked_at = Some(ev.time);
                    }
                }
            }
            TraceEventKind::PartConfirmed {
                transfer,
                index,
                accepted: true,
            } => {
                if let Some(p) = by_id.get_mut(transfer) {
                    p.confirms.entry(*index).or_insert(ev.time);
                }
            }
            TraceEventKind::Retransmission { transfer, part, .. } => {
                if let Some(p) = by_id.get_mut(transfer) {
                    p.retrans.push((ev.time, *part));
                }
            }
            TraceEventKind::TransferCompleted { transfer, ok } => {
                if let Some(p) = by_id.get_mut(transfer) {
                    if p.ended.is_none() {
                        p.ended = Some((ev.time, *ok));
                    }
                }
            }
            _ => {}
        }
    }

    order
        .into_iter()
        .filter_map(|id| {
            let p = by_id.remove(&id)?;
            let (ended_at, ok) = p.ended?;
            Some(finalize(id, p, ended_at, ok))
        })
        .collect()
}

fn finalize(id: u128, p: Pending, ended_at: SimTime, ok: bool) -> TransferAttribution {
    let enqueued_at = p.enqueued_at.unwrap_or(p.began_at).min(p.began_at);
    let mut phases = [SimDuration::ZERO; PHASE_COUNT];
    phases[Phase::BrokerQueue.index()] = p.began_at.duration_since(enqueued_at);

    // Build the stage chain: petition (if acked), then the contiguous run
    // of confirmed parts — stop-and-wait sends part i+1 at the instant of
    // confirm i, so these milestones are the exact window boundaries.
    let mut stages: Vec<Stage> = Vec::new();
    let mut cursor = p.began_at;
    if let Some(acked_at) = p.acked_at {
        let end = acked_at.max(cursor).min(ended_at);
        stages.push(Stage {
            end,
            productive: Phase::Wakeup,
            part: None,
        });
        cursor = end;
        let mut index = 0u32;
        while let Some(&confirm) = p.confirms.get(&index) {
            let end = confirm.max(cursor).min(ended_at);
            stages.push(Stage {
                end,
                productive: Phase::Transmission,
                part: Some(index),
            });
            cursor = end;
            index += 1;
        }
    }

    // Retransmissions that belong to a realized stage split that stage's
    // window; all others (never-acked petitions, never-confirmed parts)
    // fall into the cancelled tail.
    let staged: Vec<Option<u32>> = stages.iter().map(|s| s.part).collect();
    let in_tail = |part: &Option<u32>| match part {
        None => p.acked_at.is_none(),
        Some(_) => !staged.contains(part),
    };

    let mut start = p.began_at;
    for stage in &stages {
        let probes: Vec<SimTime> = p
            .retrans
            .iter()
            .filter(|(_, part)| *part == stage.part)
            .map(|(t, _)| *t)
            .collect();
        split_stage(&mut phases, start, stage.end, stage.productive, &probes);
        start = stage.end;
    }
    // The tail: milestone chain end → close. Zero-width for clean
    // completions (the last confirm *is* the completion); for cancelled
    // transfers this is the watchdog's dead wait.
    let tail_probes: Vec<SimTime> = p
        .retrans
        .iter()
        .filter(|(_, part)| in_tail(part))
        .map(|(t, _)| *t)
        .collect();
    split_stage(
        &mut phases,
        start,
        ended_at,
        Phase::TimeoutIdle,
        &tail_probes,
    );

    TransferAttribution {
        transfer: id,
        sender: p.sender,
        to: p.to,
        bytes: p.bytes,
        enqueued_at,
        began_at: p.began_at,
        ended_at,
        ok,
        retransmissions: p.retrans.len() as u32,
        phases,
    }
}

/// Per-peer phase aggregate over many attributed transfers.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Peer label (e.g. `"SC7"`).
    pub peer: String,
    /// Transfers attributed to this peer.
    pub transfers: u64,
    /// Summed seconds per phase, indexed by [`Phase::index`].
    pub total_secs: [f64; PHASE_COUNT],
    /// One histogram per phase (one sample per transfer).
    pub histograms: [Histogram; PHASE_COUNT],
}

impl PhaseBreakdown {
    fn new(peer: String) -> Self {
        PhaseBreakdown {
            peer,
            transfers: 0,
            total_secs: [0.0; PHASE_COUNT],
            histograms: std::array::from_fn(|_| {
                Histogram::new(PHASE_HISTOGRAM_BASE, PHASE_HISTOGRAM_BUCKETS)
            }),
        }
    }

    /// Summed seconds across all phases (= summed end-to-end latency).
    pub fn end_to_end_secs(&self) -> f64 {
        self.total_secs.iter().sum()
    }

    /// The phase with the largest summed share (ties go to the earlier
    /// phase, deterministically).
    pub fn dominant_phase(&self) -> Phase {
        let mut best = Phase::ALL[0];
        for p in Phase::ALL {
            if self.total_secs[p.index()] > self.total_secs[best.index()] {
                best = p;
            }
        }
        best
    }
}

/// Groups attributions by peer label, sorted by label. `label_of` maps a
/// receiving node to its display name (for the paper's testbed:
/// `SC1`…`SC8`).
pub fn breakdown_by_peer(
    attrs: &[TransferAttribution],
    mut label_of: impl FnMut(NodeId) -> String,
) -> Vec<PhaseBreakdown> {
    let mut by_label: std::collections::BTreeMap<String, PhaseBreakdown> =
        std::collections::BTreeMap::new();
    for a in attrs {
        let label = label_of(a.to);
        let b = by_label
            .entry(label.clone())
            .or_insert_with(|| PhaseBreakdown::new(label));
        b.transfers += 1;
        for p in Phase::ALL {
            let secs = a.phase_secs(p);
            b.total_secs[p.index()] += secs;
            b.histograms[p.index()].record(secs);
        }
    }
    by_label.into_values().collect()
}

/// Folds attributions into a [`Metrics`] registry: one registered
/// histogram per `(peer, phase)` named `attr.<peer>.<phase>_seconds`,
/// plus overall `attr.all.<phase>_seconds` histograms and
/// `attr.transfers_attributed` / `attr.transfers_failed` counters.
/// Handles are resolved once per name, so folding stays allocation-free
/// per observation.
pub fn aggregate_metrics(
    attrs: &[TransferAttribution],
    mut label_of: impl FnMut(NodeId) -> String,
) -> Metrics {
    let mut m = Metrics::new();
    let attributed = m.counter_id("attr.transfers_attributed");
    let failed = m.counter_id("attr.transfers_failed");
    let mut ids: HashMap<(String, usize), netsim::metrics::HistogramId> = HashMap::new();
    for a in attrs {
        m.incr_id(attributed, 1);
        if !a.ok {
            m.incr_id(failed, 1);
        }
        let label = label_of(a.to);
        for p in Phase::ALL {
            for scope in [label.as_str(), "all"] {
                let id = *ids
                    .entry((scope.to_string(), p.index()))
                    .or_insert_with(|| {
                        m.histogram_id(
                            &format!("attr.{scope}.{}_seconds", p.label()),
                            PHASE_HISTOGRAM_BASE,
                            PHASE_HISTOGRAM_BUCKETS,
                        )
                    });
                m.record_id(id, a.phase_secs(p));
            }
        }
    }
    m
}

/// Renders the per-peer phase table as CSV: one row per `(peer, phase)`,
/// sorted by peer label then phase order. Deterministic for a given input.
pub fn phase_table_csv(breakdowns: &[PhaseBreakdown]) -> String {
    let mut out = String::from("peer,phase,transfers,total_s,mean_s,p50_s,p95_s,p99_s,share\n");
    for b in breakdowns {
        let e2e = b.end_to_end_secs();
        for p in Phase::ALL {
            let h = &b.histograms[p.index()];
            let total = b.total_secs[p.index()];
            let share = if e2e > 0.0 { total / e2e } else { 0.0 };
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{},{},{},{:.4}",
                b.peer,
                p.label(),
                b.transfers,
                total,
                h.stat().mean(),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.95),
                h.quantile_upper_bound(0.99),
                share,
            );
        }
    }
    out
}

/// Renders the per-peer phase table as an aligned text report, one line
/// per peer with its dominant phase called out.
pub fn render_phase_table(breakdowns: &[PhaseBreakdown]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>5}  {:>12} {:>12} {:>12} {:>13} {:>12}  dominant",
        "peer", "n", "queue_s", "wakeup_s", "xmit_s", "stall_s", "idle_s"
    );
    for b in breakdowns {
        let _ = writeln!(
            out,
            "{:<6} {:>5}  {:>12.3} {:>12.3} {:>12.3} {:>13.3} {:>12.3}  {}",
            b.peer,
            b.transfers,
            b.total_secs[Phase::BrokerQueue.index()],
            b.total_secs[Phase::Wakeup.index()],
            b.total_secs[Phase::Transmission.index()],
            b.total_secs[Phase::RetransStall.index()],
            b.total_secs[Phase::TimeoutIdle.index()],
            b.dominant_phase().label(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::trace::Trace;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn rec(tr: &mut Trace, secs: f64, kind: TraceEventKind) {
        tr.record(t(secs), NodeId(0), kind);
    }

    /// One clean two-part transfer with a queued start and one part-1
    /// retransmission.
    fn sample_trace() -> Trace {
        let mut tr = Trace::with_capacity(64);
        rec(
            &mut tr,
            2.0,
            TraceEventKind::TransferQueued {
                transfer: 42,
                enqueued_at: t(1.0),
            },
        );
        rec(
            &mut tr,
            2.0,
            TraceEventKind::PetitionSent {
                transfer: 42,
                to: NodeId(3),
                bytes: 200,
                parts: 2,
            },
        );
        rec(
            &mut tr,
            5.0,
            TraceEventKind::PetitionAcked {
                transfer: 42,
                accepted: true,
            },
        );
        rec(
            &mut tr,
            6.0,
            TraceEventKind::PartConfirmed {
                transfer: 42,
                index: 0,
                accepted: true,
            },
        );
        // Part 1 goes silent: probe fires at 8 s, second probe at 9 s,
        // confirm lands at 9.5 s.
        rec(
            &mut tr,
            8.0,
            TraceEventKind::Retransmission {
                transfer: 42,
                part: Some(1),
                attempt: 2,
            },
        );
        rec(
            &mut tr,
            9.0,
            TraceEventKind::Retransmission {
                transfer: 42,
                part: Some(1),
                attempt: 3,
            },
        );
        rec(
            &mut tr,
            9.5,
            TraceEventKind::PartConfirmed {
                transfer: 42,
                index: 1,
                accepted: true,
            },
        );
        rec(
            &mut tr,
            9.5,
            TraceEventKind::TransferCompleted {
                transfer: 42,
                ok: true,
            },
        );
        tr
    }

    #[test]
    fn phases_partition_the_timeline() {
        let attrs = attribute_trace(&sample_trace());
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.transfer, 42);
        assert_eq!(a.to, NodeId(3));
        assert!(a.ok);
        assert_eq!(a.retransmissions, 2);
        // broker_queue: 1→2 s. wakeup: 2→5. transmission: 5→6 (part 0)
        // plus 9→9.5 (part 1 after last probe). timeout_idle: 6→8.
        // retrans_stall: 8→9.
        assert_eq!(a.phase(Phase::BrokerQueue), SimDuration::from_secs(1));
        assert_eq!(a.phase(Phase::Wakeup), SimDuration::from_secs(3));
        assert_eq!(a.phase(Phase::Transmission), SimDuration::from_millis(1500));
        assert_eq!(a.phase(Phase::TimeoutIdle), SimDuration::from_secs(2));
        assert_eq!(a.phase(Phase::RetransStall), SimDuration::from_secs(1));
        // Exact sum, in integer nanoseconds.
        let sum: SimDuration = Phase::ALL.iter().map(|&p| a.phase(p)).sum();
        assert_eq!(sum, a.end_to_end());
        assert_eq!(a.end_to_end(), SimDuration::from_millis(8500));
        assert_eq!(a.dominant_phase(), Phase::Wakeup);
    }

    #[test]
    fn open_transfers_are_skipped() {
        let mut tr = Trace::with_capacity(8);
        rec(
            &mut tr,
            1.0,
            TraceEventKind::PetitionSent {
                transfer: 7,
                to: NodeId(2),
                bytes: 10,
                parts: 1,
            },
        );
        assert!(attribute_trace(&tr).is_empty());
    }

    #[test]
    fn cancelled_transfer_tail_is_timeout_idle() {
        let mut tr = Trace::with_capacity(16);
        rec(
            &mut tr,
            1.0,
            TraceEventKind::PetitionSent {
                transfer: 9,
                to: NodeId(2),
                bytes: 10,
                parts: 1,
            },
        );
        // Never acked; one petition retransmission at 4 s; watchdog kills
        // it at 10 s.
        rec(
            &mut tr,
            4.0,
            TraceEventKind::Retransmission {
                transfer: 9,
                part: None,
                attempt: 2,
            },
        );
        rec(
            &mut tr,
            10.0,
            TraceEventKind::TransferCompleted {
                transfer: 9,
                ok: false,
            },
        );
        let attrs = attribute_trace(&tr);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert!(!a.ok);
        // 1→4 idle (before first probe), 4→4 stall (single probe),
        // 4→10 idle again (tail productive phase is timeout_idle).
        assert_eq!(a.phase(Phase::TimeoutIdle), SimDuration::from_secs(9));
        assert_eq!(a.phase(Phase::RetransStall), SimDuration::ZERO);
        assert_eq!(a.phase(Phase::Wakeup), SimDuration::ZERO);
        let sum: SimDuration = Phase::ALL.iter().map(|&p| a.phase(p)).sum();
        assert_eq!(sum, a.end_to_end());
        assert_eq!(a.dominant_phase(), Phase::TimeoutIdle);
    }

    #[test]
    fn breakdown_and_exports_are_deterministic() {
        let attrs = attribute_trace(&sample_trace());
        let breakdowns = breakdown_by_peer(&attrs, |n| format!("n{}", n.0));
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.peer, "n3");
        assert_eq!(b.transfers, 1);
        assert!((b.end_to_end_secs() - 8.5).abs() < 1e-9);
        assert_eq!(b.dominant_phase(), Phase::Wakeup);

        let csv = phase_table_csv(&breakdowns);
        assert_eq!(csv, phase_table_csv(&breakdowns), "deterministic");
        assert!(csv.starts_with("peer,phase,transfers,"));
        assert_eq!(csv.lines().count(), 1 + PHASE_COUNT);
        assert!(csv.contains("n3,wakeup,1,3.000000"), "{csv}");

        let table = render_phase_table(&breakdowns);
        assert!(table.contains("wakeup"), "{table}");

        let m = aggregate_metrics(&attrs, |n| format!("n{}", n.0));
        assert_eq!(m.counter("attr.transfers_attributed"), 1);
        assert_eq!(m.counter("attr.transfers_failed"), 0);
        let h = m.histogram("attr.n3.wakeup_seconds").expect("registered");
        assert_eq!(h.count(), 1);
        assert_eq!(h.rejected(), 0);
        assert!(m.histogram("attr.all.wakeup_seconds").is_some());
        let prom = m.render_prometheus("psim");
        assert_eq!(prom, m.render_prometheus("psim"), "deterministic");
        assert!(
            prom.contains("psim_attr_n3_wakeup_seconds_bucket"),
            "{prom}"
        );
    }
}
