//! Property-based tests for the experiment harness.

use proptest::prelude::*;
use workloads::report::{argmax, argmin, spearman, FigureReport, SeriesRow};
use workloads::runner::{run_replications, SeriesAggregate};

proptest! {
    /// Aggregating rows one-by-one equals bulk aggregation; means lie
    /// inside the per-label [min, max] envelope.
    #[test]
    fn aggregation_is_consistent(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 4), 1..30,
    )) {
        let bulk = SeriesAggregate::from_replications(&rows);
        let mut incremental = SeriesAggregate::new(4);
        for r in &rows {
            incremental.add(r);
        }
        prop_assert_eq!(bulk.means(), incremental.means());
        for (i, mean) in bulk.means().into_iter().enumerate() {
            let lo = rows.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min);
            let hi = rows.iter().map(|r| r[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    /// The parallel runner preserves order and purity for arbitrary seeds.
    #[test]
    fn runner_order_and_purity(seeds in prop::collection::vec(any::<u64>(), 0..24)) {
        let results = run_replications(&seeds, |s| s.wrapping_mul(0x9E3779B97F4A7C15));
        prop_assert_eq!(results.len(), seeds.len());
        for (r, s) in results.iter().zip(&seeds) {
            prop_assert_eq!(*r, s.wrapping_mul(0x9E3779B97F4A7C15));
        }
    }

    /// Spearman is always in [-1, 1], symmetric, and 1 for a series against
    /// itself (when not constant).
    #[test]
    fn spearman_properties(values in prop::collection::vec(-1e3f64..1e3, 2..30)) {
        let other: Vec<f64> = values.iter().rev().copied().collect();
        let rho = spearman(&values, &other);
        prop_assert!((-1.0..=1.0).contains(&rho), "rho {rho}");
        let sym = spearman(&other, &values);
        prop_assert!((rho - sym).abs() < 1e-9);
        let distinct = values.windows(2).any(|w| w[0] != w[1]);
        if distinct {
            let self_rho = spearman(&values, &values);
            prop_assert!((self_rho - 1.0).abs() < 1e-9);
        }
    }

    /// argmax/argmin point at actual extremes.
    #[test]
    fn arg_extremes_correct(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let imax = argmax(&values).unwrap();
        let imin = argmin(&values).unwrap();
        for v in &values {
            prop_assert!(values[imax] >= *v);
            prop_assert!(values[imin] <= *v);
        }
    }

    /// Reports render and round-trip their own shape through CSV.
    #[test]
    fn report_rendering_total(values in prop::collection::vec(0.0f64..1e4, 1..8)) {
        let labels: Vec<String> = (0..values.len()).map(|i| format!("L{i}")).collect();
        let mut f = FigureReport::new("T", "title", "unit", labels);
        f.push(SeriesRow::new("a", values.clone()));
        f.push(SeriesRow::with_sd("b", values.clone(), vec![0.1; values.len()]));
        let rendered = f.render();
        prop_assert!(rendered.contains("T"));
        prop_assert!(rendered.contains("L0"));
        let csv = f.to_csv();
        prop_assert_eq!(csv.lines().count(), 3);
        for line in csv.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), values.len() + 1);
        }
    }
}
