//! Property-based tests for the experiment harness.

use netsim::time::SimDuration;
use overlay::broker::{BrokerCommand, RetryPolicy, TargetSpec};
use proptest::prelude::*;
use workloads::attribution::{attribute_trace, breakdown_by_peer, phase_table_csv};
use workloads::multiregion::{run_multiregion, MultiRegionConfig};
use workloads::report::{argmax, argmin, metrics_snapshot_json, spearman, FigureReport, SeriesRow};
use workloads::runner::{run_replications, run_traced, SeriesAggregate};
use workloads::scenario::{run_scenario, ScenarioConfig};
use workloads::spec::MB;

proptest! {
    /// Aggregating rows one-by-one equals bulk aggregation; means lie
    /// inside the per-label [min, max] envelope.
    #[test]
    fn aggregation_is_consistent(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 4), 1..30,
    )) {
        let bulk = SeriesAggregate::from_replications(&rows);
        let mut incremental = SeriesAggregate::new(4);
        for r in &rows {
            incremental.add(r);
        }
        prop_assert_eq!(bulk.means(), incremental.means());
        for (i, mean) in bulk.means().into_iter().enumerate() {
            let lo = rows.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min);
            let hi = rows.iter().map(|r| r[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    /// The parallel runner preserves order and purity for arbitrary seeds.
    #[test]
    fn runner_order_and_purity(seeds in prop::collection::vec(any::<u64>(), 0..24)) {
        let results = run_replications(&seeds, |s| s.wrapping_mul(0x9E3779B97F4A7C15));
        prop_assert_eq!(results.len(), seeds.len());
        for (r, s) in results.iter().zip(&seeds) {
            prop_assert_eq!(*r, s.wrapping_mul(0x9E3779B97F4A7C15));
        }
    }

    /// Spearman is always in [-1, 1], symmetric, and 1 for a series against
    /// itself (when not constant).
    #[test]
    fn spearman_properties(values in prop::collection::vec(-1e3f64..1e3, 2..30)) {
        let other: Vec<f64> = values.iter().rev().copied().collect();
        let rho = spearman(&values, &other);
        prop_assert!((-1.0..=1.0).contains(&rho), "rho {rho}");
        let sym = spearman(&other, &values);
        prop_assert!((rho - sym).abs() < 1e-9);
        let distinct = values.windows(2).any(|w| w[0] != w[1]);
        if distinct {
            let self_rho = spearman(&values, &values);
            prop_assert!((self_rho - 1.0).abs() < 1e-9);
        }
    }

    /// argmax/argmin point at actual extremes.
    #[test]
    fn arg_extremes_correct(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let imax = argmax(&values).unwrap();
        let imin = argmin(&values).unwrap();
        for v in &values {
            prop_assert!(values[imax] >= *v);
            prop_assert!(values[imin] <= *v);
        }
    }

    /// Sweeping the transport drop probability: every transfer the sender
    /// records as completed keeps its stop-and-wait invariants, no matter
    /// how lossy the network was.
    #[test]
    fn lossy_completed_transfers_keep_invariants(
        drop_p in 0.0f64..0.30,
        seed in any::<u64>(),
    ) {
        // Keep the run alive past the sender's broker report so in-flight
        // receiver-side messages land; bound it with the horizon instead.
        let cfg = ScenarioConfig::builder()
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 8 * MB,
                    num_parts: 8,
                    label: "prop".into(),
                },
            )
            .drop_probability(drop_p)
            .retry(RetryPolicy {
                timeout: SimDuration::from_secs(60),
                max_attempts: 8,
            })
            .stop_when_idle(false)
            .horizon(SimDuration::from_mins(120))
            .build()
            .expect("valid scenario");

        let result = run_scenario(&cfg, seed);
        for t in result
            .log
            .transfers
            .iter()
            .filter(|t| t.completed_at.is_some() && !t.cancelled)
        {
            for p in &t.parts {
                let confirmed = p.confirmed_at.expect("completed transfer confirms every part");
                prop_assert!(
                    confirmed >= p.sent_at,
                    "part {} confirmed {:?} before send {:?} (drop_p {drop_p}, seed {seed})",
                    p.index, confirmed, p.sent_at,
                );
            }
            for w in t.parts.windows(2) {
                prop_assert!(
                    w[1].index > w[0].index,
                    "part indices not strictly increasing: {} then {}",
                    w[0].index, w[1].index,
                );
            }
            let throughput = t
                .throughput_bytes_per_sec()
                .expect("completed transfer has a throughput");
            prop_assert!(
                throughput.is_finite() && throughput > 0.0,
                "non-finite throughput {throughput}",
            );
            prop_assert_eq!(
                t.receiver_bytes,
                Some(t.file_size),
                "receiver tally disagrees with file size (drop_p {}, seed {})",
                drop_p, seed,
            );
        }
    }

    /// Reports render and round-trip their own shape through CSV.
    #[test]
    fn report_rendering_total(values in prop::collection::vec(0.0f64..1e4, 1..8)) {
        let labels: Vec<String> = (0..values.len()).map(|i| format!("L{i}")).collect();
        let mut f = FigureReport::new("T", "title", "unit", labels);
        f.push(SeriesRow::new("a", values.clone()));
        f.push(SeriesRow::with_sd("b", values.clone(), vec![0.1; values.len()]));
        let rendered = f.render();
        prop_assert!(rendered.contains("T"));
        prop_assert!(rendered.contains("L0"));
        let csv = f.to_csv();
        prop_assert_eq!(csv.lines().count(), 3);
        for line in csv.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), values.len() + 1);
        }
    }
}

proptest! {
    /// Sweep campaigns are worker-count invariant: the CSV and JSON a
    /// campaign emits are byte-identical whether one worker runs every
    /// cell or four workers steal them — parallelism never changes
    /// numbers, only wall-clock time.
    #[test]
    fn sweep_output_is_worker_count_invariant(
        campaign_seed in any::<u64>(),
        size_mb in 2u64..5,
    ) {
        use overlay::selector::ModelKind;
        use workloads::sweep::{
            run_campaign, CellWorkload, SeedScheme, SweepSpec, TestbedAxis, ACCEPT_ALL,
        };
        let spec = SweepSpec {
            name: "prop-grid".into(),
            workload: CellWorkload::Distribute {
                size_bytes: size_mb * MB,
            },
            models: vec![ModelKind::Blind],
            parts: vec![1, 4],
            drop_probabilities: vec![0.0],
            testbeds: vec![TestbedAxis::Measurement],
            accept_profiles: vec![ACCEPT_ALL],
            brokers: vec![1],
            gossip_staleness: vec![0.0],
            piece_policies: vec![workloads::streaming::PiecePolicy::Sequential],
            windows: vec![1],
            uploads: vec![workloads::streaming::UploadProfile::Home],
            seeds: SeedScheme::Derived {
                campaign_seed,
                replications: 2,
            },
            warmup: SimDuration::from_secs(60),
        };
        let serial = run_campaign(&spec, 1).expect("valid grid");
        let parallel = run_campaign(&spec, 4).expect("valid grid");
        prop_assert_eq!(serial.to_csv(), parallel.to_csv());
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }

    /// The sharded engine is worker-count invariant on *arbitrary*
    /// multi-region scenarios: the traced event stream, the metrics
    /// snapshot, and the per-peer attribution CSV are byte-identical
    /// whether 1, 2, or 4 threads drive the shards. This is the
    /// headline determinism guarantee of the parallel engine, checked
    /// over random region counts, fan-outs, delays, and seeds rather
    /// than one hand-picked topology.
    #[test]
    fn multiregion_outputs_are_worker_count_invariant(
        regions in 2usize..5,
        clients in 2usize..5,
        inter_owd_ms in 20.0f64..80.0,
        file_mb in 1u64..3,
        seed in any::<u64>(),
    ) {
        let base = MultiRegionConfig {
            regions,
            clients_per_region: clients,
            inter_owd_ms,
            file_bytes: file_mb * MB,
            rounds: 1,
            horizon: SimDuration::from_secs(300),
            trace_capacity: Some(1 << 14),
            ..MultiRegionConfig::default()
        };
        let artifacts: Vec<(String, String, String, u64)> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = MultiRegionConfig { shard_workers: w, ..base.clone() };
                let run = run_multiregion(&cfg, seed).expect("generated config is valid");
                let names = run.node_names.clone();
                let rows = breakdown_by_peer(
                    &attribute_trace(&run.trace),
                    |node| names[node.index()].to_string(),
                );
                (
                    run.trace.to_jsonl(),
                    metrics_snapshot_json(&run.metrics),
                    phase_table_csv(&rows),
                    run.events_processed,
                )
            })
            .collect();
        let (jsonl, metrics, csv, events) = &artifacts[0];
        prop_assert!(!jsonl.is_empty(), "trace must not be empty (seed {seed})");
        for (w, (j, m, c, e)) in [2usize, 4].iter().zip(&artifacts[1..]) {
            prop_assert_eq!(j, jsonl, "trace diverged at {} workers (seed {})", w, seed);
            prop_assert_eq!(m, metrics, "metrics diverged at {} workers (seed {})", w, seed);
            prop_assert_eq!(c, csv, "attribution diverged at {} workers (seed {})", w, seed);
            prop_assert_eq!(e, events, "event count diverged at {} workers (seed {})", w, seed);
        }
    }

    /// The windowed time-series artifact is worker-count invariant on
    /// arbitrary multi-region scenarios: the CSV and JSONL a recorder
    /// emits are byte-identical whether 1, 2, or 4 threads drive the
    /// shards. Sampling happens at barrier rounds, whose schedule is a
    /// pure function of shard promises — never of thread timing.
    #[test]
    fn multiregion_series_is_worker_count_invariant(
        regions in 2usize..5,
        clients in 2usize..4,
        inter_owd_ms in 20.0f64..80.0,
        seed in any::<u64>(),
    ) {
        let base = MultiRegionConfig {
            regions,
            clients_per_region: clients,
            inter_owd_ms,
            rounds: 1,
            horizon: SimDuration::from_secs(300),
            trace_capacity: None,
            series_interval: Some(SimDuration::from_secs(30)),
            ..MultiRegionConfig::default()
        };
        let exports: Vec<(String, String)> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = MultiRegionConfig { shard_workers: w, ..base.clone() };
                let run = run_multiregion(&cfg, seed).expect("generated config is valid");
                let series = run.series.expect("series_interval was set");
                (series.to_csv(), series.to_jsonl())
            })
            .collect();
        let (csv, jsonl) = &exports[0];
        prop_assert!(csv.lines().count() > 1, "series must have rows (seed {seed})");
        for (w, (c, j)) in [2usize, 4].iter().zip(&exports[1..]) {
            prop_assert_eq!(c, csv, "series CSV diverged at {} workers (seed {})", w, seed);
            prop_assert_eq!(j, jsonl, "series JSONL diverged at {} workers (seed {})", w, seed);
        }
    }

    /// The same invariance over random churn scenarios: population curves,
    /// swap-dynamics rates, and registry memory accounting all ride the
    /// same barrier-sampled recorder, so the whole artifact must be
    /// byte-identical at any worker count.
    #[test]
    fn churn_series_is_worker_count_invariant(
        regions in 2usize..5,
        peers in 12usize..32,
        seed in any::<u64>(),
    ) {
        use workloads::churn::{run_churn, ChurnConfig};
        use workloads::synthtopo::SynthTopoConfig;
        let base = ChurnConfig {
            topo: SynthTopoConfig {
                regions,
                peers,
                ..SynthTopoConfig::default()
            },
            num_shards: regions,
            rounds: 1,
            horizon: SimDuration::from_secs(900),
            trace_capacity: None,
            series_interval: Some(SimDuration::from_secs(60)),
            ..ChurnConfig::default()
        };
        let exports: Vec<(String, String)> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = ChurnConfig { shard_workers: w, ..base.clone() };
                let run = run_churn(&cfg, seed).expect("generated config is valid");
                let series = run.series.expect("series_interval was set");
                (series.to_csv(), series.to_jsonl())
            })
            .collect();
        let (csv, jsonl) = &exports[0];
        prop_assert!(csv.lines().count() > 1, "series must have rows (seed {seed})");
        for (w, (c, j)) in [2usize, 4].iter().zip(&exports[1..]) {
            prop_assert_eq!(c, csv, "series CSV diverged at {} workers (seed {})", w, seed);
            prop_assert_eq!(j, jsonl, "series JSONL diverged at {} workers (seed {})", w, seed);
        }
    }

    /// The streaming workload is worker-count invariant on arbitrary
    /// valid configs: the full stdout artifact (trace JSONL + metrics
    /// snapshot + summary JSON) is byte-identical whether 1, 2, or 4
    /// threads drive the shards — playback clocks and rebuffer
    /// accounting ride virtual time, never thread timing.
    #[test]
    fn streaming_artifact_is_worker_count_invariant(
        regions in 2usize..5,
        viewers in 8usize..20,
        policy_ix in 0usize..3,
        window in 1u32..6,
        seed in any::<u64>(),
    ) {
        use overlay::streaming::PiecePolicy;
        use workloads::harness::stdout_artifact;
        use workloads::streaming::{run_streaming, summary_json, StreamingConfig};
        use workloads::synthtopo::SynthTopoConfig;
        let base = StreamingConfig {
            topo: SynthTopoConfig {
                regions,
                peers: viewers,
                ..SynthTopoConfig::default()
            },
            policy: PiecePolicy::ALL[policy_ix],
            window,
            num_shards: regions,
            total_pieces: 16,
            horizon: SimDuration::from_secs(420),
            trace_capacity: Some(1 << 14),
            ..StreamingConfig::default()
        };
        let artifacts: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = StreamingConfig { shard_workers: w, ..base.clone() };
                let run = run_streaming(&cfg, seed).expect("generated config is valid");
                let mut tail = summary_json(&cfg, seed, &run);
                tail.push('\n');
                stdout_artifact(&run.trace, &run.metrics, &tail)
            })
            .collect();
        prop_assert!(!artifacts[0].is_empty(), "artifact must not be empty (seed {seed})");
        for (w, a) in [2usize, 4].iter().zip(&artifacts[1..]) {
            prop_assert_eq!(a, &artifacts[0], "artifact diverged at {} workers (seed {})", w, seed);
        }
    }

    /// Latency attribution partitions the timeline: under an arbitrary
    /// drop probability, every attributed transfer's five phases sum
    /// *exactly* (integer nanoseconds) to its end-to-end latency.
    #[test]
    fn attribution_phases_partition_under_loss(
        drop_p in 0.0f64..0.30,
        seed in any::<u64>(),
    ) {
        let cfg = ScenarioConfig::builder()
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 8 * MB,
                    num_parts: 8,
                    label: "attr-prop".into(),
                },
            )
            .drop_probability(drop_p)
            .retry(RetryPolicy {
                timeout: SimDuration::from_secs(60),
                max_attempts: 8,
            })
            .stop_when_idle(false)
            .horizon(SimDuration::from_mins(120))
            .build()
            .expect("valid scenario");

        let run = run_traced(&cfg, seed);
        prop_assert_eq!(run.result.trace.dropped(), 0);
        for a in attribute_trace(&run.result.trace) {
            let sum: SimDuration = a.phases.iter().copied().sum();
            prop_assert_eq!(
                sum,
                a.end_to_end(),
                "phase residue on {:#x} (drop_p {}, seed {})",
                a.transfer, drop_p, seed,
            );
            for p in &a.phases {
                prop_assert!(*p <= a.end_to_end());
            }
        }
    }
}
