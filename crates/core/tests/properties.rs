//! Property-based tests for the selection models' invariants.

use netsim::node::NodeId;
use netsim::time::SimTime;
use overlay::id::{IdGenerator, PeerId};
use overlay::selector::{
    CandidateView, InteractionHistory, PeerSelector, Purpose, SelectionRequest,
};
use overlay::stats::StatsSnapshot;
use peer_selection::economic::EconomicModel;
use peer_selection::evaluator::{DataEvaluatorModel, WeightProfile};
use peer_selection::model::{min_max_normalize, Scored, ScoringModel};
use peer_selection::preference::UserPreferenceModel;
use proptest::prelude::*;

/// Arbitrary-ish candidate from a tuple of knobs.
#[allow(clippy::too_many_arguments)]
fn candidate(
    i: usize,
    cpu: f64,
    msg_pct: Option<f64>,
    outbox: f64,
    pending: f64,
    thr: Option<f64>,
    wake: Option<f64>,
    queued: u64,
) -> CandidateView {
    let mut g = IdGenerator::new(1000 + i as u64);
    let mut snapshot = StatsSnapshot::empty(cpu);
    snapshot.msg_success_total = msg_pct;
    snapshot.outbox_now = outbox;
    snapshot.pending_transfers = pending;
    let mut history = InteractionHistory::empty();
    if let Some(t) = thr {
        history.observe_throughput(t, 1.0);
    }
    if let Some(w) = wake {
        history.observe_petition(w, 1.0);
    }
    history.queued_bytes = queued;
    CandidateView {
        peer: PeerId::generate(&mut g),
        node: NodeId(i as u32),
        name: format!("peer{i}").into(),
        cpu_gops: cpu,
        snapshot,
        history,
    }
}

prop_compose! {
    fn arb_candidate(i: usize)(
        cpu in 0.1f64..4.0,
        msg in prop::option::of(0.0f64..100.0),
        outbox in 0.0f64..20.0,
        pending in 0.0f64..5.0,
        thr in prop::option::of(10_000.0f64..5e6),
        wake in prop::option::of(0.01f64..30.0),
        queued in 0u64..100_000_000,
    ) -> CandidateView {
        candidate(i, cpu, msg, outbox, pending, thr, wake, queued)
    }
}

fn arb_candidates(n: usize) -> impl Strategy<Value = Vec<CandidateView>> {
    (0..n).map(arb_candidate).collect::<Vec<_>>()
}

proptest! {
    /// The evaluator's scores are always within [0, 1] and finite.
    #[test]
    fn evaluator_scores_bounded(cands in arb_candidates(6), bytes in 1u64..100_000_000) {
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes },
            candidates: &cands,
        };
        let scores = DataEvaluatorModel::same_priority().scores(&req);
        prop_assert_eq!(scores.len(), cands.len());
        for s in scores {
            prop_assert!(s.is_finite());
            prop_assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    /// Scaling all weights by a positive constant never changes the scores.
    #[test]
    fn evaluator_invariant_under_weight_scaling(
        cands in arb_candidates(4),
        scale in 0.001f64..1000.0,
    ) {
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: &cands,
        };
        let base = WeightProfile::same_priority();
        let mut scaled = WeightProfile::empty();
        for &(c, w) in base.weights() {
            scaled = scaled.with(c, w * scale);
        }
        let s1 = DataEvaluatorModel::with_profile("a", base).scores(&req);
        let s2 = DataEvaluatorModel::with_profile("b", scaled).scores(&req);
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Economic cost is monotone in transfer size for every candidate.
    #[test]
    fn economic_cost_monotone_in_bytes(
        cands in arb_candidates(4),
        b1 in 1u64..100_000_000,
        b2 in 1u64..100_000_000,
    ) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let model = EconomicModel::new();
        for i in 0..cands.len() {
            let rl = SelectionRequest {
                now: SimTime::ZERO,
                purpose: Purpose::FileTransfer { bytes: lo },
                candidates: &cands,
            };
            let rh = SelectionRequest {
                now: SimTime::ZERO,
                purpose: Purpose::FileTransfer { bytes: hi },
                candidates: &cands,
            };
            prop_assert!(model.cost(&rl, i) <= model.cost(&rh, i) + 1e-9);
        }
    }

    /// Every scored model picks a valid index (or None only when the
    /// candidate set is empty).
    #[test]
    fn selectors_pick_valid_indices(cands in arb_candidates(5), bytes in 1u64..50_000_000) {
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes },
            candidates: &cands,
        };
        let mut models: Vec<Box<dyn PeerSelector>> = vec![
            Box::new(Scored::new(EconomicModel::new())),
            Box::new(Scored::new(DataEvaluatorModel::same_priority())),
            Box::new(Scored::new(UserPreferenceModel::quick_peer())),
        ];
        for m in &mut models {
            let pick = m.select(&req);
            prop_assert!(pick.is_some(), "{} refused a non-empty set", m.name());
            prop_assert!(pick.unwrap() < cands.len());
        }
        let empty = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes },
            candidates: &[],
        };
        for m in &mut models {
            prop_assert_eq!(m.select(&empty), None);
        }
    }

    /// Selection is deterministic: the same request yields the same pick.
    #[test]
    fn selection_is_deterministic(cands in arb_candidates(6)) {
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: &cands,
        };
        let mut a = Scored::new(EconomicModel::new());
        let mut b = Scored::new(EconomicModel::new());
        prop_assert_eq!(a.select(&req), b.select(&req));
    }

    /// min-max normalization maps into [0, 1] and preserves order.
    #[test]
    fn normalize_preserves_order(mut values in prop::collection::vec(-1e9f64..1e9, 2..50)) {
        let original = values.clone();
        min_max_normalize(&mut values);
        for v in &values {
            prop_assert!((0.0..=1.0).contains(v));
        }
        for i in 0..original.len() {
            for j in 0..original.len() {
                if original[i] < original[j] {
                    prop_assert!(values[i] <= values[j]);
                }
            }
        }
    }

    /// Quick-peer is invariant to current-state fields: zeroing queues and
    /// reservations never changes its choice.
    #[test]
    fn quick_peer_ignores_live_state(cands in arb_candidates(5)) {
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: &cands,
        };
        let mut m = Scored::new(UserPreferenceModel::quick_peer());
        let before = m.select(&req);
        let mut stripped = cands.clone();
        for c in &mut stripped {
            c.history.queued_bytes = 0;
            c.history.busy_until = SimTime::ZERO;
            c.snapshot.outbox_now = 0.0;
            c.snapshot.inbox_now = 0.0;
            c.snapshot.pending_transfers = 0.0;
        }
        let req2 = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: &stripped,
        };
        prop_assert_eq!(m.select(&req2), before);
    }
}
