//! The scoring framework shared by all selection models.
//!
//! Every model in this crate reduces to "assign each candidate a score,
//! higher is better, pick the argmax". Expressing that as a separate
//! [`ScoringModel`] trait (rather than implementing
//! [`overlay::selector::PeerSelector`] directly) buys three things:
//!
//! * models compose — [`crate::composite`] mixes scores from several models;
//! * ties are broken uniformly (by advertised CPU speed, as the paper's
//!   scheduling model prescribes, then by node id for determinism);
//! * score vectors are inspectable in tests and reports.

use overlay::selector::{PeerSelector, SelectionOutcome, SelectionRequest};

/// A model that scores every candidate (higher = better peer).
pub trait ScoringModel: Send {
    /// Model name for reports.
    fn name(&self) -> &str;

    /// Scores for each candidate, parallel to `req.candidates`.
    /// Non-finite scores mark a candidate as ineligible.
    fn scores(&mut self, req: &SelectionRequest<'_>) -> Vec<f64>;

    /// Outcome feedback (default: ignored).
    fn on_outcome(&mut self, _outcome: &SelectionOutcome) {}
}

/// Picks the argmax of a score vector with the standard tie-breaks:
/// higher advertised CPU first, then lower node id.
pub fn argmax_with_tiebreak(req: &SelectionRequest<'_>, scores: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &s) in scores.iter().enumerate() {
        if !s.is_finite() {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) => {
                let sb = scores[b];
                let better = s > sb
                    || (s == sb && {
                        let (ci, cb) = (&req.candidates[i], &req.candidates[b]);
                        ci.cpu_gops > cb.cpu_gops
                            || (ci.cpu_gops == cb.cpu_gops && ci.node < cb.node)
                    });
                if better {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Adapter turning any [`ScoringModel`] into a [`PeerSelector`].
pub struct Scored<M: ScoringModel> {
    model: M,
}

impl<M: ScoringModel> Scored<M> {
    /// Wraps a scoring model.
    pub fn new(model: M) -> Self {
        Scored { model }
    }

    /// Access to the wrapped model.
    pub fn inner(&self) -> &M {
        &self.model
    }
}

impl<M: ScoringModel> PeerSelector for Scored<M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        if req.candidates.is_empty() {
            return None;
        }
        let scores = self.model.scores(req);
        debug_assert_eq!(scores.len(), req.candidates.len());
        argmax_with_tiebreak(req, &scores)
    }

    fn candidate_costs(&mut self, req: &SelectionRequest<'_>) -> Option<Vec<f64>> {
        // Scores are higher-is-better; the observability layer reports
        // costs (lower-is-better), so negate. Non-finite stays non-finite
        // (ineligible either way).
        Some(self.model.scores(req).into_iter().map(|s| -s).collect())
    }

    fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        self.model.on_outcome(outcome);
    }
}

/// Min-max normalizes a slice into `[0, 1]` in place; constant slices map
/// to 0.5 (all equally good). Non-finite entries are left untouched.
pub fn min_max_normalize(values: &mut [f64]) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return;
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    for v in values.iter_mut() {
        if v.is_finite() {
            *v = if span <= 0.0 { 0.5 } else { (*v - lo) / span };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::node::NodeId;
    use netsim::time::SimTime;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, Purpose};
    use overlay::stats::StatsSnapshot;

    pub(crate) fn mk_candidates(n: usize) -> Vec<CandidateView> {
        let mut g = IdGenerator::new(77);
        (0..n)
            .map(|i| CandidateView {
                peer: PeerId::generate(&mut g),
                node: NodeId(i as u32),
                name: format!("peer{i}").into(),
                cpu_gops: 1.0 + i as f64 * 0.1,
                snapshot: StatsSnapshot::empty(1.0 + i as f64 * 0.1),
                history: InteractionHistory::empty(),
            })
            .collect()
    }

    struct Fixed(Vec<f64>);
    impl ScoringModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn scores(&mut self, _req: &SelectionRequest<'_>) -> Vec<f64> {
            self.0.clone()
        }
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 },
            candidates: c,
        }
    }

    #[test]
    fn argmax_picks_highest() {
        let c = mk_candidates(4);
        let mut s = Scored::new(Fixed(vec![0.1, 0.9, 0.3, 0.2]));
        assert_eq!(s.select(&req(&c)), Some(1));
        assert_eq!(s.name(), "fixed");
    }

    #[test]
    fn ties_break_by_cpu_speed() {
        let c = mk_candidates(3); // cpu: 1.0, 1.1, 1.2
        let mut s = Scored::new(Fixed(vec![0.5, 0.5, 0.5]));
        assert_eq!(s.select(&req(&c)), Some(2), "fastest CPU wins ties");
    }

    #[test]
    fn equal_cpu_ties_break_by_node_id() {
        let mut c = mk_candidates(3);
        for cand in &mut c {
            cand.cpu_gops = 1.0;
        }
        let mut s = Scored::new(Fixed(vec![0.5, 0.5, 0.5]));
        assert_eq!(s.select(&req(&c)), Some(0));
    }

    #[test]
    fn non_finite_scores_are_ineligible() {
        let c = mk_candidates(3);
        let mut s = Scored::new(Fixed(vec![f64::NAN, 0.1, f64::NEG_INFINITY]));
        assert_eq!(s.select(&req(&c)), Some(1));
        let mut all_bad = Scored::new(Fixed(vec![f64::NAN, f64::NAN, f64::NAN]));
        assert_eq!(all_bad.select(&req(&c)), None);
    }

    #[test]
    fn scored_exposes_candidate_costs() {
        let c = mk_candidates(3);
        let mut s = Scored::new(Fixed(vec![0.1, 0.9, f64::NAN]));
        let costs = s.candidate_costs(&req(&c)).unwrap();
        assert_eq!(costs.len(), 3);
        assert_eq!(costs[0], -0.1);
        assert_eq!(costs[1], -0.9, "best score maps to lowest cost");
        assert!(costs[2].is_nan());
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut s = Scored::new(Fixed(vec![]));
        assert_eq!(s.select(&req(&[])), None);
    }

    #[test]
    fn min_max_normalize_basics() {
        let mut v = vec![2.0, 4.0, 6.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        let mut constant = vec![3.0, 3.0];
        min_max_normalize(&mut constant);
        assert_eq!(constant, vec![0.5, 0.5]);
        let mut empty: Vec<f64> = vec![];
        min_max_normalize(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn min_max_normalize_skips_non_finite() {
        let mut v = vec![1.0, f64::NAN, 3.0];
        min_max_normalize(&mut v);
        assert_eq!(v[0], 0.0);
        assert!(v[1].is_nan());
        assert_eq!(v[2], 1.0);
    }
}
