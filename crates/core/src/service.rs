//! The single place a [`ModelKind`] axis value becomes a live selector.
//!
//! Before this module, every driver (the fig6 experiment, the psim CLI,
//! the extension studies) kept its own name → constructor table, and the
//! tables drifted: different accepted spellings, different bandit
//! parameters, different seed-salting conventions. [`factory_for`] is now
//! the one table; callers differ only in the `salt` they mix into the
//! seed of stochastic selectors, which keeps each driver's historical
//! random streams (and therefore its recorded results) unchanged.

use overlay::selector::{ModelKind, PeerSelector, RandomSelector, SelectorFactory};
use overlay::streaming::PiecePolicy;

use crate::adaptive::{EpsilonGreedySelector, Ucb1Selector};
use crate::economic::EconomicModel;
use crate::evaluator::DataEvaluatorModel;
use crate::model::Scored;
use crate::preference::UserPreferenceModel;

/// UCB1 exploration constant used by every driver.
pub const UCB1_EXPLORATION: f64 = std::f64::consts::SQRT_2;
/// UCB1 reward normalisation scale (bytes/second), shared by every driver.
pub const UCB1_SCALE: f64 = 2e6;
/// ε-greedy exploration rate shared by every driver.
pub const EPS_GREEDY_EPSILON: f64 = 0.1;

/// Builds the selector factory implementing `kind`, or `None` for
/// [`ModelKind::Blind`] (blind mode installs no selector at all).
///
/// `salt` is XOR-mixed into the run seed handed to stochastic selectors
/// (random, ε-greedy), so different drivers keep disjoint random streams:
/// `0` reproduces the psim CLI's streams, `0xF166` the fig6 experiment's,
/// `0xEE7` the extension studies', `0xADA7` the adaptation study's.
pub fn factory_for(kind: ModelKind, salt: u64) -> Option<SelectorFactory> {
    if kind == ModelKind::Blind {
        return None;
    }
    Some(Box::new(move |seed| -> Box<dyn PeerSelector> {
        match kind {
            ModelKind::Blind => unreachable!("handled above"),
            ModelKind::Economic => Box::new(Scored::new(EconomicModel::new())),
            ModelKind::SamePriority => Box::new(Scored::new(DataEvaluatorModel::same_priority())),
            ModelKind::QuickPeer => Box::new(Scored::new(UserPreferenceModel::quick_peer())),
            ModelKind::Random => Box::new(RandomSelector::new(seed ^ salt)),
            ModelKind::Ucb1 => Box::new(Ucb1Selector::new(UCB1_EXPLORATION, UCB1_SCALE)),
            ModelKind::EpsGreedy => {
                Box::new(EpsilonGreedySelector::new(EPS_GREEDY_EPSILON, seed ^ salt))
            }
        }
    }))
}

/// Resolves a model name to a selector factory, or reports the valid
/// list. `blind` is a valid axis spelling but names no selector, so it is
/// rejected here like any unknown name.
pub fn try_factory_for(model: &str, salt: u64) -> Result<SelectorFactory, UnknownModelError> {
    ModelKind::parse(model)
        .and_then(|kind| factory_for(kind, salt))
        .ok_or_else(|| UnknownModelError {
            model: model.to_string(),
        })
}

/// Every model name that resolves to a selector (canonical order:
/// [`ModelKind::ALL`] minus `blind`).
pub fn selectable_model_names() -> Vec<String> {
    ModelKind::ALL
        .into_iter()
        .filter(|&m| m != ModelKind::Blind)
        .map(|m| m.name().to_string())
        .collect()
}

/// An unrecognized selection-model name. Carries the valid list so
/// callers (psim, reproduce_paper) can point the user at the accepted
/// spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelError {
    /// The name that failed to resolve.
    pub model: String,
}

impl UnknownModelError {
    /// The accepted model names, canonical order.
    pub fn valid_models(&self) -> Vec<String> {
        selectable_model_names()
    }
}

impl std::fmt::Display for UnknownModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown selection model `{}`; valid models: {}",
            self.model,
            selectable_model_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownModelError {}

/// Resolves a streaming piece-policy name, or reports the valid list —
/// the same one-table discipline as [`try_factory_for`], so the psim
/// CLI, the sweep axes, and the bench drivers accept identical
/// spellings.
pub fn try_piece_policy_for(name: &str) -> Result<PiecePolicy, UnknownPiecePolicyError> {
    PiecePolicy::parse(name).ok_or_else(|| UnknownPiecePolicyError {
        policy: name.to_string(),
    })
}

/// Every piece-policy name, canonical ([`PiecePolicy::ALL`]) order.
pub fn piece_policy_names() -> Vec<String> {
    PiecePolicy::ALL
        .into_iter()
        .map(|p| p.name().to_string())
        .collect()
}

/// An unrecognized piece-policy name. Carries the valid list so callers
/// can point the user at the accepted spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPiecePolicyError {
    /// The name that failed to resolve.
    pub policy: String,
}

impl std::fmt::Display for UnknownPiecePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown piece policy `{}`; valid policies: {}",
            self.policy,
            piece_policy_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownPiecePolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_selectable_name_resolves() {
        for name in selectable_model_names() {
            let factory = try_factory_for(&name, 0).unwrap_or_else(|e| panic!("{e}"));
            let selector = factory(1);
            assert!(!selector.name().is_empty());
        }
    }

    #[test]
    fn blind_installs_no_selector() {
        assert!(factory_for(ModelKind::Blind, 0).is_none());
        assert!(try_factory_for("blind", 0).is_err());
    }

    #[test]
    fn evaluator_alias_resolves_to_same_priority() {
        let factory = try_factory_for("evaluator", 0).expect("alias resolves");
        assert_eq!(factory(1).name(), "data-evaluator(same-priority)");
    }

    #[test]
    fn every_piece_policy_name_resolves() {
        for name in piece_policy_names() {
            let policy = try_piece_policy_for(&name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(policy.name(), name);
        }
        assert_eq!(
            try_piece_policy_for("rarest"),
            Ok(PiecePolicy::RarestWindow),
            "the shorthand spelling resolves"
        );
        let err = try_piece_policy_for("psychic").unwrap_err();
        let msg = err.to_string();
        for name in piece_policy_names() {
            assert!(msg.contains(&name), "error lists valid policy {name}");
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_models() {
        let err = match try_factory_for("psychic", 0) {
            Ok(_) => panic!("`psychic` must not resolve to a selector"),
            Err(e) => e,
        };
        assert_eq!(err.model, "psychic");
        let msg = err.to_string();
        for m in err.valid_models() {
            assert!(msg.contains(&m), "error lists valid model {m}");
        }
    }
}
