//! # peer-selection — peer selection models for brokered P2P overlays
//!
//! The primary contribution of the reproduced paper: given a broker's view
//! of its peergroup (statistics snapshots + observed interaction history),
//! decide which peer should receive a file or execute a task.
//!
//! The paper's three models:
//!
//! * [`economic::EconomicModel`] — scheduling-based selection (§2.1): plan
//!   ahead using estimated peer *ready times*, award work to the earliest /
//!   cheapest completion, tie-break by CPU speed.
//! * [`evaluator::DataEvaluatorModel`] — the cost model (§2.2): weighted sum
//!   over the full statistics-criteria catalogue, with *same priority* mode
//!   (equal weights) as measured in the paper.
//! * [`preference::UserPreferenceModel`] — user's preference (§2.3),
//!   including *quick peer* mode: historically fastest peer, ignoring all
//!   current state.
//!
//! Plus extensions beyond the paper:
//!
//! * [`adaptive`] — ε-greedy and UCB1 bandit selectors (the "future work").
//! * [`composite`] — weighted blends of models.
//! * [`sticky`] — hysteresis: keep the incumbent peer unless a challenger
//!   wins by a margin (cuts cold-peer wake-up churn).
//!
//! [`service`] is the one name → selector table every driver (experiments,
//! the psim CLI, sweep grids) resolves models through.
//!
//! All models implement [`model::ScoringModel`] and convert to the broker's
//! [`overlay::selector::PeerSelector`] via [`model::Scored`]:
//!
//! ```
//! use peer_selection::prelude::*;
//!
//! let selector: Box<dyn PeerSelector> = Box::new(Scored::new(EconomicModel::new()));
//! assert_eq!(selector.name(), "economic");
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod composite;
pub mod economic;
pub mod estimate;
pub mod evaluator;
pub mod model;
pub mod preference;
pub mod service;
pub mod sticky;

/// Convenient re-exports of the model types and the overlay hook.
pub mod prelude {
    pub use crate::adaptive::{EpsilonGreedySelector, Ucb1Selector};
    pub use crate::composite::CompositeModel;
    pub use crate::economic::{EconomicConfig, EconomicModel};
    pub use crate::estimate::Priors;
    pub use crate::evaluator::{DataEvaluatorModel, WeightProfile};
    pub use crate::model::{Scored, ScoringModel};
    pub use crate::preference::{PreferenceMode, UserPreferenceModel};
    pub use crate::service::{factory_for, try_factory_for, UnknownModelError};
    pub use crate::sticky::StickySelector;
    pub use overlay::selector::{
        CandidateView, InteractionHistory, PeerSelector, Purpose, RandomSelector,
        RoundRobinSelector, SelectionOutcome, SelectionRequest,
    };
}
