//! Composite selection: weighted blending of scoring models.
//!
//! An extension beyond the paper's three models: each sub-model scores the
//! candidate set, each score vector is min-max normalized (so models with
//! different units — negative seconds, `[0,1]` goodness, raw bytes/s — blend
//! fairly), and the weighted sum decides. A hybrid of the economic and
//! data-evaluator models, for example, weighs both live readiness and
//! long-term reliability.

use overlay::selector::{SelectionOutcome, SelectionRequest};

use crate::model::{min_max_normalize, ScoringModel};

/// Weighted combination of scoring models.
pub struct CompositeModel {
    parts: Vec<(Box<dyn ScoringModel>, f64)>,
    name: String,
}

impl CompositeModel {
    /// Creates an empty composite (add parts with [`CompositeModel::plus`]).
    pub fn new(name: impl Into<String>) -> Self {
        CompositeModel {
            parts: Vec::new(),
            name: name.into(),
        }
    }

    /// Adds a sub-model with the given blend weight.
    pub fn plus(mut self, model: Box<dyn ScoringModel>, weight: f64) -> Self {
        if weight > 0.0 {
            self.parts.push((model, weight));
        }
        self
    }

    /// Number of active sub-models.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no sub-models are installed.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl ScoringModel for CompositeModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn scores(&mut self, req: &SelectionRequest<'_>) -> Vec<f64> {
        let n = req.candidates.len();
        let total: f64 = self.parts.iter().map(|(_, w)| w).sum();
        let mut blended = vec![0.0; n];
        if total <= 0.0 {
            return blended;
        }
        for (model, weight) in &mut self.parts {
            let mut scores = model.scores(req);
            scores.resize(n, f64::NAN);
            min_max_normalize(&mut scores);
            for (acc, s) in blended.iter_mut().zip(scores) {
                // NaN (ineligible in a sub-model) contributes the worst value.
                *acc += *weight / total * if s.is_nan() { 0.0 } else { s };
            }
        }
        blended
    }

    fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        for (model, _) in &mut self.parts {
            model.on_outcome(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economic::EconomicModel;
    use crate::evaluator::DataEvaluatorModel;
    use crate::model::Scored;
    use netsim::node::NodeId;
    use netsim::time::SimTime;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, PeerSelector, Purpose};
    use overlay::stats::StatsSnapshot;

    struct Fixed(&'static str, Vec<f64>);
    impl ScoringModel for Fixed {
        fn name(&self) -> &str {
            self.0
        }
        fn scores(&mut self, _req: &SelectionRequest<'_>) -> Vec<f64> {
            self.1.clone()
        }
    }

    fn candidates(n: usize) -> Vec<CandidateView> {
        let mut g = IdGenerator::new(9);
        (0..n)
            .map(|i| CandidateView {
                peer: PeerId::generate(&mut g),
                node: NodeId(i as u32),
                name: format!("n{i}").into(),
                cpu_gops: 1.0,
                snapshot: StatsSnapshot::empty(1.0),
                history: InteractionHistory::empty(),
            })
            .collect()
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    #[test]
    fn single_part_composite_equals_part() {
        let c = candidates(3);
        let mut composite =
            CompositeModel::new("solo").plus(Box::new(Fixed("a", vec![0.2, 0.9, 0.4])), 1.0);
        let scores = composite.scores(&req(&c));
        // Normalized ordering preserved.
        assert!(scores[1] > scores[2] && scores[2] > scores[0]);
    }

    #[test]
    fn weights_tilt_the_blend() {
        let c = candidates(2);
        // Model A prefers 0; model B prefers 1.
        let a = Fixed("a", vec![1.0, 0.0]);
        let b = Fixed("b", vec![0.0, 1.0]);
        let mut tilted_a = CompositeModel::new("ta")
            .plus(Box::new(a), 3.0)
            .plus(Box::new(b), 1.0);
        let scores = tilted_a.scores(&req(&c));
        assert!(scores[0] > scores[1]);
        let a = Fixed("a", vec![1.0, 0.0]);
        let b = Fixed("b", vec![0.0, 1.0]);
        let mut tilted_b = CompositeModel::new("tb")
            .plus(Box::new(a), 1.0)
            .plus(Box::new(b), 3.0);
        let scores = tilted_b.scores(&req(&c));
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn zero_weight_parts_are_dropped() {
        let composite = CompositeModel::new("z")
            .plus(Box::new(Fixed("a", vec![])), 0.0)
            .plus(Box::new(Fixed("b", vec![])), -1.0);
        assert!(composite.is_empty());
        assert_eq!(composite.len(), 0);
    }

    #[test]
    fn empty_composite_scores_zero() {
        let c = candidates(2);
        let mut composite = CompositeModel::new("empty");
        assert_eq!(composite.scores(&req(&c)), vec![0.0, 0.0]);
    }

    #[test]
    fn real_models_compose() {
        let c = candidates(3);
        let mut hybrid = Scored::new(
            CompositeModel::new("economic+evaluator")
                .plus(Box::new(EconomicModel::new()), 0.6)
                .plus(Box::new(DataEvaluatorModel::same_priority()), 0.4),
        );
        // With identical candidates any choice is valid; it must not panic
        // and must pick a valid index.
        let pick = hybrid.select(&req(&c)).unwrap();
        assert!(pick < 3);
        assert_eq!(hybrid.name(), "economic+evaluator");
    }

    #[test]
    fn nan_subscores_count_as_worst() {
        let c = candidates(2);
        let mut composite =
            CompositeModel::new("nan").plus(Box::new(Fixed("a", vec![f64::NAN, 1.0])), 1.0);
        let scores = composite.scores(&req(&c));
        assert!(scores[1] > scores[0]);
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn blended_scores_bounded() {
        let c = candidates(4);
        let mut composite = CompositeModel::new("b")
            .plus(Box::new(Fixed("a", vec![10.0, -5.0, 3.0, 0.0])), 2.0)
            .plus(Box::new(Fixed("b", vec![0.0, 100.0, 50.0, 25.0])), 1.0);
        for s in composite.scores(&req(&c)) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
