//! The scheduling-based ("economic") selection model (paper §2.1).
//!
//! After Ernemann et al.'s economic grid scheduling: the broker plans ahead
//! by estimating each peer's **ready time** from historical data, predicts
//! the completion time of the new work on each peer, prices machine time by
//! capability, and awards the work to the peer with the lowest economic
//! cost. Idle peers ("find/provision as many as possible available idle
//! peers") naturally win because their ready time is zero. Ties are broken
//! by CPU speed — exactly the paper's "additional data and criteria such as
//! CPU speed".

use overlay::selector::{SelectionOutcome, SelectionRequest};

use crate::estimate::{completion_secs, Priors};
use crate::model::ScoringModel;

/// Economic model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomicConfig {
    /// Estimation priors for peers without history.
    pub priors: Priors,
    /// Price per advertised gops (machine hourly rate analogue). With
    /// `budget_pressure` = 0 the model is pure earliest-completion.
    pub price_per_gops: f64,
    /// How strongly price trades off against completion time, in `[0, 1]`.
    pub budget_pressure: f64,
}

impl Default for EconomicConfig {
    fn default() -> Self {
        EconomicConfig {
            priors: Priors::default(),
            price_per_gops: 0.2,
            budget_pressure: 0.0,
        }
    }
}

/// The economic scheduling model.
#[derive(Debug, Clone)]
pub struct EconomicModel {
    cfg: EconomicConfig,
}

impl EconomicModel {
    /// Creates the model with default parameters (pure earliest completion).
    pub fn new() -> Self {
        EconomicModel {
            cfg: EconomicConfig::default(),
        }
    }

    /// Creates the model with explicit parameters.
    pub fn with_config(cfg: EconomicConfig) -> Self {
        EconomicModel { cfg }
    }

    /// The economic cost of running `purpose` on candidate `i` of `req`
    /// (lower is better). Exposed for tests and reports.
    pub fn cost(&self, req: &SelectionRequest<'_>, i: usize) -> f64 {
        let c = &req.candidates[i];
        let completion = completion_secs(req.now, c, req.purpose, &self.cfg.priors);
        let price = 1.0 + self.cfg.price_per_gops * c.cpu_gops;
        // cost = time × (1 + pressure·(price − 1)): at zero pressure this is
        // pure makespan; at pressure 1 it is the Ernemann-style time×price.
        completion * (1.0 + self.cfg.budget_pressure * (price - 1.0))
    }
}

impl Default for EconomicModel {
    fn default() -> Self {
        EconomicModel::new()
    }
}

impl ScoringModel for EconomicModel {
    fn name(&self) -> &str {
        "economic"
    }

    fn scores(&mut self, req: &SelectionRequest<'_>) -> Vec<f64> {
        (0..req.candidates.len())
            .map(|i| -self.cost(req, i))
            .collect()
    }

    fn on_outcome(&mut self, _outcome: &SelectionOutcome) {
        // The broker already folds outcomes into InteractionHistory, which
        // this model reads on the next request; no private state needed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scored;
    use netsim::node::NodeId;
    use netsim::time::{SimDuration, SimTime};
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, PeerSelector, Purpose};
    use overlay::stats::StatsSnapshot;

    fn cand(node: u32, cpu: f64, history: InteractionHistory) -> CandidateView {
        let mut g = IdGenerator::new(node as u64 + 1);
        CandidateView {
            peer: PeerId::generate(&mut g),
            node: NodeId(node),
            name: format!("n{node}").into(),
            cpu_gops: cpu,
            snapshot: StatsSnapshot::empty(cpu),
            history,
        }
    }

    fn file_req(c: &[CandidateView], bytes: u64) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO + SimDuration::from_secs(1000),
            purpose: Purpose::FileTransfer { bytes },
            candidates: c,
        }
    }

    #[test]
    fn prefers_idle_peer_over_backlogged_equal() {
        let idle = InteractionHistory::empty();
        let mut busy = InteractionHistory::empty();
        busy.queued_bytes = 50_000_000;
        let c = vec![cand(0, 1.0, busy), cand(1, 1.0, idle)];
        let mut s = Scored::new(EconomicModel::new());
        assert_eq!(s.select(&file_req(&c, 1_000_000)), Some(1));
    }

    #[test]
    fn prefers_historically_fast_peer() {
        let mut slow = InteractionHistory::empty();
        slow.observe_throughput(200_000.0, 1.0);
        let mut fast = InteractionHistory::empty();
        fast.observe_throughput(1_400_000.0, 1.0);
        let c = vec![cand(0, 1.0, slow), cand(1, 1.0, fast)];
        let mut s = Scored::new(EconomicModel::new());
        assert_eq!(s.select(&file_req(&c, 10_000_000)), Some(1));
    }

    #[test]
    fn avoids_high_petition_latency_for_small_transfers() {
        // Small transfers are dominated by the wake-up latency, so the model
        // must weigh petition history (the SC7 pathology).
        let mut sluggish = InteractionHistory::empty();
        sluggish.observe_petition(27.13, 1.0);
        sluggish.observe_throughput(1_000_000.0, 1.0);
        let mut prompt = InteractionHistory::empty();
        prompt.observe_petition(0.04, 1.0);
        prompt.observe_throughput(900_000.0, 1.0);
        let c = vec![cand(0, 1.0, sluggish), cand(1, 1.0, prompt)];
        let mut s = Scored::new(EconomicModel::new());
        assert_eq!(s.select(&file_req(&c, 500_000)), Some(1));
    }

    #[test]
    fn busy_until_in_future_penalizes() {
        let now = SimTime::ZERO + SimDuration::from_secs(1000);
        let mut reserved = InteractionHistory::empty();
        reserved.busy_until = now + SimDuration::from_secs(300);
        let free = InteractionHistory::empty();
        let c = vec![cand(0, 2.0, reserved), cand(1, 1.0, free)];
        let mut s = Scored::new(EconomicModel::new());
        let req = SelectionRequest {
            now,
            purpose: Purpose::FileTransfer { bytes: 1_000_000 },
            candidates: &c,
        };
        assert_eq!(s.select(&req), Some(1));
    }

    #[test]
    fn task_purpose_weighs_exec_rate() {
        let mut weak = InteractionHistory::empty();
        weak.observe_exec_rate(0.2, 1.0);
        let mut strong = InteractionHistory::empty();
        strong.observe_exec_rate(1.4, 1.0);
        let c = vec![cand(0, 1.0, weak), cand(1, 1.0, strong)];
        let mut s = Scored::new(EconomicModel::new());
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::TaskExecution {
                work_gops: 300,
                input_bytes: 0,
            },
            candidates: &c,
        };
        assert_eq!(s.select(&req), Some(1));
    }

    #[test]
    fn budget_pressure_trades_speed_for_price() {
        // Candidate 0: modest CPU, slightly slower; candidate 1: big CPU,
        // slightly faster. Under pure makespan 1 wins; under strong budget
        // pressure the cheaper machine wins.
        let mut mid = InteractionHistory::empty();
        mid.observe_exec_rate(1.0, 1.0);
        mid.observe_petition(0.1, 1.0);
        let mut big = InteractionHistory::empty();
        big.observe_exec_rate(1.1, 1.0);
        big.observe_petition(0.1, 1.0);
        let c = vec![cand(0, 1.0, mid), cand(1, 8.0, big)];
        let req = SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::TaskExecution {
                work_gops: 100,
                input_bytes: 0,
            },
            candidates: &c,
        };
        let mut pure = Scored::new(EconomicModel::new());
        assert_eq!(pure.select(&req), Some(1));
        let mut frugal = Scored::new(EconomicModel::with_config(EconomicConfig {
            budget_pressure: 1.0,
            price_per_gops: 0.5,
            ..EconomicConfig::default()
        }));
        assert_eq!(frugal.select(&req), Some(0));
    }

    #[test]
    fn cost_is_positive_and_monotone_in_bytes() {
        let c = vec![cand(0, 1.0, InteractionHistory::empty())];
        let m = EconomicModel::new();
        let small = m.cost(&file_req(&c, 1_000), 0);
        let large = m.cost(&file_req(&c, 100_000_000), 0);
        assert!(small > 0.0);
        assert!(large > small);
    }
}
