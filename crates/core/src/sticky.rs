//! Sticky selection: hysteresis on top of any scoring model.
//!
//! Raw argmax selection flaps between near-equal peers as scores wobble,
//! which costs real money on a P2P overlay: every switch pays a fresh
//! wake-up (petition) on a cold peer while the previous peer's pipe was
//! already hot. [`StickySelector`] keeps the incumbent peer unless a
//! challenger beats it by a margin (in min-max-normalized score space), a
//! standard hysteresis scheme.

use netsim::node::NodeId;
use overlay::selector::{PeerSelector, SelectionOutcome, SelectionRequest};

use crate::model::{argmax_with_tiebreak, min_max_normalize, ScoringModel};

/// Hysteresis wrapper around a scoring model.
pub struct StickySelector<M: ScoringModel> {
    model: M,
    /// Normalized-score margin a challenger must win by (0 = plain argmax,
    /// 1 = never switch while the incumbent is eligible).
    margin: f64,
    incumbent: Option<NodeId>,
    name: String,
    /// Switches made so far (observable for tests/reports).
    pub switches: u64,
}

impl<M: ScoringModel> StickySelector<M> {
    /// Wraps `model` with the given switching margin.
    pub fn new(model: M, margin: f64) -> Self {
        let name = format!("sticky({})", model.name());
        StickySelector {
            model,
            margin: margin.clamp(0.0, 1.0),
            incumbent: None,
            name,
            switches: 0,
        }
    }

    /// The current incumbent peer, if any.
    pub fn incumbent(&self) -> Option<NodeId> {
        self.incumbent
    }
}

impl<M: ScoringModel> PeerSelector for StickySelector<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        if req.candidates.is_empty() {
            self.incumbent = None;
            return None;
        }
        let mut scores = self.model.scores(req);
        let best = argmax_with_tiebreak(req, &scores)?;
        min_max_normalize(&mut scores);
        let incumbent_idx = self
            .incumbent
            .and_then(|n| req.candidates.iter().position(|c| c.node == n));
        let chosen = match incumbent_idx {
            // Incumbent still a candidate: challenger must clear the margin.
            Some(i) if scores[i].is_finite() => {
                let challenger_gain = scores[best] - scores[i];
                if challenger_gain > self.margin {
                    best
                } else {
                    i
                }
            }
            // No (eligible) incumbent: plain argmax.
            _ => best,
        };
        let node = req.candidates[chosen].node;
        if self.incumbent != Some(node) {
            if self.incumbent.is_some() {
                self.switches += 1;
            }
            self.incumbent = Some(node);
        }
        Some(chosen)
    }

    fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        // A failure on the incumbent evicts it immediately.
        if !outcome.success && self.incumbent == Some(outcome.node) {
            self.incumbent = None;
        }
        self.model.on_outcome(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, Purpose};
    use overlay::stats::StatsSnapshot;

    struct Scripted {
        rounds: std::cell::Cell<usize>,
        script: Vec<Vec<f64>>,
    }
    impl ScoringModel for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn scores(&mut self, _req: &SelectionRequest<'_>) -> Vec<f64> {
            let i = self.rounds.get().min(self.script.len() - 1);
            self.rounds.set(self.rounds.get() + 1);
            self.script[i].clone()
        }
    }

    fn candidates(n: usize) -> Vec<CandidateView> {
        let mut g = IdGenerator::new(3);
        (0..n)
            .map(|i| CandidateView {
                peer: PeerId::generate(&mut g),
                node: NodeId(i as u32),
                name: format!("n{i}").into(),
                cpu_gops: 1.0,
                snapshot: StatsSnapshot::empty(1.0),
                history: InteractionHistory::empty(),
            })
            .collect()
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    fn sticky(script: Vec<Vec<f64>>, margin: f64) -> StickySelector<Scripted> {
        StickySelector::new(
            Scripted {
                rounds: std::cell::Cell::new(0),
                script,
            },
            margin,
        )
    }

    #[test]
    fn sticks_through_marginal_flapping() {
        // Leader alternates between 0 and 1 by a whisker each round.
        let script = vec![
            vec![1.00, 0.99, 0.0],
            vec![0.99, 1.00, 0.0],
            vec![1.00, 0.99, 0.0],
            vec![0.99, 1.00, 0.0],
        ];
        let c = candidates(3);
        let mut s = sticky(script, 0.2);
        let picks: Vec<usize> = (0..4).map(|_| s.select(&req(&c)).unwrap()).collect();
        assert_eq!(picks, vec![0, 0, 0, 0], "incumbent survives whisker leads");
        assert_eq!(s.switches, 0);
    }

    #[test]
    fn switches_on_decisive_challenger() {
        let script = vec![
            vec![1.0, 0.5, 0.0],
            vec![0.1, 1.0, 0.0], // candidate 1 now decisively better
        ];
        let c = candidates(3);
        let mut s = sticky(script, 0.2);
        assert_eq!(s.select(&req(&c)), Some(0));
        assert_eq!(s.select(&req(&c)), Some(1));
        assert_eq!(s.switches, 1);
        assert_eq!(s.incumbent(), Some(NodeId(1)));
    }

    #[test]
    fn zero_margin_is_plain_argmax() {
        let script = vec![vec![1.0, 0.9], vec![0.9, 1.0]];
        let c = candidates(2);
        let mut s = sticky(script, 0.0);
        assert_eq!(s.select(&req(&c)), Some(0));
        assert_eq!(s.select(&req(&c)), Some(1), "any lead switches at margin 0");
    }

    #[test]
    fn incumbent_disappearing_forces_repick() {
        let script = vec![vec![0.0, 0.0, 1.0], vec![1.0, 0.5]];
        let c3 = candidates(3);
        let mut s = sticky(script, 0.5);
        assert_eq!(s.select(&req(&c3)), Some(2));
        // Candidate set shrinks: node 2 gone.
        let c2 = candidates(2);
        assert_eq!(s.select(&req(&c2)), Some(0));
        assert_eq!(s.incumbent(), Some(NodeId(0)));
    }

    #[test]
    fn failure_evicts_incumbent() {
        let script = vec![vec![1.0, 0.9], vec![1.0, 0.99]];
        let c = candidates(2);
        let mut s = sticky(script, 0.5);
        assert_eq!(s.select(&req(&c)), Some(0));
        s.on_outcome(&SelectionOutcome {
            node: NodeId(0),
            success: false,
            elapsed_secs: 1.0,
            bytes: 0,
        });
        assert_eq!(s.incumbent(), None);
        // Next pick is a fresh argmax.
        assert_eq!(s.select(&req(&c)), Some(0));
    }

    #[test]
    fn empty_candidates_reset() {
        let script = vec![vec![1.0]];
        let mut s = sticky(script, 0.2);
        let c = candidates(1);
        assert_eq!(s.select(&req(&c)), Some(0));
        assert_eq!(s.select(&req(&[])), None);
        assert_eq!(s.incumbent(), None);
    }

    #[test]
    fn wraps_real_models() {
        let mut s = StickySelector::new(crate::economic::EconomicModel::new(), 0.1);
        let c = candidates(4);
        let pick = s.select(&req(&c)).unwrap();
        assert!(pick < 4);
        assert!(s.name().contains("economic"));
    }
}
