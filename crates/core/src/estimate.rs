//! Shared estimation helpers: turning broker-observed history into
//! ready-time / transfer-time / execution-time predictions.
//!
//! These are the "estimated time is computed by the broker peers based on
//! historical data kept for the peergroup" primitives of the paper's
//! scheduling-based model (§2.1), factored out so the economic, composite
//! and adaptive models all predict consistently.

use netsim::time::SimTime;
use overlay::selector::{CandidateView, InteractionHistory, Purpose};

/// Fallback assumptions when a peer has no history yet.
#[derive(Debug, Clone, PartialEq)]
pub struct Priors {
    /// Assumed transfer throughput, bytes/second.
    pub throughput_bps: f64,
    /// Assumed petition (wake-up) latency, seconds.
    pub petition_secs: f64,
    /// Assumed fraction of advertised CPU actually available.
    pub cpu_availability: f64,
}

impl Default for Priors {
    fn default() -> Self {
        Priors {
            throughput_bps: 1_000_000.0, // ~1 MB/s: the testbed's healthy mean
            petition_secs: 0.5,
            cpu_availability: 0.7,
        }
    }
}

/// Best throughput estimate for a peer, falling back to the prior.
pub fn throughput_bps(h: &InteractionHistory, priors: &Priors) -> f64 {
    h.ewma_throughput_bps
        .filter(|v| *v > 0.0)
        .unwrap_or(priors.throughput_bps)
}

/// Best petition-latency estimate for a peer, falling back to the prior.
pub fn petition_secs(h: &InteractionHistory, priors: &Priors) -> f64 {
    h.ewma_petition_secs
        .filter(|v| *v >= 0.0)
        .unwrap_or(priors.petition_secs)
}

/// Best execution-rate estimate (gops/sec), falling back to a fraction of
/// the advertised CPU.
pub fn exec_rate_gops(h: &InteractionHistory, advertised_cpu: f64, priors: &Priors) -> f64 {
    h.ewma_exec_gops_per_sec
        .filter(|v| *v > 0.0)
        .unwrap_or((advertised_cpu * priors.cpu_availability).max(1e-6))
}

/// Seconds until the peer has drained its current backlog and is *ready*
/// for new work (paper §2.1: "crucial to this model is the ready time of
/// peers in order to plan in advance").
pub fn ready_secs(now: SimTime, h: &InteractionHistory, priors: &Priors) -> f64 {
    let busy = h.busy_until.duration_since(now).as_secs_f64();
    let queue_drain = h.queued_bytes as f64 / throughput_bps(h, priors);
    busy + queue_drain
}

/// Predicted service time for the work described by `purpose` on this peer
/// (excludes queueing; see [`ready_secs`]).
pub fn service_secs(c: &CandidateView, purpose: Purpose, priors: &Priors) -> f64 {
    match purpose {
        Purpose::FileTransfer { bytes } => bytes as f64 / throughput_bps(&c.history, priors),
        Purpose::TaskExecution {
            work_gops,
            input_bytes,
        } => {
            input_bytes as f64 / throughput_bps(&c.history, priors)
                + work_gops as f64 / exec_rate_gops(&c.history, c.cpu_gops, priors)
        }
    }
}

/// Predicted completion time (seconds from `now`) of `purpose` on this peer:
/// ready + wake-up + service.
pub fn completion_secs(now: SimTime, c: &CandidateView, purpose: Purpose, priors: &Priors) -> f64 {
    ready_secs(now, &c.history, priors)
        + petition_secs(&c.history, priors)
        + service_secs(c, purpose, priors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::node::NodeId;
    use netsim::time::SimDuration;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::stats::StatsSnapshot;

    fn cand(history: InteractionHistory, cpu: f64) -> CandidateView {
        let mut g = IdGenerator::new(1);
        CandidateView {
            peer: PeerId::generate(&mut g),
            node: NodeId(0),
            name: "p".into(),
            cpu_gops: cpu,
            snapshot: StatsSnapshot::empty(cpu),
            history,
        }
    }

    #[test]
    fn priors_apply_when_no_history() {
        let h = InteractionHistory::empty();
        let p = Priors::default();
        assert_eq!(throughput_bps(&h, &p), p.throughput_bps);
        assert_eq!(petition_secs(&h, &p), p.petition_secs);
        assert!((exec_rate_gops(&h, 2.0, &p) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn history_overrides_priors() {
        let mut h = InteractionHistory::empty();
        h.observe_throughput(2e6, 1.0);
        h.observe_petition(0.1, 1.0);
        h.observe_exec_rate(0.9, 1.0);
        let p = Priors::default();
        assert_eq!(throughput_bps(&h, &p), 2e6);
        assert_eq!(petition_secs(&h, &p), 0.1);
        assert_eq!(exec_rate_gops(&h, 2.0, &p), 0.9);
    }

    #[test]
    fn ready_time_counts_backlog_and_busy() {
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        let mut h = InteractionHistory::empty();
        h.busy_until = now + SimDuration::from_secs(10);
        h.queued_bytes = 2_000_000; // at 1 MB/s prior → 2 s drain
        let p = Priors::default();
        assert!((ready_secs(now, &h, &p) - 12.0).abs() < 1e-9);
        // A peer whose busy_until is in the past has only queue drain.
        h.busy_until = SimTime::ZERO;
        assert!((ready_secs(now, &h, &p) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn completion_combines_all_terms() {
        let now = SimTime::ZERO;
        let mut h = InteractionHistory::empty();
        h.observe_throughput(1e6, 1.0);
        h.observe_petition(1.0, 1.0);
        let c = cand(h, 2.0);
        let p = Priors::default();
        let secs = completion_secs(now, &c, Purpose::FileTransfer { bytes: 3_000_000 }, &p);
        // ready 0 + petition 1 + transfer 3 = 4.
        assert!((secs - 4.0).abs() < 1e-9);
    }

    #[test]
    fn task_completion_includes_input_and_compute() {
        let now = SimTime::ZERO;
        let mut h = InteractionHistory::empty();
        h.observe_throughput(1e6, 1.0);
        h.observe_petition(0.0, 1.0);
        h.observe_exec_rate(2.0, 1.0);
        let c = cand(h, 2.0);
        let p = Priors::default();
        let secs = completion_secs(
            now,
            &c,
            Purpose::TaskExecution {
                work_gops: 10,
                input_bytes: 1_000_000,
            },
            &p,
        );
        // input 1 s + work 5 s.
        assert!((secs - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_throughput_history_falls_back() {
        let mut h = InteractionHistory::empty();
        h.ewma_throughput_bps = Some(0.0);
        let p = Priors::default();
        assert_eq!(throughput_bps(&h, &p), p.throughput_bps);
    }
}
