//! The user's preference selection model (paper §2.3).
//!
//! "The peer is selected by the user according to his preferences and
//! experience in using the peer nodes … useful when the user knows the
//! performance of some peers in advance, for instance, from previous
//! submissions … very low computational cost. Its main drawback is that it
//! does not take into account the current state of the selected peer nor
//! the current state of the network."
//!
//! Two modes:
//!
//! * **Explicit ranking** — the user lists hostnames in order of preference.
//! * **Quick peer** — the mode measured in the paper's Fig 6: pick the peer
//!   that has historically been fastest, *ignoring* every live signal
//!   (queues, backlog, reservations). The staleness of that choice is
//!   exactly what the paper's comparison exposes.

use overlay::selector::SelectionRequest;

use crate::estimate::{petition_secs, throughput_bps, Priors};
use crate::model::ScoringModel;

/// How the user expresses their preference.
#[derive(Debug, Clone, PartialEq)]
pub enum PreferenceMode {
    /// Hostnames in descending preference; unlisted peers rank last.
    Ranking(Vec<String>),
    /// Historically fastest peer (throughput first, wake-up latency as the
    /// secondary signal) — *no* current-state inputs.
    QuickPeer,
}

/// The user's preference model.
#[derive(Debug, Clone)]
pub struct UserPreferenceModel {
    mode: PreferenceMode,
    priors: Priors,
    name: String,
}

impl UserPreferenceModel {
    /// Explicit ranking mode.
    pub fn from_ranking<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        UserPreferenceModel {
            mode: PreferenceMode::Ranking(names.into_iter().map(Into::into).collect()),
            priors: Priors::default(),
            name: "user-preference(ranking)".into(),
        }
    }

    /// The paper's quick-peer mode.
    pub fn quick_peer() -> Self {
        UserPreferenceModel {
            mode: PreferenceMode::QuickPeer,
            priors: Priors::default(),
            name: "user-preference(quick-peer)".into(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> &PreferenceMode {
        &self.mode
    }
}

impl ScoringModel for UserPreferenceModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn scores(&mut self, req: &SelectionRequest<'_>) -> Vec<f64> {
        match &self.mode {
            PreferenceMode::Ranking(names) => req
                .candidates
                .iter()
                .map(|c| {
                    match names.iter().position(|n| n.as_str() == &*c.name) {
                        // First-ranked gets the highest score.
                        Some(pos) => (names.len() - pos) as f64,
                        None => 0.0,
                    }
                })
                .collect(),
            PreferenceMode::QuickPeer => req
                .candidates
                .iter()
                .map(|c| {
                    // Historical speed only: observed throughput, with the
                    // observed wake-up latency as a mild penalty. Live state
                    // (queued_bytes, busy_until, queue gauges) is DELIBERATELY
                    // ignored — that is the model's defining property.
                    let thr = throughput_bps(&c.history, &self.priors);
                    let wake = petition_secs(&c.history, &self.priors);
                    thr / (1.0 + wake)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scored;
    use netsim::node::NodeId;
    use netsim::time::{SimDuration, SimTime};
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, PeerSelector, Purpose};
    use overlay::stats::StatsSnapshot;

    fn cand(node: u32, name: &str, history: InteractionHistory) -> CandidateView {
        let mut g = IdGenerator::new(node as u64 + 1);
        CandidateView {
            peer: PeerId::generate(&mut g),
            node: NodeId(node),
            name: name.into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history,
        }
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    #[test]
    fn ranking_respects_user_order() {
        let c = vec![
            cand(0, "alpha", InteractionHistory::empty()),
            cand(1, "beta", InteractionHistory::empty()),
            cand(2, "gamma", InteractionHistory::empty()),
        ];
        let mut s = Scored::new(UserPreferenceModel::from_ranking(["gamma", "alpha"]));
        assert_eq!(s.select(&req(&c)), Some(2));
        // Remove gamma: alpha is next.
        let c2 = vec![c[0].clone(), c[1].clone()];
        assert_eq!(s.select(&req(&c2)), Some(0));
    }

    #[test]
    fn unlisted_peers_rank_last() {
        let c = vec![
            cand(0, "unknown", InteractionHistory::empty()),
            cand(1, "listed", InteractionHistory::empty()),
        ];
        let mut s = Scored::new(UserPreferenceModel::from_ranking(["listed"]));
        assert_eq!(s.select(&req(&c)), Some(1));
    }

    #[test]
    fn quick_peer_picks_historically_fastest() {
        let mut slow = InteractionHistory::empty();
        slow.observe_throughput(200_000.0, 1.0);
        let mut fast = InteractionHistory::empty();
        fast.observe_throughput(1_500_000.0, 1.0);
        let c = vec![cand(0, "slow", slow), cand(1, "fast", fast)];
        let mut s = Scored::new(UserPreferenceModel::quick_peer());
        assert_eq!(s.select(&req(&c)), Some(1));
        assert_eq!(s.name(), "user-preference(quick-peer)");
    }

    #[test]
    fn quick_peer_ignores_current_state() {
        // The historically-fastest peer is now massively backlogged and
        // reserved — quick-peer must still pick it (its defining flaw).
        let mut stale_fast = InteractionHistory::empty();
        stale_fast.observe_throughput(1_500_000.0, 1.0);
        stale_fast.queued_bytes = 500_000_000;
        stale_fast.busy_until = SimTime::ZERO + SimDuration::from_secs(10_000);
        let mut free_ok = InteractionHistory::empty();
        free_ok.observe_throughput(1_000_000.0, 1.0);
        let c = vec![cand(0, "stale-fast", stale_fast), cand(1, "free", free_ok)];
        let mut s = Scored::new(UserPreferenceModel::quick_peer());
        assert_eq!(s.select(&req(&c)), Some(0));
    }

    #[test]
    fn quick_peer_penalizes_sluggish_wakeups() {
        let mut fast_but_sluggish = InteractionHistory::empty();
        fast_but_sluggish.observe_throughput(1_200_000.0, 1.0);
        fast_but_sluggish.observe_petition(27.0, 1.0);
        let mut prompt = InteractionHistory::empty();
        prompt.observe_throughput(1_000_000.0, 1.0);
        prompt.observe_petition(0.05, 1.0);
        let c = vec![
            cand(0, "sluggish", fast_but_sluggish),
            cand(1, "prompt", prompt),
        ];
        let mut s = Scored::new(UserPreferenceModel::quick_peer());
        assert_eq!(s.select(&req(&c)), Some(1));
    }

    #[test]
    fn mode_accessor() {
        let m = UserPreferenceModel::from_ranking(["a"]);
        assert!(matches!(m.mode(), PreferenceMode::Ranking(v) if v.len() == 1));
        assert!(matches!(
            UserPreferenceModel::quick_peer().mode(),
            PreferenceMode::QuickPeer
        ));
    }
}
