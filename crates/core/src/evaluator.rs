//! The data evaluator ("cost") selection model (paper §2.2).
//!
//! Each peer is assigned a cost from its historical and statistical data:
//! every §2.2 criterion is evaluated from the broker's
//! [`overlay::stats::StatsSnapshot`],
//! min-max normalized across the candidate set, polarity-corrected (queue
//! lengths and cancellation rates count *against* a peer), weighted, and
//! summed. "Some criteria are more important than others or even some are
//! negligible (of zero weight)" — weights are user-defined or one of the
//! presets; the paper's measured configuration is *same priority mode*,
//! i.e. every criterion weighted equally.

use overlay::selector::SelectionRequest;
use overlay::stats::Criterion;

use crate::model::{min_max_normalize, ScoringModel};

/// A weighting of the §2.2 criteria.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightProfile {
    weights: Vec<(Criterion, f64)>,
}

impl WeightProfile {
    /// No criteria (useless on its own; start for builder use).
    pub fn empty() -> Self {
        WeightProfile {
            weights: Vec::new(),
        }
    }

    /// The paper's *same priority* mode: every criterion, equal weight.
    pub fn same_priority() -> Self {
        WeightProfile {
            weights: Criterion::ALL.iter().map(|&c| (c, 1.0)).collect(),
        }
    }

    /// Message-delivery-oriented preset (global criteria of §2.2).
    pub fn message_oriented() -> Self {
        WeightProfile::empty()
            .with(Criterion::MsgSuccessSession, 2.0)
            .with(Criterion::MsgSuccessTotal, 1.0)
            .with(Criterion::MsgSuccessLastK, 2.0)
            .with(Criterion::OutboxNow, 1.5)
            .with(Criterion::OutboxAvg, 1.0)
            .with(Criterion::InboxNow, 1.5)
            .with(Criterion::InboxAvg, 1.0)
    }

    /// Task-execution-oriented preset.
    pub fn task_oriented() -> Self {
        WeightProfile::empty()
            .with(Criterion::TaskExecSession, 2.0)
            .with(Criterion::TaskExecTotal, 1.5)
            .with(Criterion::TaskAcceptSession, 1.5)
            .with(Criterion::TaskAcceptTotal, 1.0)
            .with(Criterion::InboxNow, 1.0)
            .with(Criterion::PendingTransfers, 0.5)
    }

    /// File-transfer-oriented preset.
    pub fn file_oriented() -> Self {
        WeightProfile::empty()
            .with(Criterion::FilesSentSession, 2.0)
            .with(Criterion::FilesSentTotal, 1.0)
            .with(Criterion::CancelSession, 2.0)
            .with(Criterion::CancelTotal, 1.0)
            .with(Criterion::PendingTransfers, 1.5)
            .with(Criterion::OutboxNow, 1.0)
    }

    /// Adds (or replaces) a criterion weight.
    pub fn with(mut self, criterion: Criterion, weight: f64) -> Self {
        self.weights.retain(|(c, _)| *c != criterion);
        if weight != 0.0 {
            self.weights.push((criterion, weight));
        }
        self
    }

    /// The active (non-zero) criterion weights.
    pub fn weights(&self) -> &[(Criterion, f64)] {
        &self.weights
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|(_, w)| w.abs()).sum()
    }
}

/// The data evaluator model.
#[derive(Debug, Clone)]
pub struct DataEvaluatorModel {
    profile: WeightProfile,
    /// Goodness assumed for criteria a peer has no history on.
    neutral: f64,
    name: String,
}

impl DataEvaluatorModel {
    /// Creates the model in the paper's *same priority* mode.
    pub fn same_priority() -> Self {
        DataEvaluatorModel::with_profile(
            "data-evaluator(same-priority)",
            WeightProfile::same_priority(),
        )
    }

    /// Creates the model with a custom weight profile.
    pub fn with_profile(name: impl Into<String>, profile: WeightProfile) -> Self {
        DataEvaluatorModel {
            profile,
            neutral: 0.5,
            name: name.into(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &WeightProfile {
        &self.profile
    }
}

impl ScoringModel for DataEvaluatorModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn scores(&mut self, req: &SelectionRequest<'_>) -> Vec<f64> {
        let n = req.candidates.len();
        let total_weight = self.profile.total_weight();
        if n == 0 || total_weight <= 0.0 {
            return vec![0.0; n];
        }
        let mut scores = vec![0.0; n];
        for &(criterion, weight) in self.profile.weights() {
            // Raw values; missing history marked NaN so normalization skips it.
            let mut column: Vec<f64> = req
                .candidates
                .iter()
                .map(|c| c.snapshot.value(criterion).unwrap_or(f64::NAN))
                .collect();
            min_max_normalize(&mut column);
            for (i, v) in column.into_iter().enumerate() {
                let goodness = if v.is_nan() {
                    self.neutral
                } else if criterion.higher_is_better() {
                    v
                } else {
                    1.0 - v
                };
                scores[i] += weight * goodness;
            }
        }
        for s in &mut scores {
            *s /= total_weight;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scored;
    use netsim::node::NodeId;
    use netsim::time::SimTime;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, PeerSelector, Purpose};
    use overlay::stats::StatsSnapshot;

    fn cand(node: u32, snapshot: StatsSnapshot) -> CandidateView {
        let mut g = IdGenerator::new(node as u64 + 1);
        CandidateView {
            peer: PeerId::generate(&mut g),
            node: NodeId(node),
            name: format!("n{node}").into(),
            cpu_gops: 1.0,
            snapshot,
            history: InteractionHistory::empty(),
        }
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    #[test]
    fn profile_presets_are_nonempty() {
        assert_eq!(WeightProfile::same_priority().weights().len(), 16);
        assert!(!WeightProfile::message_oriented().weights().is_empty());
        assert!(!WeightProfile::task_oriented().weights().is_empty());
        assert!(!WeightProfile::file_oriented().weights().is_empty());
    }

    #[test]
    fn with_replaces_and_zero_removes() {
        let p = WeightProfile::empty()
            .with(Criterion::OutboxNow, 1.0)
            .with(Criterion::OutboxNow, 2.0);
        assert_eq!(p.weights(), &[(Criterion::OutboxNow, 2.0)]);
        let p = p.with(Criterion::OutboxNow, 0.0);
        assert!(p.weights().is_empty());
    }

    #[test]
    fn better_message_success_wins() {
        let mut good = StatsSnapshot::empty(1.0);
        good.msg_success_total = Some(99.0);
        let mut bad = StatsSnapshot::empty(1.0);
        bad.msg_success_total = Some(60.0);
        let c = vec![cand(0, bad), cand(1, good)];
        let mut s = Scored::new(DataEvaluatorModel::same_priority());
        assert_eq!(s.select(&req(&c)), Some(1));
    }

    #[test]
    fn long_queues_count_against() {
        let mut idle = StatsSnapshot::empty(1.0);
        idle.outbox_now = 0.0;
        idle.inbox_now = 0.0;
        let mut congested = StatsSnapshot::empty(1.0);
        congested.outbox_now = 12.0;
        congested.inbox_now = 9.0;
        let c = vec![cand(0, congested), cand(1, idle)];
        let mut s = Scored::new(DataEvaluatorModel::same_priority());
        assert_eq!(s.select(&req(&c)), Some(1));
    }

    #[test]
    fn cancellation_rate_counts_against() {
        let mut flaky = StatsSnapshot::empty(1.0);
        flaky.cancel_total = Some(40.0);
        flaky.files_sent_total = Some(60.0);
        let mut solid = StatsSnapshot::empty(1.0);
        solid.cancel_total = Some(0.0);
        solid.files_sent_total = Some(100.0);
        let c = vec![cand(0, flaky), cand(1, solid)];
        let mut s = Scored::new(DataEvaluatorModel::with_profile(
            "files",
            WeightProfile::file_oriented(),
        ));
        assert_eq!(s.select(&req(&c)), Some(1));
    }

    #[test]
    fn missing_history_is_neutral_not_zero() {
        // A peer with no data must not automatically beat (or lose to) a
        // peer with mediocre data on a higher-is-better criterion.
        let unknown = StatsSnapshot::empty(1.0);
        let mut perfect = StatsSnapshot::empty(1.0);
        perfect.msg_success_total = Some(100.0);
        let mut poor = StatsSnapshot::empty(1.0);
        poor.msg_success_total = Some(0.0);
        let profile = WeightProfile::empty().with(Criterion::MsgSuccessTotal, 1.0);
        let s = Scored::new(DataEvaluatorModel::with_profile("msg", profile));
        let c = vec![cand(0, poor), cand(1, unknown), cand(2, perfect)];
        let scores = s.inner().clone().scores(&req(&c));
        assert!(scores[0] < scores[1]);
        assert!(scores[1] < scores[2]);
        assert!((scores[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scores_invariant_under_weight_scaling() {
        let mut a = StatsSnapshot::empty(1.0);
        a.msg_success_total = Some(80.0);
        a.outbox_now = 3.0;
        let mut b = StatsSnapshot::empty(1.0);
        b.msg_success_total = Some(90.0);
        b.outbox_now = 6.0;
        let c = vec![cand(0, a), cand(1, b)];
        let p1 = WeightProfile::empty()
            .with(Criterion::MsgSuccessTotal, 1.0)
            .with(Criterion::OutboxNow, 2.0);
        let p2 = WeightProfile::empty()
            .with(Criterion::MsgSuccessTotal, 10.0)
            .with(Criterion::OutboxNow, 20.0);
        let s1 = DataEvaluatorModel::with_profile("p1", p1).scores(&req(&c));
        let s2 = DataEvaluatorModel::with_profile("p2", p2).scores(&req(&c));
        for (x, y) in s1.iter().zip(&s2) {
            assert!(
                (x - y).abs() < 1e-12,
                "scaling weights must not change scores"
            );
        }
    }

    #[test]
    fn scores_bounded_zero_one() {
        let mut a = StatsSnapshot::empty(1.0);
        a.msg_success_total = Some(10.0);
        a.outbox_now = 100.0;
        let mut b = StatsSnapshot::empty(1.0);
        b.msg_success_total = Some(95.0);
        b.outbox_now = 0.0;
        let c = vec![cand(0, a), cand(1, b)];
        let scores = DataEvaluatorModel::same_priority().scores(&req(&c));
        for s in scores {
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn empty_profile_scores_zero() {
        let c = vec![cand(0, StatsSnapshot::empty(1.0))];
        let scores =
            DataEvaluatorModel::with_profile("none", WeightProfile::empty()).scores(&req(&c));
        assert_eq!(scores, vec![0.0]);
    }
}
