//! Adaptive (bandit) selection — the paper's future-work direction.
//!
//! The three models of the paper use fixed policies over history. A natural
//! extension treats peer selection as a multi-armed bandit: the reward of
//! "arm" *p* is the observed service rate of peer *p*, and the selector
//! balances exploiting known-fast peers against re-probing others whose
//! state may have changed. We provide ε-greedy and UCB1, both learning
//! purely from [`SelectionOutcome`] feedback.

use std::collections::HashMap;

use netsim::node::NodeId;
use netsim::rng::SimRng;
use overlay::selector::{PeerSelector, SelectionOutcome, SelectionRequest};

/// Reward of one outcome: bytes/second for transfers, 1/seconds for pure
/// compute (both "bigger is better" rates).
fn reward(outcome: &SelectionOutcome) -> f64 {
    if !outcome.success {
        return 0.0;
    }
    let secs = outcome.elapsed_secs.max(1e-6);
    if outcome.bytes > 0 {
        outcome.bytes as f64 / secs
    } else {
        1.0 / secs
    }
}

/// ε-greedy bandit: explore a uniformly random peer with probability ε,
/// otherwise exploit the best observed mean reward.
pub struct EpsilonGreedySelector {
    epsilon: f64,
    rng: SimRng,
    means: HashMap<NodeId, (f64, u64)>, // (mean reward, pulls)
}

impl EpsilonGreedySelector {
    /// Creates the selector; typical `epsilon` is 0.1.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        EpsilonGreedySelector {
            epsilon: epsilon.clamp(0.0, 1.0),
            rng: SimRng::new(seed),
            means: HashMap::new(),
        }
    }

    /// Observed mean reward for a node (None = never tried).
    pub fn mean_reward(&self, node: NodeId) -> Option<f64> {
        self.means.get(&node).map(|(m, _)| *m)
    }
}

impl PeerSelector for EpsilonGreedySelector {
    fn name(&self) -> &str {
        "adaptive(epsilon-greedy)"
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        let n = req.candidates.len();
        if n == 0 {
            return None;
        }
        // Try every arm once before exploiting.
        if let Some(i) = req
            .candidates
            .iter()
            .position(|c| !self.means.contains_key(&c.node))
        {
            return Some(i);
        }
        if self.rng.bernoulli(self.epsilon) {
            return Some(self.rng.below(n as u64) as usize);
        }
        req.candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let ma = self.means[&a.node].0;
                let mb = self.means[&b.node].0;
                ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        let r = reward(outcome);
        let entry = self.means.entry(outcome.node).or_insert((0.0, 0));
        entry.1 += 1;
        entry.0 += (r - entry.0) / entry.1 as f64;
    }
}

/// UCB1 bandit: pick the arm maximizing `mean + c·√(ln t / pulls)`.
pub struct Ucb1Selector {
    exploration: f64,
    total_pulls: u64,
    arms: HashMap<NodeId, (f64, u64)>,
    /// Normalizer so rewards land roughly in [0, 1] (UCB1's assumption).
    reward_scale: f64,
}

impl Ucb1Selector {
    /// Creates the selector; `exploration` is the UCB `c` (√2 is classic),
    /// `reward_scale` should be an upper bound on typical rewards (e.g.
    /// 2e6 bytes/s for transfer workloads).
    pub fn new(exploration: f64, reward_scale: f64) -> Self {
        Ucb1Selector {
            exploration,
            total_pulls: 0,
            arms: HashMap::new(),
            reward_scale: reward_scale.max(1e-9),
        }
    }

    fn ucb(&self, node: NodeId) -> f64 {
        match self.arms.get(&node) {
            None => f64::INFINITY, // untried arms first
            Some((mean, pulls)) => {
                let t = (self.total_pulls.max(1)) as f64;
                mean / self.reward_scale + self.exploration * (t.ln() / *pulls as f64).sqrt()
            }
        }
    }
}

impl PeerSelector for Ucb1Selector {
    fn name(&self) -> &str {
        "adaptive(ucb1)"
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        if req.candidates.is_empty() {
            return None;
        }
        req.candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                self.ucb(a.node)
                    .partial_cmp(&self.ucb(b.node))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        self.total_pulls += 1;
        let r = reward(outcome);
        let entry = self.arms.entry(outcome.node).or_insert((0.0, 0));
        entry.1 += 1;
        entry.0 += (r - entry.0) / entry.1 as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;
    use overlay::id::{IdGenerator, PeerId};
    use overlay::selector::{CandidateView, InteractionHistory, Purpose};
    use overlay::stats::StatsSnapshot;

    fn candidates(n: usize) -> Vec<CandidateView> {
        let mut g = IdGenerator::new(3);
        (0..n)
            .map(|i| CandidateView {
                peer: PeerId::generate(&mut g),
                node: NodeId(i as u32),
                name: format!("n{i}").into(),
                cpu_gops: 1.0,
                snapshot: StatsSnapshot::empty(1.0),
                history: InteractionHistory::empty(),
            })
            .collect()
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    fn outcome(node: u32, bps: f64) -> SelectionOutcome {
        SelectionOutcome {
            node: NodeId(node),
            success: true,
            elapsed_secs: 1.0,
            bytes: bps as u64,
        }
    }

    /// Simulates a bandit loop where node 2 is truly the fastest.
    fn drive<S: PeerSelector>(selector: &mut S, rounds: usize) -> Vec<u32> {
        let c = candidates(4);
        let true_bps = [300_000.0, 500_000.0, 1_500_000.0, 800_000.0];
        let mut picks = Vec::new();
        for _ in 0..rounds {
            let i = selector.select(&req(&c)).unwrap();
            picks.push(i as u32);
            selector.on_outcome(&outcome(i as u32, true_bps[i]));
        }
        picks
    }

    #[test]
    fn epsilon_greedy_converges_to_best_arm() {
        let mut s = EpsilonGreedySelector::new(0.1, 42);
        let picks = drive(&mut s, 400);
        let best_share = picks.iter().filter(|&&p| p == 2).count() as f64 / picks.len() as f64;
        assert!(best_share > 0.7, "best arm share {best_share}");
        assert!(s.mean_reward(NodeId(2)).unwrap() > s.mean_reward(NodeId(0)).unwrap());
    }

    #[test]
    fn epsilon_greedy_tries_every_arm_first() {
        let mut s = EpsilonGreedySelector::new(0.0, 1);
        let picks = drive(&mut s, 4);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "each arm probed once");
    }

    #[test]
    fn epsilon_one_is_uniform_exploration() {
        let mut s = EpsilonGreedySelector::new(1.0, 7);
        let picks = drive(&mut s, 400);
        for arm in 0..4u32 {
            let share = picks.iter().filter(|&&p| p == arm).count() as f64 / 400.0;
            assert!(share > 0.1, "arm {arm} share {share}");
        }
    }

    #[test]
    fn ucb1_converges_to_best_arm() {
        let mut s = Ucb1Selector::new(std::f64::consts::SQRT_2, 2_000_000.0);
        let picks = drive(&mut s, 400);
        let late = &picks[200..];
        let best_share = late.iter().filter(|&&p| p == 2).count() as f64 / late.len() as f64;
        assert!(best_share > 0.6, "late best-arm share {best_share}");
    }

    #[test]
    fn ucb1_probes_all_arms() {
        let mut s = Ucb1Selector::new(1.0, 1e6);
        let picks = drive(&mut s, 12);
        let distinct: std::collections::HashSet<u32> = picks.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn failures_earn_zero_reward() {
        let fail = SelectionOutcome {
            node: NodeId(0),
            success: false,
            elapsed_secs: 1.0,
            bytes: 1_000_000,
        };
        assert_eq!(reward(&fail), 0.0);
        let compute = SelectionOutcome {
            node: NodeId(0),
            success: true,
            elapsed_secs: 4.0,
            bytes: 0,
        };
        assert!((reward(&compute) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_handled() {
        let mut e = EpsilonGreedySelector::new(0.1, 1);
        assert_eq!(e.select(&req(&[])), None);
        let mut u = Ucb1Selector::new(1.0, 1.0);
        assert_eq!(u.select(&req(&[])), None);
    }
}
