//! Per-shard, per-barrier-round execution profiling for the sharded
//! engine, with a Chrome `trace_event` exporter.
//!
//! [`ParallelProfile`](crate::parallel::ParallelProfile) folds a run into
//! two wall-clock sums; an [`ExecutionProfile`] keeps the full structure:
//! one [`ShardRound`] per shard per barrier round, carrying both the
//! **sim-time** shape of the window (start/end, width, events executed,
//! envelopes exchanged, idle-window collapses, lookahead stalls) and the
//! **wall-clock** cost of executing it (busy span, barrier wait).
//!
//! The two kinds of field deliberately live in two exporters:
//!
//! * [`ExecutionProfile::chrome_trace_json`] emits *only* sim-time and
//!   count fields — `ts`/`dur` are virtual-time microseconds — so the
//!   trace is byte-identical at any worker count and opens directly in
//!   Perfetto / `chrome://tracing` (one track per shard).
//! * [`ExecutionProfile::wall_clock_json`] carries the measured spans
//!   (busy, barrier wait) that vary run to run; it is a diagnostic
//!   artifact, never part of a determinism digest.
//!
//! A 100k-peer hour-long churn run takes ~90k barrier rounds; keeping a
//! record per shard-round would dominate the run's own memory. The
//! profile therefore caps stored records (default
//! [`ExecutionProfile::DEFAULT_ROUND_CAP`]) and counts what it dropped,
//! while per-shard totals always cover the whole run.

use std::fmt::Write as _;
use std::time::Duration;

use crate::time::{SimDuration, SimTime};

/// One shard's window within one barrier round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRound {
    /// Barrier round index (0-based).
    pub round: u64,
    /// Shard that executed the window.
    pub shard: u32,
    /// Shard clock when the window opened.
    pub start: SimTime,
    /// Window end bound (the clock parks here in an exclusive window).
    pub end: SimTime,
    /// Whether the window excluded events exactly at `end` (intermediate
    /// rounds) or included them (the final window up to the horizon).
    pub exclusive: bool,
    /// Events the shard processed inside the window.
    pub events: u64,
    /// Cross-shard envelopes this shard emitted during the window
    /// (counted at the barrier exchange that closes the round).
    pub envelopes_out: u64,
    /// Whether the shard had any queued event when the window opened.
    pub pending: bool,
    /// Wall-clock span the worker spent executing the window
    /// (non-deterministic; excluded from the Chrome trace).
    pub busy: Duration,
    /// Wall-clock gap to the round's slowest shard — time this shard's
    /// worker would have idled at the barrier with one core per shard
    /// (non-deterministic; excluded from the Chrome trace).
    pub barrier_wait: Duration,
}

impl ShardRound {
    /// Sim-time width of the window.
    pub fn width(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// An idle-window collapse: the shard had nothing queued and the
    /// round merely parked its clock forward.
    pub fn idle(&self) -> bool {
        self.events == 0 && !self.pending
    }

    /// A lookahead stall: the shard had work queued but the conservative
    /// bound was too narrow to reach it, so the round advanced the clock
    /// without executing anything.
    pub fn stalled(&self) -> bool {
        self.events == 0 && self.pending
    }
}

/// Whole-run totals for one shard; never truncated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTotals {
    /// Windows the shard executed (= barrier rounds).
    pub windows: u64,
    /// Events processed across all windows.
    pub events: u64,
    /// Cross-shard envelopes emitted across all exchanges.
    pub envelopes_out: u64,
    /// Idle-window collapses (see [`ShardRound::idle`]).
    pub idle_windows: u64,
    /// Lookahead stalls (see [`ShardRound::stalled`]).
    pub stalls: u64,
    /// Total wall-clock busy span.
    pub busy: Duration,
    /// Total wall-clock barrier wait.
    pub barrier_wait: Duration,
}

/// Per-shard, per-round accounting of a sharded run.
///
/// Built by [`ShardedEngine`](crate::parallel::ShardedEngine) when
/// profiling is enabled; see the module docs for the determinism split
/// between the two exporters.
#[derive(Debug, Clone)]
pub struct ExecutionProfile {
    totals: Vec<ShardTotals>,
    records: Vec<ShardRound>,
    rounds: u64,
    round_cap: usize,
    truncated: u64,
}

impl ExecutionProfile {
    /// Default cap on stored [`ShardRound`] records (per-shard totals are
    /// unaffected by the cap).
    pub const DEFAULT_ROUND_CAP: usize = 50_000;

    /// An empty profile over `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        ExecutionProfile {
            totals: vec![ShardTotals::default(); num_shards],
            records: Vec::new(),
            rounds: 0,
            round_cap: Self::DEFAULT_ROUND_CAP,
            truncated: 0,
        }
    }

    /// Overrides the stored-record cap (0 keeps totals only).
    pub fn set_round_cap(&mut self, cap: usize) {
        self.round_cap = cap;
    }

    /// Number of shards profiled.
    pub fn num_shards(&self) -> usize {
        self.totals.len()
    }

    /// Barrier rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Stored shard-round records, in (round, shard) order.
    pub fn records(&self) -> &[ShardRound] {
        &self.records
    }

    /// Shard-round records dropped after the cap filled.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Whole-run totals, indexed by shard.
    pub fn totals(&self) -> &[ShardTotals] {
        &self.totals
    }

    /// Envelopes emitted by the pre-round exchange (the `on_start` sends),
    /// which belong to no barrier round but do count toward totals.
    pub(crate) fn note_initial_exchange(&mut self, counts: &[u64]) {
        for (total, &n) in self.totals.iter_mut().zip(counts) {
            total.envelopes_out += n;
        }
    }

    /// Folds one completed barrier round (one record per shard, in shard
    /// order) into totals, storing records while the cap allows.
    pub(crate) fn push_round(&mut self, records: Vec<ShardRound>) {
        self.rounds += 1;
        for rec in records {
            let total = &mut self.totals[rec.shard as usize];
            total.windows += 1;
            total.events += rec.events;
            total.envelopes_out += rec.envelopes_out;
            total.idle_windows += u64::from(rec.idle());
            total.stalls += u64::from(rec.stalled());
            total.busy += rec.busy;
            total.barrier_wait += rec.barrier_wait;
            if self.records.len() < self.round_cap {
                self.records.push(rec);
            } else {
                self.truncated += 1;
            }
        }
    }

    /// Chrome `trace_event` JSON of the stored records: one complete
    /// (`"ph":"X"`) event per shard-round with **virtual-time**
    /// microsecond `ts`/`dur`, one track per shard (`pid` 0, `tid` =
    /// shard), `thread_name` metadata so Perfetto labels the tracks, and
    /// events stably sorted by `ts`. Deterministic: wall-clock spans are
    /// deliberately absent (see [`ExecutionProfile::wall_clock_json`]).
    pub fn chrome_trace_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.records[i];
            (r.start.as_nanos(), r.shard, r.round)
        });
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for shard in 0..self.totals.len() {
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{shard},\
                 \"args\":{{\"name\":\"shard {shard}\"}}}}"
            )
            .expect("string write");
        }
        for &i in &order {
            let r = &self.records[i];
            let ts = r.start.as_nanos() / 1_000;
            let dur = r.width().as_nanos() / 1_000;
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "{{\"name\":\"round {}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{ts},\"dur\":{dur},\"args\":{{\"round\":{},\"events\":{},\
                 \"envelopes_out\":{},\"exclusive\":{},\"idle\":{},\"stalled\":{}}}}}",
                r.round,
                r.shard,
                r.round,
                r.events,
                r.envelopes_out,
                r.exclusive,
                r.idle(),
                r.stalled()
            )
            .expect("string write");
        }
        out.push_str("]}");
        out
    }

    /// Wall-clock summary JSON: per-shard busy and barrier-wait spans plus
    /// record-cap accounting. Non-deterministic by nature — keep it out of
    /// determinism digests and byte-diffed artifacts.
    pub fn wall_clock_json(&self) -> String {
        let mut out = format!(
            "{{\"rounds\":{},\"stored_records\":{},\"truncated_records\":{},\
             \"shards\":[",
            self.rounds,
            self.records.len(),
            self.truncated
        );
        for (shard, t) in self.totals.iter().enumerate() {
            if shard > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"shard\":{shard},\"windows\":{},\"events\":{},\
                 \"envelopes_out\":{},\"idle_windows\":{},\"stalls\":{},\
                 \"busy_secs\":{},\"barrier_wait_secs\":{}}}",
                t.windows,
                t.events,
                t.envelopes_out,
                t.idle_windows,
                t.stalls,
                t.busy.as_secs_f64(),
                t.barrier_wait.as_secs_f64()
            )
            .expect("string write");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(round: u64, shard: u32, start_s: u64, end_s: u64, events: u64) -> ShardRound {
        ShardRound {
            round,
            shard,
            start: SimTime::ZERO + SimDuration::from_secs(start_s),
            end: SimTime::ZERO + SimDuration::from_secs(end_s),
            exclusive: true,
            events,
            envelopes_out: 1,
            pending: events > 0,
            busy: Duration::from_micros(5),
            barrier_wait: Duration::ZERO,
        }
    }

    #[test]
    fn totals_survive_truncation() {
        let mut p = ExecutionProfile::new(2);
        p.set_round_cap(2);
        p.push_round(vec![round(0, 0, 0, 1, 3), round(0, 1, 0, 1, 0)]);
        p.push_round(vec![round(1, 0, 1, 2, 2), round(1, 1, 1, 2, 4)]);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.records().len(), 2, "cap holds");
        assert_eq!(p.truncated(), 2);
        assert_eq!(p.totals()[0].events, 5, "totals ignore the cap");
        assert_eq!(p.totals()[1].events, 4);
        assert_eq!(p.totals()[1].idle_windows, 1, "round 0 shard 1 was idle");
    }

    #[test]
    fn idle_and_stall_are_distinguished_by_pending() {
        let mut idle = round(0, 0, 0, 1, 0);
        idle.pending = false;
        assert!(idle.idle() && !idle.stalled());
        let mut stall = round(0, 0, 0, 1, 0);
        stall.pending = true;
        assert!(stall.stalled() && !stall.idle());
        assert_eq!(idle.width(), SimDuration::from_secs(1));
    }

    #[test]
    fn chrome_trace_is_sorted_and_wall_clock_free() {
        let mut p = ExecutionProfile::new(2);
        // Push rounds whose start times interleave across shards.
        p.push_round(vec![round(0, 0, 5, 6, 1), round(0, 1, 0, 2, 1)]);
        p.push_round(vec![round(1, 0, 6, 8, 1), round(1, 1, 2, 4, 1)]);
        let json = p.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(!json.contains("busy"), "wall-clock fields stay out");
        // Extract ts values in order and check monotonicity.
        let ts: Vec<u64> = json
            .match_indices("\"ts\":")
            .map(|(i, _)| {
                json[i + 5..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .expect("ts digits")
            })
            .collect();
        assert_eq!(ts.len(), 4);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "events sorted by ts");
        let wall = p.wall_clock_json();
        assert!(wall.contains("\"busy_secs\":"));
        assert!(wall.contains("\"rounds\":2"));
    }
}
