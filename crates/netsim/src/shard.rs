//! Shard domains for the parallel engine: the fixed node→shard map and the
//! conservative-lookahead horizon math.
//!
//! A shard is a subset of the topology's nodes that owns its own event
//! queue, clock, and RNG streams (see [`crate::parallel::ShardedEngine`]).
//! Two facts make bounded-window parallel execution safe:
//!
//! 1. The map is **fixed** for the whole run, so every message knows at
//!    send time whether it crosses a shard boundary.
//! 2. Every cross-shard message is delayed by at least the minimum one-way
//!    propagation delay between the two shards: the transport model never
//!    delivers before `send_time + one_way_delay` (jitter, serialization,
//!    receiver queueing and service delay only add time).
//!
//! Therefore a shard whose local clock is `T` can safely process every
//! event below `min over other shards s of (clock(s) + delay(s → me))`
//! without ever receiving a message "from the past".

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// SplitMix64 step shared with [`crate::rng`]; re-exposed here so the
/// shard-seed chain uses the exact same mixing discipline as the per-node
/// seed derivation (and the sweep layer's cell-seed chain).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the master seed of shard `shard` from the run's master seed.
///
/// Chained SplitMix64, mirroring the sweep layer's cell-seed discipline:
/// the label perturbs the state, then two mix steps decorrelate adjacent
/// shards. Deterministic and independent of worker count by construction.
pub fn shard_seed(master: u64, shard: u64) -> u64 {
    let mut state = master ^ shard.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut state);
    splitmix64(&mut state)
}

/// Why a [`ShardMap`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The assignment vector was empty.
    Empty,
    /// Shard ids must be dense: every id in `0..num_shards` must own at
    /// least one node. Carries the first unused shard id.
    UnusedShard(usize),
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapError::Empty => write!(f, "shard assignment is empty"),
            ShardMapError::UnusedShard(s) => {
                write!(f, "shard {s} owns no node (shard ids must be dense)")
            }
        }
    }
}

impl std::error::Error for ShardMapError {}

/// Fixed assignment of every node to exactly one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    assignment: Vec<usize>,
    num_shards: usize,
}

impl ShardMap {
    /// The degenerate single-shard map over `n` nodes (serial semantics).
    pub fn single(n: usize) -> Self {
        ShardMap {
            assignment: vec![0; n],
            num_shards: 1,
        }
    }

    /// Builds a map from an explicit node→shard assignment (index =
    /// [`NodeId`] index). Shard ids must be dense starting at 0.
    pub fn from_assignment(assignment: Vec<usize>) -> Result<Self, ShardMapError> {
        if assignment.is_empty() {
            return Err(ShardMapError::Empty);
        }
        let num_shards = assignment.iter().copied().max().unwrap_or(0) + 1;
        let mut used = vec![false; num_shards];
        for &s in &assignment {
            used[s] = true;
        }
        if let Some(unused) = used.iter().position(|&u| !u) {
            return Err(ShardMapError::UnusedShard(unused));
        }
        Ok(ShardMap {
            assignment,
            num_shards,
        })
    }

    /// A round-robin map: node `i` goes to shard `i % shards`. Useful for
    /// determinism checks on testbeds without a natural region structure.
    pub fn modulo(n: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(n.max(1));
        ShardMap {
            assignment: (0..n).map(|i| i % shards).collect(),
            num_shards: shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The shard that owns `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// The raw node→shard assignment (index = node index).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The nodes owned by `shard`, in node-id order.
    pub fn nodes_of(&self, shard: usize) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Builds the pairwise lookahead table for this map over `topo`.
    pub fn lookahead(&self, topo: &Topology) -> LookaheadTable {
        LookaheadTable::new(self, topo)
    }
}

/// Minimum cross-shard one-way delays, the input to the conservative
/// horizon computation.
///
/// `delta[s][t]` (s ≠ t) is the smallest one-way propagation delay of any
/// directed path from a node of shard `s` to a node of shard `t` — the
/// soonest a message sent by `s` at time `x` can become visible to `t`.
#[derive(Debug, Clone)]
pub struct LookaheadTable {
    num_shards: usize,
    /// Row-major `num_shards × num_shards`; diagonal unused (MAX).
    delta: Vec<SimDuration>,
}

impl LookaheadTable {
    fn new(map: &ShardMap, topo: &Topology) -> Self {
        let k = map.num_shards();
        assert_eq!(
            map.len(),
            topo.len(),
            "shard map covers {} nodes but the topology has {}",
            map.len(),
            topo.len()
        );
        let mut delta = vec![SimDuration::MAX; k * k];
        if let Some((group_of, num_groups, inter)) = topo.blocked_layout() {
            // Blocked fast path: the a→b delay depends only on the group
            // pair, so a per-shard group-presence scan (O(n)) plus a
            // S²G² sweep over the inter-group matrix replaces the O(n²)
            // all-pairs walk. A group that spans two shards contributes
            // its *intra*-group path (the matrix diagonal) to that pair.
            let mut present = vec![false; k * num_groups];
            for (i, &g) in group_of.iter().enumerate() {
                present[map.assignment()[i] * num_groups + g as usize] = true;
            }
            for sa in 0..k {
                for sb in 0..k {
                    if sa == sb {
                        continue;
                    }
                    let cell = &mut delta[sa * k + sb];
                    for ga in 0..num_groups {
                        if !present[sa * num_groups + ga] {
                            continue;
                        }
                        for gb in 0..num_groups {
                            if !present[sb * num_groups + gb] {
                                continue;
                            }
                            let owd = inter[ga * num_groups + gb].one_way_delay;
                            if owd < *cell {
                                *cell = owd;
                            }
                        }
                    }
                }
            }
        } else {
            for a in topo.node_ids() {
                let sa = map.shard_of(a);
                for b in topo.node_ids() {
                    let sb = map.shard_of(b);
                    if sa == sb {
                        continue;
                    }
                    let owd = topo.path(a, b).one_way_delay;
                    let cell = &mut delta[sa * k + sb];
                    if owd < *cell {
                        *cell = owd;
                    }
                }
            }
        }
        LookaheadTable {
            num_shards: k,
            delta,
        }
    }

    /// Number of shards the table covers.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Minimum one-way delay from any node of `from` to any node of `to`
    /// (`from` ≠ `to`; the diagonal is meaningless and returns MAX).
    pub fn cross_delay(&self, from: usize, to: usize) -> SimDuration {
        self.delta[from * self.num_shards + to]
    }

    /// The global conservative lookahead: the smallest cross-shard delay
    /// over all ordered shard pairs. `None` for a single-shard table (no
    /// cross-shard constraint: the shard may run to the run horizon).
    pub fn min_cross_delay(&self) -> Option<SimDuration> {
        if self.num_shards <= 1 {
            return None;
        }
        let mut min = SimDuration::MAX;
        for s in 0..self.num_shards {
            for t in 0..self.num_shards {
                if s != t && self.delta[s * self.num_shards + t] < min {
                    min = self.delta[s * self.num_shards + t];
                }
            }
        }
        Some(min)
    }

    /// The horizon below which `shard` may safely run, given each shard's
    /// *promise* — the earliest instant it could still produce a
    /// cross-shard send: `min over s ≠ shard of (clocks[s] +
    /// delta[s][shard])`. Callers may pass bare clocks (always a valid,
    /// conservative promise) or sharpen the bound with next-event times, as
    /// the parallel engine does between barriers; addition saturates, so
    /// [`SimTime::FAR_FUTURE`] promises (idle shards) impose no constraint.
    ///
    /// [`SimTime::FAR_FUTURE`] for the single-shard degenerate case —
    /// nothing constrains a lone shard.
    pub fn horizon_for(&self, shard: usize, clocks: &[SimTime]) -> SimTime {
        assert_eq!(clocks.len(), self.num_shards, "one clock per shard");
        let mut horizon = SimTime::FAR_FUTURE;
        for (s, &clock) in clocks.iter().enumerate() {
            if s == shard {
                continue;
            }
            let d = self.delta[s * self.num_shards + shard];
            if d == SimDuration::MAX {
                continue; // no path from s to shard: no constraint
            }
            let bound = clock + d;
            if bound < horizon {
                horizon = bound;
            }
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{AccessLink, PathSpec};
    use crate::node::NodeSpec;

    fn topo4(owds_ms: &[(u32, u32, f64)]) -> Topology {
        let mut t = Topology::new();
        for i in 0..4 {
            t.add_node(NodeSpec::responsive(format!("n{i}")), AccessLink::default());
        }
        for &(a, b, ms) in owds_ms {
            t.set_path_symmetric(NodeId(a), NodeId(b), PathSpec::from_owd_ms(ms, 0.0));
        }
        t
    }

    #[test]
    fn from_assignment_validates_density() {
        assert_eq!(
            ShardMap::from_assignment(vec![]).unwrap_err(),
            ShardMapError::Empty
        );
        assert_eq!(
            ShardMap::from_assignment(vec![0, 2]).unwrap_err(),
            ShardMapError::UnusedShard(1)
        );
        let map = ShardMap::from_assignment(vec![0, 1, 1, 0]).unwrap();
        assert_eq!(map.num_shards(), 2);
        assert_eq!(map.nodes_of(1), vec![NodeId(1), NodeId(2)]);
        assert_eq!(map.shard_of(NodeId(3)), 0);
    }

    #[test]
    fn modulo_map_round_robins() {
        let map = ShardMap::modulo(5, 2);
        assert_eq!(map.assignment(), &[0, 1, 0, 1, 0]);
        // Never more shards than nodes, never zero shards.
        assert_eq!(ShardMap::modulo(2, 8).num_shards(), 2);
        assert_eq!(ShardMap::modulo(3, 0).num_shards(), 1);
    }

    #[test]
    fn single_shard_horizon_is_unbounded() {
        // Degenerate case: one shard has no neighbors, so the lookahead
        // horizon must never constrain it.
        let t = topo4(&[]);
        let table = ShardMap::single(4).lookahead(&t);
        assert_eq!(table.min_cross_delay(), None);
        assert_eq!(
            table.horizon_for(0, &[SimTime::from_secs_f64(5.0)]),
            SimTime::FAR_FUTURE
        );
    }

    #[test]
    fn cross_delay_takes_the_minimum_link() {
        // Shards {0,1} and {2,3}; cross links 40 ms, 60 ms, 80 ms → 40 ms.
        let t = topo4(&[
            (0, 2, 40.0),
            (0, 3, 60.0),
            (1, 2, 80.0),
            (1, 3, 80.0),
            (0, 1, 2.0),
            (2, 3, 2.0),
        ]);
        let map = ShardMap::from_assignment(vec![0, 0, 1, 1]).unwrap();
        let table = map.lookahead(&t);
        assert_eq!(
            table.cross_delay(0, 1),
            SimDuration::from_millis(40),
            "minimum over all cross links"
        );
        assert_eq!(table.min_cross_delay(), Some(SimDuration::from_millis(40)));
    }

    #[test]
    fn min_rtt_tie_is_stable() {
        // Two distinct cross links share the same minimum delay: the table
        // must pick that value (ties cannot make the bound ambiguous) and
        // both directions must agree for symmetric paths.
        let t = topo4(&[(0, 2, 25.0), (1, 3, 25.0), (0, 3, 90.0), (1, 2, 90.0)]);
        let map = ShardMap::from_assignment(vec![0, 0, 1, 1]).unwrap();
        let table = map.lookahead(&t);
        assert_eq!(table.cross_delay(0, 1), SimDuration::from_millis(25));
        assert_eq!(table.cross_delay(1, 0), SimDuration::from_millis(25));
        assert_eq!(table.min_cross_delay(), Some(SimDuration::from_millis(25)));
    }

    #[test]
    fn horizon_is_min_over_neighbor_clocks_plus_delay() {
        let t = topo4(&[
            (0, 1, 10.0),
            (0, 2, 20.0),
            (0, 3, 30.0),
            (1, 2, 50.0),
            (1, 3, 50.0),
            (2, 3, 50.0),
        ]);
        let map = ShardMap::from_assignment(vec![0, 1, 2, 3]).unwrap();
        let table = map.lookahead(&t);
        let clocks = [
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(3.0),
        ];
        // Shard 0's bound: min(1.0+0.010, 2.0+0.020, 3.0+0.030) = 1.010.
        assert_eq!(table.horizon_for(0, &clocks), SimTime::from_secs_f64(1.010));
        // Shard 3's bound: min(1.0+0.030, 1.0+0.050, 2.0+0.050) = 1.030.
        assert_eq!(table.horizon_for(3, &clocks), SimTime::from_secs_f64(1.030));
    }

    #[test]
    fn blocked_lookahead_matches_dense_semantics() {
        // Two groups: intra 3 ms, cross 30/45 ms. Nodes 0,1 in group 0;
        // nodes 2,3 in group 1. Shards split *within* group 0, so the
        // shard-0↔shard-1 bound must use the intra-group diagonal (3 ms),
        // while pairs separated along group lines see the cross path.
        let mut t = Topology::blocked(2);
        for i in 0..4 {
            t.add_node_in_group(
                NodeSpec::responsive(format!("n{i}")),
                AccessLink::default(),
                (i / 2) as u32,
            );
        }
        t.set_group_path(0, 0, PathSpec::from_owd_ms(3.0, 0.0));
        t.set_group_path(1, 1, PathSpec::from_owd_ms(3.0, 0.0));
        t.set_group_path(0, 1, PathSpec::from_owd_ms(30.0, 0.0));
        t.set_group_path(1, 0, PathSpec::from_owd_ms(45.0, 0.0));

        // Shards along group lines: cross delays are the inter-group owds.
        let map = ShardMap::from_assignment(vec![0, 0, 1, 1]).unwrap();
        let table = map.lookahead(&t);
        assert_eq!(table.cross_delay(0, 1), SimDuration::from_millis(30));
        assert_eq!(table.cross_delay(1, 0), SimDuration::from_millis(45));

        // Group 0 split across shards: the diagonal (intra) path governs.
        let map = ShardMap::from_assignment(vec![0, 1, 1, 1]).unwrap();
        let table = map.lookahead(&t);
        assert_eq!(table.cross_delay(0, 1), SimDuration::from_millis(3));
        assert_eq!(table.cross_delay(1, 0), SimDuration::from_millis(3));
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        assert_eq!(shard_seed(42, 0), shard_seed(42, 0));
        assert_ne!(shard_seed(42, 0), shard_seed(42, 1));
        assert_ne!(shard_seed(42, 1), shard_seed(43, 1));
    }
}
