//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so two events scheduled for the same instant fire in
//! insertion order (FIFO). This tie-breaking rule is what makes the engine
//! deterministic — `BinaryHeap` alone gives an arbitrary order for equal
//! keys, which would leak nondeterminism into every simultaneous delivery.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Internal heap entry; ordered so the *earliest* `(time, seq)` pops first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min entry on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
        }
    }

    /// Schedules `payload` to fire at `time`. Events at equal times fire in
    /// the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, payload });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a cheap progress/health metric).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Largest number of events that were ever pending at once. Like
    /// [`EventQueue::scheduled_total`], monotone over the queue's lifetime
    /// and not reset by [`EventQueue::clear`].
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drops all pending events. Lifetime counters
    /// ([`EventQueue::scheduled_total`], [`EventQueue::peak_len`]) are
    /// preserved.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "first");
        assert_eq!(q.pop().unwrap().1, "first");
        q.schedule(t(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2, "total is monotone, not reset");
    }

    #[test]
    fn clear_preserves_lifetime_counters_and_queue_still_works() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(t(i), i);
        }
        q.pop();
        q.clear();
        assert_eq!(q.scheduled_total(), 5);
        assert_eq!(q.peak_len(), 5);
        // Scheduling after clear keeps counting from where it left off.
        q.schedule(t(9), 9);
        assert_eq!(q.scheduled_total(), 6);
        assert_eq!(q.peak_len(), 5, "peak not beaten by a single event");
        assert_eq!(q.pop(), Some((t(9), 9)));
    }

    #[test]
    fn peak_len_tracks_maximum_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.schedule(t(3), 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.peak_len(), 3, "peak is monotone");
        q.schedule(t(4), 4);
        assert_eq!(q.peak_len(), 3, "occupancy 2 does not beat peak 3");
        q.schedule(t(5), 5);
        q.schedule(t(6), 6);
        assert_eq!(q.peak_len(), 4, "new maximum recorded");
    }

    #[test]
    fn zero_time_events_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, "boot");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "boot")));
    }
}
