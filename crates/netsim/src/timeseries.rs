//! Windowed time-series recording over the metrics registry.
//!
//! A [`TimeSeriesRecorder`] snapshots a fixed set of derived series at
//! fixed sim-time intervals, producing rows keyed **only by virtual time**.
//! Because sampling instants are sim-time boundaries — never wall-clock
//! moments — the exported CSV/JSONL is byte-identical for any shard-worker
//! count: the engines decide *when* a boundary has definitively passed
//! (every event at or before it has run), and the metrics merged at that
//! point are themselves worker-count invariant.
//!
//! Two sampling disciplines share this recorder:
//!
//! * The serial [`Engine`](crate::engine::Engine) samples a boundary the
//!   moment the next queued event lies strictly beyond it, so a row is
//!   exactly "the metrics after all events at `t <= boundary`".
//! * The [`ShardedEngine`](crate::parallel::ShardedEngine) samples at
//!   barrier rounds: a boundary is emitted at the first barrier whose
//!   minimum shard clock has passed it, with the per-shard metrics merged
//!   in shard order. Shards run ahead of the boundary inside their
//!   conservative windows, so a row reads "metrics at the first barrier
//!   after the boundary" — a coarser but equally deterministic discipline,
//!   since the barrier schedule is a pure function of shard states.
//!
//! Series are *derived*: each column evaluates a [`SeriesSource`]
//! expression (counters, gauges, prefix sums, differences, ratios) against
//! the current registry, in [`SeriesMode::Cumulative`] or
//! [`SeriesMode::Delta`] form.

use std::fmt;

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// How a series reports its underlying value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesMode {
    /// The value as evaluated at the boundary.
    Cumulative,
    /// The change since the previous boundary (first row: change since
    /// zero). A window in which nothing moved yields an explicit `0` row.
    Delta,
}

/// A derived observable: how one series column is computed from the
/// metrics registry at each sampling boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesSource {
    /// A named counter (0 when absent).
    Counter(String),
    /// Sum of every counter whose name starts with the prefix.
    CounterPrefix(String),
    /// A named gauge (0 when absent).
    Gauge(String),
    /// Sum of every gauge whose name starts with the prefix.
    GaugePrefix(String),
    /// Sum of sub-expressions.
    Sum(Vec<SeriesSource>),
    /// First minus second (may go negative).
    Diff(Box<SeriesSource>, Box<SeriesSource>),
    /// First over second; `0` when the denominator is zero, so a ratio
    /// series is total before its denominator first moves.
    Ratio(Box<SeriesSource>, Box<SeriesSource>),
}

impl SeriesSource {
    /// Evaluates the expression against `metrics`.
    pub fn eval(&self, metrics: &Metrics) -> f64 {
        match self {
            SeriesSource::Counter(name) => metrics.counter(name) as f64,
            SeriesSource::CounterPrefix(prefix) => metrics
                .counters_sorted()
                .filter(|(name, _)| name.starts_with(prefix.as_str()))
                .map(|(_, v)| v as f64)
                .sum(),
            SeriesSource::Gauge(name) => metrics.gauge(name),
            SeriesSource::GaugePrefix(prefix) => metrics
                .gauges_sorted()
                .filter(|(name, _)| name.starts_with(prefix.as_str()))
                .map(|(_, v)| v)
                .sum(),
            SeriesSource::Sum(terms) => terms.iter().map(|t| t.eval(metrics)).sum(),
            SeriesSource::Diff(a, b) => a.eval(metrics) - b.eval(metrics),
            SeriesSource::Ratio(num, den) => {
                let d = den.eval(metrics);
                if d == 0.0 {
                    0.0
                } else {
                    num.eval(metrics) / d
                }
            }
        }
    }
}

/// Interned handle to a registered series column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(u32);

/// Why a [`TimeSeriesRecorder`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSeriesError {
    /// The sampling interval was zero: every boundary would coincide and
    /// the recorder would emit unbounded rows at a single instant.
    ZeroInterval,
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::ZeroInterval => {
                write!(f, "time-series sampling interval must be positive")
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

/// One emitted sample row: the boundary instant plus one value per
/// registered series, in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// The sim-time boundary this row belongs to.
    pub t: SimTime,
    /// Column values, indexed like the registration order.
    pub values: Vec<f64>,
}

/// Records registered series at fixed sim-time boundaries.
///
/// Boundaries sit at `k * interval` for `k = 0, 1, 2, …`; the `t = 0` row
/// captures post-`on_start` state. Engines drive the recorder through
/// [`TimeSeriesRecorder::sample_before`] (while running) and
/// [`TimeSeriesRecorder::sample_up_to`] (at the end of a run, so the row
/// exactly at the horizon is emitted). Rows are monotone in `t` and each
/// boundary is emitted at most once, so repeated calls are idempotent.
#[derive(Debug, Clone)]
pub struct TimeSeriesRecorder {
    interval: SimDuration,
    names: Vec<String>,
    sources: Vec<(SeriesSource, SeriesMode)>,
    prev: Vec<f64>,
    rows: Vec<SeriesRow>,
    next_boundary: SimTime,
}

impl TimeSeriesRecorder {
    /// Creates a recorder sampling every `interval` of virtual time.
    /// Rejects a zero interval.
    pub fn new(interval: SimDuration) -> Result<Self, TimeSeriesError> {
        if interval == SimDuration::ZERO {
            return Err(TimeSeriesError::ZeroInterval);
        }
        Ok(TimeSeriesRecorder {
            interval,
            names: Vec::new(),
            sources: Vec::new(),
            prev: Vec::new(),
            rows: Vec::new(),
            next_boundary: SimTime::ZERO,
        })
    }

    /// Registers a series column named `name`, computed by `source` and
    /// reported per `mode`. Columns appear in exports in registration
    /// order. Must be called before the first sample lands.
    pub fn register(&mut self, name: &str, source: SeriesSource, mode: SeriesMode) -> SeriesId {
        assert!(
            self.rows.is_empty(),
            "register series before sampling starts"
        );
        let id = u32::try_from(self.names.len()).expect("too many series");
        self.names.push(name.to_string());
        self.sources.push((source, mode));
        self.prev.push(0.0);
        SeriesId(id)
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Registered column names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Whether any boundary at or before `now` is still unemitted — the
    /// cheap guard callers check before paying for a metrics merge.
    pub fn due(&self, now: SimTime) -> bool {
        self.next_boundary <= now
    }

    /// Emits every pending boundary **strictly before** `frontier`.
    ///
    /// `frontier` is the earliest instant that may still receive events
    /// (the next queued event time, or the minimum shard clock at a
    /// barrier): a boundary exactly at the frontier stays pending until
    /// the frontier passes it.
    pub fn sample_before(&mut self, frontier: SimTime, metrics: &Metrics) {
        while self.next_boundary < frontier {
            self.emit_row(metrics);
        }
    }

    /// Emits every pending boundary **up to and including** `end` — the
    /// end-of-run flush, where `end` is the final virtual time and every
    /// event at or before it has run. Guarantees the snapshot exactly at
    /// the horizon when the horizon is a boundary.
    pub fn sample_up_to(&mut self, end: SimTime, metrics: &Metrics) {
        while self.next_boundary <= end {
            self.emit_row(metrics);
        }
    }

    fn emit_row(&mut self, metrics: &Metrics) {
        let t = self.next_boundary;
        self.next_boundary = t + self.interval;
        let mut values = Vec::with_capacity(self.sources.len());
        for (i, (source, mode)) in self.sources.iter().enumerate() {
            let current = source.eval(metrics);
            let value = match mode {
                SeriesMode::Cumulative => current,
                SeriesMode::Delta => current - self.prev[i],
            };
            self.prev[i] = current;
            // An empty prefix sum evaluates to -0.0 (the float Sum
            // identity); +0.0 normalizes it so exports never print "-0".
            values.push(value + 0.0);
        }
        self.rows.push(SeriesRow { t, values });
    }

    /// The emitted rows, in boundary order.
    pub fn rows(&self) -> &[SeriesRow] {
        &self.rows
    }

    /// Number of emitted rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no row has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Deterministic CSV export: header `t_secs,<names…>`, one row per
    /// boundary, values via Rust's shortest-roundtrip `Display`.
    pub fn to_csv(&self) -> String {
        use fmt::Write as _;
        let mut out = String::from("t_secs");
        for name in &self.names {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for row in &self.rows {
            write!(out, "{}", row.t.as_secs_f64()).expect("string write");
            for v in &row.values {
                write!(out, ",{v}").expect("string write");
            }
            out.push('\n');
        }
        out
    }

    /// Deterministic JSONL export: one object per row, `t_secs` first,
    /// then each series under its registered name in registration order.
    /// Non-finite values render as `null`.
    pub fn to_jsonl(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for row in &self.rows {
            write!(out, "{{\"t_secs\":{}", row.t.as_secs_f64()).expect("string write");
            for (name, v) in self.names.iter().zip(&row.values) {
                if v.is_finite() {
                    write!(out, ",\"{name}\":{v}").expect("string write");
                } else {
                    write!(out, ",\"{name}\":null").expect("string write");
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn recorder() -> TimeSeriesRecorder {
        let mut rec = TimeSeriesRecorder::new(SimDuration::from_secs(10)).expect("interval");
        rec.register(
            "sent",
            SeriesSource::Counter("net.messages_sent".into()),
            SeriesMode::Cumulative,
        );
        rec.register(
            "sent_rate",
            SeriesSource::Counter("net.messages_sent".into()),
            SeriesMode::Delta,
        );
        rec
    }

    #[test]
    fn zero_interval_is_rejected() {
        assert_eq!(
            TimeSeriesRecorder::new(SimDuration::ZERO).unwrap_err(),
            TimeSeriesError::ZeroInterval
        );
        assert!(!TimeSeriesError::ZeroInterval.to_string().is_empty());
    }

    #[test]
    fn boundaries_emit_before_frontier_and_at_horizon() {
        let mut rec = recorder();
        let mut m = Metrics::new();
        m.incr("net.messages_sent", 5);
        // Frontier at 25 s: boundaries 0, 10, 20 are complete; 30 is not.
        rec.sample_before(secs(25), &m);
        assert_eq!(rec.len(), 3);
        m.incr("net.messages_sent", 7);
        // A frontier exactly on a boundary leaves that boundary pending.
        rec.sample_before(secs(30), &m);
        assert_eq!(rec.len(), 3, "boundary at the frontier must wait");
        // End-of-run flush at the horizon emits the row exactly at it.
        rec.sample_up_to(secs(30), &m);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.rows()[3].t, secs(30));
        assert_eq!(rec.rows()[3].values, vec![12.0, 7.0]);
        // Idempotent: nothing more to emit at the same horizon.
        rec.sample_up_to(secs(30), &m);
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn empty_windows_produce_zero_delta_rows() {
        let mut rec = recorder();
        let mut m = Metrics::new();
        m.incr("net.messages_sent", 4);
        rec.sample_up_to(secs(0), &m);
        // Nothing moves for five windows: the gap is explicit zeros, not
        // missing rows.
        rec.sample_up_to(secs(50), &m);
        assert_eq!(rec.len(), 6);
        assert_eq!(rec.rows()[0].values, vec![4.0, 4.0]);
        for row in &rec.rows()[1..] {
            assert_eq!(row.values[0], 4.0, "cumulative holds");
            assert_eq!(row.values[1], 0.0, "delta of an empty window is 0");
        }
    }

    #[test]
    fn derived_sources_evaluate() {
        let mut m = Metrics::new();
        m.incr("churn.joins", 10);
        m.incr("churn.rejoins", 4);
        m.incr("churn.leaves", 6);
        m.set_gauge("registry.bytes.1", 100.0);
        m.set_gauge("registry.bytes.2", 50.0);
        m.set_gauge("registry.peers.1", 5.0);

        let connected = SeriesSource::Diff(
            Box::new(SeriesSource::Sum(vec![
                SeriesSource::Counter("churn.joins".into()),
                SeriesSource::Counter("churn.rejoins".into()),
            ])),
            Box::new(SeriesSource::Counter("churn.leaves".into())),
        );
        assert_eq!(connected.eval(&m), 8.0);
        assert_eq!(
            SeriesSource::GaugePrefix("registry.bytes.".into()).eval(&m),
            150.0
        );
        assert_eq!(SeriesSource::CounterPrefix("churn.".into()).eval(&m), 20.0);
        let per_peer = SeriesSource::Ratio(
            Box::new(SeriesSource::GaugePrefix("registry.bytes.".into())),
            Box::new(SeriesSource::GaugePrefix("registry.peers.".into())),
        );
        assert_eq!(per_peer.eval(&m), 30.0);
        let degenerate = SeriesSource::Ratio(
            Box::new(SeriesSource::Counter("churn.joins".into())),
            Box::new(SeriesSource::Counter("absent".into())),
        );
        assert_eq!(degenerate.eval(&m), 0.0, "zero denominator reads as 0");
    }

    #[test]
    fn csv_and_jsonl_are_stable() {
        let mut rec = recorder();
        let mut m = Metrics::new();
        rec.sample_up_to(secs(0), &m);
        m.incr("net.messages_sent", 3);
        rec.sample_up_to(secs(10), &m);
        assert_eq!(rec.to_csv(), "t_secs,sent,sent_rate\n0,0,0\n10,3,3\n");
        assert_eq!(
            rec.to_jsonl(),
            "{\"t_secs\":0,\"sent\":0,\"sent_rate\":0}\n\
             {\"t_secs\":10,\"sent\":3,\"sent_rate\":3}\n"
        );
    }
}
