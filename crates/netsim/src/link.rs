//! Access links and wide-area paths.
//!
//! The topology is a full overlay mesh: each node owns an **access link**
//! (its campus/ISP uplink and downlink), and any pair of nodes is connected
//! through the core with a propagation delay derived from geography. The
//! core is assumed overprovisioned — the bottleneck is always an access link
//! or TCP's loss/RTT bound, which matches wide-area measurement practice.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Per-node access-link characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessLink {
    /// Uplink capacity in bytes/second.
    pub up_bytes_per_sec: f64,
    /// Downlink capacity in bytes/second.
    pub down_bytes_per_sec: f64,
    /// Packet-loss probability on this access link (one-way, per packet).
    pub loss: f64,
}

impl AccessLink {
    /// A symmetric link of `mbit` megabits per second with the given loss.
    pub fn symmetric_mbps(mbit: f64, loss: f64) -> Self {
        let bps = mbit * 1_000_000.0 / 8.0;
        AccessLink {
            up_bytes_per_sec: bps,
            down_bytes_per_sec: bps,
            loss: loss.clamp(0.0, 1.0),
        }
    }

    /// An asymmetric link (`up`/`down` in Mbit/s).
    pub fn asymmetric_mbps(up_mbit: f64, down_mbit: f64, loss: f64) -> Self {
        AccessLink {
            up_bytes_per_sec: up_mbit * 1_000_000.0 / 8.0,
            down_bytes_per_sec: down_mbit * 1_000_000.0 / 8.0,
            loss: loss.clamp(0.0, 1.0),
        }
    }
}

impl Default for AccessLink {
    /// A typical 2007-era well-connected academic host: 100 Mbit/s symmetric,
    /// light loss.
    fn default() -> Self {
        AccessLink::symmetric_mbps(100.0, 0.0005)
    }
}

/// Characteristics of the wide-area path between a specific node pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    /// One-way propagation delay through the core.
    pub one_way_delay: SimDuration,
    /// Jitter magnitude: each traversal adds `Uniform[0, jitter)`.
    pub jitter: SimDuration,
}

impl PathSpec {
    /// A path with the given one-way delay in milliseconds and jitter as a
    /// fraction of the delay.
    pub fn from_owd_ms(owd_ms: f64, jitter_frac: f64) -> Self {
        let owd = SimDuration::from_secs_f64(owd_ms / 1000.0);
        PathSpec {
            one_way_delay: owd,
            jitter: owd.mul_f64(jitter_frac.max(0.0)),
        }
    }

    /// Round-trip time (twice the one-way delay, jitter excluded).
    pub fn rtt(&self) -> SimDuration {
        self.one_way_delay * 2
    }

    /// Samples the actual one-way latency for one traversal.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter.is_zero() {
            return self.one_way_delay;
        }
        let extra = rng.uniform_range(0.0, self.jitter.as_secs_f64());
        self.one_way_delay + SimDuration::from_secs_f64(extra)
    }
}

impl Default for PathSpec {
    fn default() -> Self {
        PathSpec::from_owd_ms(10.0, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_link_converts_units() {
        let l = AccessLink::symmetric_mbps(8.0, 0.01);
        assert!((l.up_bytes_per_sec - 1_000_000.0).abs() < 1e-6);
        assert_eq!(l.up_bytes_per_sec, l.down_bytes_per_sec);
        assert_eq!(l.loss, 0.01);
    }

    #[test]
    fn asymmetric_link_units() {
        let l = AccessLink::asymmetric_mbps(1.0, 16.0, 0.0);
        assert!((l.down_bytes_per_sec / l.up_bytes_per_sec - 16.0).abs() < 1e-9);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(AccessLink::symmetric_mbps(1.0, 2.0).loss, 1.0);
        assert_eq!(AccessLink::symmetric_mbps(1.0, -0.5).loss, 0.0);
    }

    #[test]
    fn path_rtt_is_twice_owd() {
        let p = PathSpec::from_owd_ms(25.0, 0.0);
        assert!((p.rtt().as_secs_f64() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn latency_sample_within_jitter_band() {
        let p = PathSpec::from_owd_ms(20.0, 0.5);
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let s = p.sample_latency(&mut rng).as_secs_f64();
            assert!((0.020 - 1e-12..0.030 + 1e-12).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let p = PathSpec::from_owd_ms(20.0, 0.0);
        let mut rng = SimRng::new(6);
        assert_eq!(p.sample_latency(&mut rng), p.one_way_delay);
    }
}
