//! The actor-based discrete-event engine.
//!
//! Each simulated host runs one [`Actor`]. Actors exchange typed messages;
//! delivery times come from the [`TransferPlanner`] (network physics) plus
//! the destination node's service-delay distribution (host physics). All
//! randomness flows through per-node split streams of one master seed, so a
//! run is a pure function of `(topology, config, seed, actors)`.

use std::collections::HashSet;
use std::sync::Arc;

use crate::event::EventQueue;
use crate::metrics::{MetricId, Metrics, StatId};
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::timeseries::TimeSeriesRecorder;
use crate::topology::Topology;
use crate::trace::{Trace, TraceEventKind};
use crate::transport::{TransferPlanner, TransportConfig};

/// How a message interacts with the destination host's scheduler.
///
/// On a contended PlanetLab sliver, a message that must *wake* the
/// application (a new petition, a job assignment) pays the full service
/// delay; messages handled on an already-hot path (streamed file parts,
/// acks) pay only a small fraction; pure data-plane traffic pays none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// Wakes the application: full service-delay sample.
    Wakeup,
    /// Hot-path handling: service-delay sample scaled by
    /// [`TransportConfig::fast_service_factor`].
    Fast,
    /// Data plane only: no service delay.
    Bulk,
}

/// A message that can travel between actors: it must know its wire size so
/// the transport model can time it.
pub trait Payload: std::fmt::Debug {
    /// Serialized size in bytes (payload only; framing overhead is added by
    /// the transport config).
    fn wire_size(&self) -> u64;
    /// Short label for traces.
    fn kind(&self) -> &'static str {
        "msg"
    }
    /// Scheduler interaction at the destination (default: full wake-up).
    fn service_class(&self) -> ServiceClass {
        ServiceClass::Wakeup
    }
}

/// Handle identifying a scheduled timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// The behaviour of one simulated host.
pub trait Actor<M: Payload> {
    /// Called once at simulation start (time 0), in node-id order.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}
    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);
    /// Called when a timer scheduled by this node fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _timer: TimerId, _tag: u64) {}
}

enum Ev<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
}

/// A cross-shard message caught at the shard boundary: the sender-side
/// plan is done (uplink FIFO, propagation, service — all from sender-shard
/// state and RNG); the destination shard applies its receiver-side
/// queueing at incorporation time.
pub(crate) struct RemoteEnvelope<M> {
    pub(crate) to: NodeId,
    pub(crate) from: NodeId,
    pub(crate) msg: M,
    pub(crate) bytes: u64,
    pub(crate) sent_at: SimTime,
    pub(crate) tx_start: SimTime,
    pub(crate) first_byte: SimTime,
    pub(crate) service: SimDuration,
    /// Destination-host service delay (already sampled, sender-side RNG).
    pub(crate) service_extra: SimDuration,
    pub(crate) src_shard: usize,
    /// Position in the source shard's outbox, for deterministic tie-breaks.
    pub(crate) src_index: u64,
}

/// Shard membership of an engine acting as one shard of a
/// [`crate::parallel::ShardedEngine`]: the fixed node→shard assignment and
/// the outbox of boundary-crossing messages produced since the last drain.
struct ShardState<M> {
    assignment: Arc<Vec<usize>>,
    shard_id: usize,
    outbox: Vec<RemoteEnvelope<M>>,
}

/// Why [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// Virtual time reached the given horizon.
    HorizonReached,
    /// An actor called [`Context::stop`].
    Stopped,
    /// The event-count safety valve tripped (runaway simulation).
    EventLimit,
}

/// Metric handles the per-event path needs, resolved once at engine
/// construction so sends/deliveries never walk the name maps.
struct HotIds {
    messages_sent: MetricId,
    bytes_sent: MetricId,
    messages_lost: MetricId,
    messages_delivered: MetricId,
    messages_dropped_no_actor: MetricId,
    timers_pending_hwm: MetricId,
    delivery_secs: StatId,
}

impl HotIds {
    fn resolve(metrics: &mut Metrics) -> Self {
        HotIds {
            messages_sent: metrics.counter_id("net.messages_sent"),
            bytes_sent: metrics.counter_id("net.bytes_sent"),
            messages_lost: metrics.counter_id("net.messages_lost"),
            messages_delivered: metrics.counter_id("net.messages_delivered"),
            messages_dropped_no_actor: metrics.counter_id("net.messages_dropped_no_actor"),
            timers_pending_hwm: metrics.counter_id("engine.timers_pending_hwm"),
            delivery_secs: metrics.stat_id("net.delivery_secs"),
        }
    }
}

struct EngineCore<M> {
    topo: Arc<Topology>,
    queue: EventQueue<Ev<M>>,
    clock: SimTime,
    planner: TransferPlanner,
    node_rngs: Vec<SimRng>,
    net_rng: SimRng,
    /// Timers scheduled but not yet fired or cancelled. A timer fires only
    /// while its id is in this set, so cancellation is `remove` and firing
    /// purges as it goes — no tombstones, bounded by in-flight timers.
    pending_timers: HashSet<u64>,
    /// High-water mark of `pending_timers.len()`, flushed to the
    /// `engine.timers_pending_hwm` counter when a run step returns.
    timers_pending_hwm: usize,
    next_timer: u64,
    metrics: Metrics,
    ids: HotIds,
    trace: Trace,
    stop_requested: bool,
    current: NodeId,
    /// `Some` only when this engine is one shard of a sharded run; `None`
    /// keeps the serial engine on its original, bit-identical path.
    shard: Option<ShardState<M>>,
}

/// The API an actor sees while handling an event.
pub struct Context<'a, M: Payload> {
    core: &'a mut EngineCore<M>,
}

impl<'a, M: Payload> Context<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// The node this actor runs on.
    pub fn self_id(&self) -> NodeId {
        self.core.current
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> usize {
        self.core.topo.len()
    }

    /// Hostname of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.core.topo.node(id).name
    }

    /// The topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// This node's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.node_rngs[self.core.current.index()]
    }

    /// Sends `msg` to `to`. Delivery is scheduled through the transport
    /// model plus the destination's service delay; the send itself is
    /// instantaneous from the caller's perspective (fire and forget).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let from = self.core.current;
        let size = msg.wire_size();
        // Whole-message loss (overlay-visible; protocols must retransmit).
        let drop_p = self.core.planner.config().message_drop_probability;
        if drop_p > 0.0 && from != to && self.core.net_rng.bernoulli(drop_p) {
            self.core.metrics.incr_id(self.core.ids.messages_lost, 1);
            if self.core.trace.is_enabled() {
                self.core.trace.record(
                    self.core.clock,
                    from,
                    TraceEventKind::MessageLost {
                        to,
                        msg: msg.kind(),
                        bytes: size,
                    },
                );
            }
            return;
        }
        if let Some(shard) = &self.core.shard {
            if shard.assignment[to.index()] != shard.shard_id {
                self.send_remote(to, size, msg);
                return;
            }
        }
        let timing = self.core.planner.plan(
            &self.core.topo,
            self.core.clock,
            from,
            to,
            size,
            &mut self.core.net_rng,
        );
        let service = match msg.service_class() {
            ServiceClass::Wakeup => self
                .core
                .topo
                .node(to)
                .service_delay
                .sample_secs(&mut self.core.net_rng),
            ServiceClass::Fast => {
                self.core
                    .topo
                    .node(to)
                    .service_delay
                    .sample_secs(&mut self.core.net_rng)
                    * self.core.planner.config().fast_service_factor
            }
            ServiceClass::Bulk => 0.0,
        };
        let deliver = timing.deliver + SimDuration::from_secs_f64(service);
        self.core.metrics.incr_id(self.core.ids.messages_sent, 1);
        self.core.metrics.incr_id(self.core.ids.bytes_sent, size);
        self.core.metrics.observe_id(
            self.core.ids.delivery_secs,
            deliver.duration_since(self.core.clock).as_secs_f64(),
        );
        if self.core.trace.is_enabled() {
            self.core.trace.record(
                self.core.clock,
                from,
                TraceEventKind::MessageSent {
                    to,
                    msg: msg.kind(),
                    bytes: size,
                    tx_start: timing.tx_start,
                    deliver_at: deliver,
                },
            );
        }
        self.core
            .queue
            .schedule(deliver, Ev::Deliver { to, from, msg });
    }

    /// Sends a message across a shard boundary: completes the sender-side
    /// half (uplink FIFO, propagation and service samples from this
    /// shard's planner state and RNG) and parks the envelope in the shard
    /// outbox; the destination shard finishes the plan at incorporation.
    /// Mirrors the arithmetic and RNG draw order of the local path in
    /// [`Context::send`] exactly.
    fn send_remote(&mut self, to: NodeId, size: u64, msg: M) {
        let from = self.core.current;
        let plan = self.core.planner.plan_remote_send(
            &self.core.topo,
            self.core.clock,
            from,
            to,
            size,
            &mut self.core.net_rng,
        );
        let service = match msg.service_class() {
            ServiceClass::Wakeup => self
                .core
                .topo
                .node(to)
                .service_delay
                .sample_secs(&mut self.core.net_rng),
            ServiceClass::Fast => {
                self.core
                    .topo
                    .node(to)
                    .service_delay
                    .sample_secs(&mut self.core.net_rng)
                    * self.core.planner.config().fast_service_factor
            }
            ServiceClass::Bulk => 0.0,
        };
        self.core.metrics.incr_id(self.core.ids.messages_sent, 1);
        self.core.metrics.incr_id(self.core.ids.bytes_sent, size);
        let shard = self
            .core
            .shard
            .as_mut()
            .expect("send_remote requires shard state");
        let src_index = shard.outbox.len() as u64;
        shard.outbox.push(RemoteEnvelope {
            to,
            from,
            msg,
            bytes: size,
            sent_at: self.core.clock,
            tx_start: plan.tx_start,
            first_byte: plan.first_byte,
            service: plan.service,
            service_extra: SimDuration::from_secs_f64(service),
            src_shard: shard.shard_id,
            src_index,
        });
    }

    /// Schedules a timer on the current node after `delay`, carrying `tag`.
    pub fn schedule_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.core.next_timer);
        self.core.next_timer += 1;
        let node = self.core.current;
        self.core.pending_timers.insert(id.0);
        if self.core.pending_timers.len() > self.core.timers_pending_hwm {
            self.core.timers_pending_hwm = self.core.pending_timers.len();
        }
        let fire_at = self.core.clock + delay;
        if self.core.trace.is_enabled() {
            self.core.trace.record(
                self.core.clock,
                node,
                TraceEventKind::TimerArmed {
                    timer: id.0,
                    tag,
                    fire_at,
                },
            );
        }
        self.core
            .queue
            .schedule(fire_at, Ev::Timer { node, id, tag });
        id
    }

    /// Cancels a previously scheduled timer. A no-op when the timer already
    /// fired or was never scheduled — in particular it leaves no
    /// bookkeeping behind, so cancelling stale handles cannot grow engine
    /// state.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.core.pending_timers.remove(&id.0) && self.core.trace.is_enabled() {
            self.core.trace.record(
                self.core.clock,
                self.core.current,
                TraceEventKind::TimerCancelled { timer: id.0 },
            );
        }
    }

    /// Samples the wall time this node needs to execute `work_gops`
    /// giga-operations, under its CPU/contention model.
    pub fn execution_time(&mut self, work_gops: f64) -> SimDuration {
        let node = self.core.current;
        let now = self.core.clock;
        let cpu = self.core.topo.node(node).cpu.clone();
        cpu.execution_time_at(work_gops, now, &mut self.core.node_rngs[node.index()])
    }

    /// Uncontended estimate of shipping `bytes` from this node to `to`
    /// (for planning; does not reserve capacity).
    pub fn estimate_transfer(&self, to: NodeId, bytes: u64) -> SimDuration {
        self.core
            .planner
            .estimate_uncontended(&self.core.topo, self.core.current, to, bytes)
    }

    /// Mutable access to the run's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Whether structured tracing is enabled. Callers building non-trivial
    /// events (anything that allocates) should branch on this first so the
    /// disabled path stays allocation-free.
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.is_enabled()
    }

    /// Appends a typed trace event at the current time on the current node
    /// (no-op when tracing is disabled).
    pub fn trace_event(&mut self, kind: TraceEventKind) {
        let t = self.core.clock;
        let n = self.core.current;
        self.core.trace.record(t, n, kind);
    }

    /// Appends a free-form trace row (no-op when tracing is disabled).
    /// Prefer [`Context::trace_event`] with a typed kind; this is the
    /// escape hatch for ad-hoc instrumentation.
    pub fn trace(&mut self, kind: &'static str, detail: String) {
        self.trace_event(TraceEventKind::Custom { kind, detail });
    }

    /// Asks the engine to stop after the current event.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }
}

/// The simulation engine: topology + planner + actors + event loop.
pub struct Engine<M: Payload> {
    core: EngineCore<M>,
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    started: bool,
    event_limit: u64,
    events_processed: u64,
    recorder: Option<TimeSeriesRecorder>,
}

impl<M: Payload> Engine<M> {
    /// Creates an engine over `topo` with the given transport config and
    /// master seed.
    pub fn new(topo: Topology, config: TransportConfig, seed: u64) -> Self {
        Self::new_shared(Arc::new(topo), config, seed)
    }

    /// Like [`Engine::new`], but shares an existing topology. A sharded run
    /// builds one engine per shard over the *same* million-node topology;
    /// sharing the `Arc` keeps that O(n) total instead of O(n × shards).
    pub fn new_shared(topo: Arc<Topology>, config: TransportConfig, seed: u64) -> Self {
        let n = topo.len();
        let master = SimRng::new(seed);
        let node_rngs = (0..n).map(|i| master.split(i as u64)).collect();
        let net_rng = master.split(u64::MAX);
        let actors = (0..n).map(|_| None).collect();
        let mut metrics = Metrics::new();
        let ids = HotIds::resolve(&mut metrics);
        Engine {
            core: EngineCore {
                planner: TransferPlanner::new(config, n),
                topo,
                queue: EventQueue::new(),
                clock: SimTime::ZERO,
                node_rngs,
                net_rng,
                pending_timers: HashSet::new(),
                timers_pending_hwm: 0,
                next_timer: 0,
                ids,
                metrics,
                trace: Trace::disabled(),
                stop_requested: false,
                current: NodeId(0),
                shard: None,
            },
            actors,
            started: false,
            event_limit: 200_000_000,
            events_processed: 0,
            recorder: None,
        }
    }

    /// Installs the actor for `node`. Replacing an existing actor is allowed
    /// before the first run step. Actors must be `Send` so a sharded run
    /// can execute shards on worker threads.
    pub fn register(&mut self, node: NodeId, actor: Box<dyn Actor<M> + Send>) {
        self.actors[node.index()] = Some(actor);
    }

    /// Enables tracing with the given ring capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Trace::with_capacity(capacity);
    }

    /// Caps the total number of processed events (runaway protection).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The run's trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// Immutable access to an installed actor (for post-run inspection).
    pub fn actor(&self, node: NodeId) -> Option<&dyn Actor<M>> {
        self.actors[node.index()]
            .as_deref()
            .map(|a| a as &dyn Actor<M>)
    }

    /// Downcast-style accessor: applies `f` to the actor if installed.
    pub fn with_actor<R>(&self, node: NodeId, f: impl FnOnce(&dyn Actor<M>) -> R) -> Option<R> {
        self.actor(node).map(f)
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            if let Some(mut actor) = self.actors[i].take() {
                self.core.current = NodeId(i as u32);
                let mut ctx = Context {
                    core: &mut self.core,
                };
                actor.on_start(&mut ctx);
                self.actors[i] = Some(actor);
            }
        }
    }

    /// Number of timers currently scheduled and neither fired nor
    /// cancelled. Engine timer bookkeeping is bounded by this count — a
    /// cancelled or fired timer leaves nothing behind.
    pub fn pending_timer_count(&self) -> usize {
        self.core.pending_timers.len()
    }

    /// Total events processed so far across all run calls.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Largest number of events ever pending at once in the queue.
    pub fn peak_queue_len(&self) -> usize {
        self.core.queue.peak_len()
    }

    /// Installs a windowed time-series recorder: the run emits each sample
    /// boundary as soon as every event at or before it has been processed
    /// (so a row is exactly "the metrics after time ≤ boundary"), and
    /// flushes the remaining boundaries up to the final clock when
    /// [`Engine::run_until`] returns.
    pub fn install_recorder(&mut self, recorder: TimeSeriesRecorder) {
        self.recorder = Some(recorder);
    }

    /// Removes and returns the installed time-series recorder, if any.
    pub fn take_recorder(&mut self) -> Option<TimeSeriesRecorder> {
        self.recorder.take()
    }

    /// Runs until the queue drains, a stop is requested, the event limit
    /// trips, or virtual time would pass `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let outcome = self.run_bounded(horizon, false);
        self.flush_run_metrics();
        if let Some(rec) = &mut self.recorder {
            // The run is over: every event at or before the final clock has
            // run, so boundaries up to and including it are complete.
            rec.sample_up_to(self.core.clock, &self.core.metrics);
        }
        outcome
    }

    /// Flushes run-scoped gauges (the timer high-water mark) so post-run
    /// metric readers see them. `run_until` does this after every step; a
    /// sharded run does it once per shard when the whole run ends.
    pub(crate) fn flush_run_metrics(&mut self) {
        self.core.metrics.set_max_id(
            self.core.ids.timers_pending_hwm,
            self.core.timers_pending_hwm as u64,
        );
    }

    /// Marks this engine as shard `shard_id` of a sharded run: sends to
    /// nodes owned by other shards divert into the shard outbox instead of
    /// the local queue.
    pub(crate) fn set_shard(&mut self, assignment: Arc<Vec<usize>>, shard_id: usize) {
        self.core.shard = Some(ShardState {
            assignment,
            shard_id,
            outbox: Vec::new(),
        });
    }

    /// Offsets timer-id allocation so shards mint non-overlapping ids
    /// (purely cosmetic for merged traces; ids never cross shards).
    pub(crate) fn set_timer_base(&mut self, base: u64) {
        self.core.next_timer = base;
    }

    /// Runs `on_start` hooks now (idempotent). A sharded run starts every
    /// shard before computing the first window from the seeded queues.
    pub(crate) fn start(&mut self) {
        self.start_if_needed();
    }

    /// Drains the cross-shard outbox accumulated since the last call.
    pub(crate) fn take_outbox(&mut self) -> Vec<RemoteEnvelope<M>> {
        match &mut self.core.shard {
            Some(shard) => std::mem::take(&mut shard.outbox),
            None => Vec::new(),
        }
    }

    /// Whether an actor requested a stop.
    pub(crate) fn stop_requested(&self) -> bool {
        self.core.stop_requested
    }

    /// Timestamp of the earliest pending local event.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.core.queue.peek_time()
    }

    /// Completes a cross-shard delivery on the destination shard: applies
    /// this shard's receiver-side queueing to the sender-side plan,
    /// records the send in this shard's trace/metrics (the delivery time
    /// is only known here), and schedules the local delivery event.
    pub(crate) fn incorporate_remote(&mut self, env: RemoteEnvelope<M>) {
        let deliver = self
            .core
            .planner
            .admit_remote(env.to, env.first_byte, env.service)
            + env.service_extra;
        self.core.metrics.observe_id(
            self.core.ids.delivery_secs,
            deliver.duration_since(env.sent_at).as_secs_f64(),
        );
        if self.core.trace.is_enabled() {
            self.core.trace.record(
                env.sent_at,
                env.from,
                TraceEventKind::MessageSent {
                    to: env.to,
                    msg: env.msg.kind(),
                    bytes: env.bytes,
                    tx_start: env.tx_start,
                    deliver_at: deliver,
                },
            );
        }
        self.core.queue.schedule(
            deliver,
            Ev::Deliver {
                to: env.to,
                from: env.from,
                msg: env.msg,
            },
        );
    }

    /// Runs one conservative-lookahead window: processes events strictly
    /// below `end` (`exclusive`) or up to and including it, then parks the
    /// clock at `end`. An idle shard (empty queue) still parks its clock in
    /// an exclusive window — neighbor horizons must keep advancing. Unlike
    /// [`Engine::run_until`] this does not flush run-scoped gauges — a
    /// sharded run does that once at the end.
    pub(crate) fn run_window(&mut self, end: SimTime, exclusive: bool) -> RunOutcome {
        let outcome = self.run_bounded(end, exclusive);
        if exclusive && outcome == RunOutcome::QueueEmpty && self.core.clock < end {
            self.core.clock = end;
        }
        outcome
    }

    fn run_bounded(&mut self, horizon: SimTime, exclusive: bool) -> RunOutcome {
        self.start_if_needed();
        loop {
            if self.core.stop_requested {
                return RunOutcome::Stopped;
            }
            if self.events_processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            let Some(next_time) = self.core.queue.peek_time() else {
                return RunOutcome::QueueEmpty;
            };
            if let Some(rec) = &mut self.recorder {
                // Every queued event is at or after `next_time`, so any
                // boundary strictly below it is complete.
                rec.sample_before(next_time, &self.core.metrics);
            }
            if next_time > horizon || (exclusive && next_time >= horizon) {
                self.core.clock = horizon;
                return RunOutcome::HorizonReached;
            }
            let (time, ev) = self.core.queue.pop().expect("peeked");
            debug_assert!(time >= self.core.clock, "time must be monotone");
            self.core.clock = time;
            self.events_processed += 1;
            match ev {
                Ev::Deliver { to, from, msg } => {
                    self.core
                        .metrics
                        .incr_id(self.core.ids.messages_delivered, 1);
                    if self.core.trace.is_enabled() {
                        self.core.trace.record(
                            time,
                            to,
                            TraceEventKind::MessageDelivered {
                                from,
                                msg: msg.kind(),
                            },
                        );
                    }
                    if let Some(mut actor) = self.actors[to.index()].take() {
                        self.core.current = to;
                        let mut ctx = Context {
                            core: &mut self.core,
                        };
                        actor.on_message(&mut ctx, from, msg);
                        self.actors[to.index()] = Some(actor);
                    } else {
                        self.core
                            .metrics
                            .incr_id(self.core.ids.messages_dropped_no_actor, 1);
                    }
                }
                Ev::Timer { node, id, tag } => {
                    // Fire only if still pending; removal doubles as the
                    // tombstone purge (cancelled timers were removed at
                    // cancel time, fired timers are removed here).
                    if !self.core.pending_timers.remove(&id.0) {
                        continue;
                    }
                    if self.core.trace.is_enabled() {
                        self.core.trace.record(
                            time,
                            node,
                            TraceEventKind::TimerFired { timer: id.0, tag },
                        );
                    }
                    if let Some(mut actor) = self.actors[node.index()].take() {
                        self.core.current = node;
                        let mut ctx = Context {
                            core: &mut self.core,
                        };
                        actor.on_timer(&mut ctx, id, tag);
                        self.actors[node.index()] = Some(actor);
                    }
                }
            }
        }
    }

    /// Runs until the queue drains (or stop/limit).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::FAR_FUTURE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{AccessLink, PathSpec};
    use crate::node::NodeSpec;
    use crate::rng::DelayDistribution;

    #[derive(Debug, Clone, PartialEq)]
    enum Ping {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for Ping {
        fn wire_size(&self) -> u64 {
            64
        }
        fn kind(&self) -> &'static str {
            match self {
                Ping::Ping(_) => "ping",
                Ping::Pong(_) => "pong",
            }
        }
    }

    struct Pinger {
        peer: NodeId,
        rounds: u32,
        completed_at: Option<SimTime>,
    }

    impl Actor<Ping> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            ctx.send(self.peer, Ping::Ping(0));
        }
        fn on_message(&mut self, ctx: &mut Context<Ping>, _from: NodeId, msg: Ping) {
            if let Ping::Pong(n) = msg {
                if n + 1 < self.rounds {
                    ctx.send(self.peer, Ping::Ping(n + 1));
                } else {
                    self.completed_at = Some(ctx.now());
                }
            }
        }
    }

    struct Ponger;

    impl Actor<Ping> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<Ping>, from: NodeId, msg: Ping) {
            if let Ping::Ping(n) = msg {
                ctx.send(from, Ping::Pong(n));
            }
        }
    }

    fn topo(owd_ms: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(owd_ms, 0.0));
        (t, a, b)
    }

    fn build_pingpong(seed: u64) -> (Engine<Ping>, NodeId) {
        let (t, a, b) = topo(25.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), seed);
        e.register(
            a,
            Box::new(Pinger {
                peer: b,
                rounds: 10,
                completed_at: None,
            }),
        );
        e.register(b, Box::new(Ponger));
        (e, a)
    }

    #[test]
    fn pingpong_completes_and_time_advances() {
        let (mut e, _a) = build_pingpong(1);
        assert_eq!(e.run(), RunOutcome::QueueEmpty);
        // 10 rounds × 2 × (25 ms + service) ≈ 0.5 s + ε
        let secs = e.now().as_secs_f64();
        assert!(secs > 0.5 && secs < 1.0, "elapsed {secs}");
        assert_eq!(e.metrics().counter("net.messages_sent"), 20);
        assert_eq!(e.metrics().counter("net.messages_delivered"), 20);
    }

    #[test]
    fn same_seed_same_history() {
        let (mut e1, _) = build_pingpong(7);
        let (mut e2, _) = build_pingpong(7);
        e1.enable_trace(1024);
        e2.enable_trace(1024);
        e1.run();
        e2.run();
        assert_eq!(e1.trace().digest(), e2.trace().digest());
        assert_eq!(e1.now(), e2.now());
    }

    #[test]
    fn different_seed_different_history_with_jitter() {
        let make = |seed| {
            let mut t = Topology::new();
            let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
            let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
            t.set_path_symmetric(a, b, PathSpec::from_owd_ms(25.0, 0.5));
            let mut e = Engine::new(t, TransportConfig::default(), seed);
            e.register(
                a,
                Box::new(Pinger {
                    peer: b,
                    rounds: 10,
                    completed_at: None,
                }),
            );
            e.register(b, Box::new(Ponger));
            e.run();
            e.now()
        };
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn horizon_stops_the_clock_exactly() {
        let (mut e, _) = build_pingpong(3);
        let horizon = SimTime::from_secs_f64(0.1);
        assert_eq!(e.run_until(horizon), RunOutcome::HorizonReached);
        assert_eq!(e.now(), horizon);
        // Can resume afterwards.
        assert_eq!(e.run(), RunOutcome::QueueEmpty);
    }

    #[test]
    fn event_limit_trips() {
        let (mut e, _) = build_pingpong(4);
        e.set_event_limit(3);
        assert_eq!(e.run(), RunOutcome::EventLimit);
    }

    #[test]
    fn service_delay_inflates_delivery() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let slow = NodeSpec::responsive("b").with_service_delay(DelayDistribution::Constant(5.0));
        let b = t.add_node(slow, AccessLink::default());
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(1.0, 0.0));
        let mut e = Engine::new(t, TransportConfig::ideal(), 5);
        e.register(
            a,
            Box::new(Pinger {
                peer: b,
                rounds: 1,
                completed_at: None,
            }),
        );
        e.register(b, Box::new(Ponger));
        e.run();
        // One round trip dominated by b's 5 s service delay.
        assert!(e.now().as_secs_f64() > 5.0);
        assert!(e.now().as_secs_f64() < 6.0);
    }

    struct TimerActor {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Actor<Ping> for TimerActor {
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            ctx.schedule_timer(SimDuration::from_secs(1), 1);
            let second = ctx.schedule_timer(SimDuration::from_secs(2), 2);
            ctx.schedule_timer(SimDuration::from_secs(3), 3);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Ping>, _from: NodeId, _msg: Ping) {}
        fn on_timer(&mut self, _ctx: &mut Context<Ping>, _timer: TimerId, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let (t, a, _b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 6);
        e.register(
            a,
            Box::new(TimerActor {
                fired: vec![],
                cancel_second: true,
            }),
        );
        e.run();
        // Inspect the actor through the trait-object accessor by re-boxing:
        // simplest is to re-run without cancel and compare times.
        assert_eq!(e.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn cancel_after_fire_leaves_no_tombstone() {
        // Regression: cancelling a timer that already fired used to insert
        // its id into a tombstone set that was never purged, growing
        // engine state forever under schedule/fire/cancel churn.
        struct LateCanceller {
            first: Option<TimerId>,
        }
        impl Actor<Ping> for LateCanceller {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                self.first = Some(ctx.schedule_timer(SimDuration::from_secs(1), 1));
                ctx.schedule_timer(SimDuration::from_secs(2), 2);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: TimerId, tag: u64) {
                if tag == 2 {
                    // The 1 s timer fired long ago; cancelling it now must
                    // be a no-op that records nothing.
                    ctx.cancel_timer(self.first.expect("scheduled at start"));
                    // Cancelling a handle that was never scheduled (forged
                    // id) must also record nothing.
                    ctx.cancel_timer(TimerId(u64::MAX));
                }
            }
        }
        let (t, a, _b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 11);
        e.register(a, Box::new(LateCanceller { first: None }));
        e.run();
        assert_eq!(
            e.pending_timer_count(),
            0,
            "fired + cancelled timers must leave no bookkeeping behind"
        );
        assert_eq!(e.metrics().counter("engine.timers_pending_hwm"), 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire_and_is_purged() {
        struct CancelImmediately {
            fired: bool,
        }
        impl Actor<Ping> for CancelImmediately {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                let id = ctx.schedule_timer(SimDuration::from_secs(1), 7);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: TimerId, _: u64) {
                self.fired = true;
                ctx.metrics().incr("test.timer_fired", 1);
            }
        }
        let (t, a, _b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 12);
        e.register(a, Box::new(CancelImmediately { fired: false }));
        e.run();
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(
            e.metrics().counter("test.timer_fired"),
            0,
            "cancelled timer must not fire"
        );
    }

    #[test]
    fn pending_timer_set_stays_bounded_under_churn() {
        // Schedule-and-fire many timers one after another; in-flight count
        // never exceeds the overlap, and the high-water metric records it.
        struct Chain {
            remaining: u32,
        }
        impl Actor<Ping> for Chain {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.schedule_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: TimerId, _: u64) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.schedule_timer(SimDuration::from_millis(1), 0);
                }
            }
        }
        let (t, a, _b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 13);
        e.register(a, Box::new(Chain { remaining: 10_000 }));
        e.run();
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(
            e.metrics().counter("engine.timers_pending_hwm"),
            1,
            "chained timers never overlap"
        );
    }

    #[test]
    fn stop_request_halts_promptly() {
        struct Stopper;
        impl Actor<Ping> for Stopper {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.schedule_timer(SimDuration::from_secs(1), 0);
                ctx.schedule_timer(SimDuration::from_secs(100), 1);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: TimerId, tag: u64) {
                if tag == 0 {
                    ctx.stop();
                }
            }
        }
        let (t, a, _b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 8);
        e.register(a, Box::new(Stopper));
        assert_eq!(e.run(), RunOutcome::Stopped);
        assert_eq!(e.now().as_secs_f64(), 1.0);
    }

    #[test]
    fn messages_to_actorless_nodes_are_counted() {
        let (t, a, _b) = topo(10.0);
        struct Blind {
            peer: NodeId,
        }
        impl Actor<Ping> for Blind {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(self.peer, Ping::Ping(0));
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
        }
        let mut e = Engine::new(t, TransportConfig::ideal(), 9);
        let b = NodeId(1);
        e.register(a, Box::new(Blind { peer: b }));
        e.run();
        assert_eq!(e.metrics().counter("net.messages_dropped_no_actor"), 1);
    }

    #[test]
    fn context_estimates_and_names() {
        struct Probe {
            peer: NodeId,
            est: Option<SimDuration>,
        }
        impl Actor<Ping> for Probe {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                assert_eq!(ctx.node_name(ctx.self_id()), "a");
                assert_eq!(ctx.num_nodes(), 2);
                self.est = Some(ctx.estimate_transfer(self.peer, 1_000_000));
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: NodeId, _: Ping) {}
        }
        let (t, a, b) = topo(10.0);
        let mut e = Engine::new(t, TransportConfig::ideal(), 10);
        e.register(a, Box::new(Probe { peer: b, est: None }));
        e.run();
    }
}
