//! Message-transfer timing: the analytic transport model.
//!
//! Rather than simulating individual packets, each message transfer is
//! planned analytically at send time — the standard fluid/bottleneck
//! approach for overlay-scale simulation. A transfer's completion time is
//! composed of:
//!
//! 1. **Uplink FIFO** — the sender serializes outgoing messages onto its
//!    access uplink, so concurrent sends from one host queue behind each
//!    other.
//! 2. **Propagation** — one-way delay plus uniform jitter from the path spec.
//! 3. **Bottleneck service** — the receiver's side is modelled as a FIFO
//!    server whose rate is `min(uplink, downlink, TCP bound)`, where the TCP
//!    bound is the Mathis model `MSS · C / (RTT · √p)`. Messages arriving at
//!    a busy receiver queue.
//! 4. **Slow-start penalty** — short TCP transfers never exit slow start;
//!    we charge `RTT · log2(1 + size/IW)` extra, capped.
//! 5. **Large-message penalty** — JXTA unicast pipes buffer entire messages
//!    in the JVM and collapse on multi-ten-MB payloads (the effect behind
//!    the paper's Fig 5 "sending the file whole is not worth it"). Modelled
//!    as a throughput divisor `1 + (size/threshold)^alpha` above a threshold.
//!    This knob is independently switchable for the ablation bench.

use crate::link::AccessLink;
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// How concurrent arrivals share a receiver's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverDiscipline {
    /// Arrivals queue strictly: one transfer is serviced at a time
    /// (the default; matches TCP receive-side serialization closely for
    /// stop-and-wait overlay protocols).
    Fifo,
    /// Processor-sharing approximation: arrivals start immediately but each
    /// active transfer's service stretches with the number of concurrent
    /// transfers at plan time. Used by the ablation benches to show which
    /// findings depend on the queueing discipline.
    ProcessorSharing,
}

/// Tunable constants of the transport model.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// TCP maximum segment size in bytes (Mathis model input).
    pub mss_bytes: f64,
    /// Mathis constant `C` (≈1.22 for periodic loss).
    pub mathis_c: f64,
    /// Whether the TCP loss/RTT bound applies.
    pub enable_tcp_bound: bool,
    /// Initial congestion window in bytes for the slow-start penalty.
    pub initial_window_bytes: f64,
    /// Whether the slow-start penalty applies.
    pub enable_slow_start: bool,
    /// Message size above which the large-message penalty kicks in.
    pub large_msg_threshold_bytes: f64,
    /// Exponent of the large-message throughput divisor.
    pub large_msg_alpha: f64,
    /// Whether the large-message penalty applies.
    pub enable_large_msg_penalty: bool,
    /// Fixed per-message framing overhead added to the payload size.
    pub per_message_overhead_bytes: u64,
    /// Delivery delay for node-local (loopback) messages.
    pub loopback_delay: SimDuration,
    /// Fraction of the full service delay charged to
    /// [`crate::engine::ServiceClass::Fast`] messages.
    pub fast_service_factor: f64,
    /// Receiver-side capacity-sharing discipline.
    pub receiver_discipline: ReceiverDiscipline,
    /// Probability that a whole message is lost in the network and never
    /// delivered (overlay protocols must retransmit). Default 0: the
    /// transport behaves like TCP (loss only shapes throughput).
    pub message_drop_probability: f64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mss_bytes: 1460.0,
            mathis_c: 1.22,
            enable_tcp_bound: true,
            initial_window_bytes: 4.0 * 1460.0,
            enable_slow_start: true,
            // JXTA pipes start degrading past ~8 MB payloads.
            large_msg_threshold_bytes: 8.0 * 1024.0 * 1024.0,
            large_msg_alpha: 1.0,
            enable_large_msg_penalty: true,
            per_message_overhead_bytes: 512,
            loopback_delay: SimDuration::from_micros(100),
            fast_service_factor: 0.02,
            receiver_discipline: ReceiverDiscipline::Fifo,
            message_drop_probability: 0.0,
        }
    }
}

impl TransportConfig {
    /// A configuration with every penalty disabled: pure
    /// `latency + size/bandwidth`. Useful for tests and ablations.
    pub fn ideal() -> Self {
        TransportConfig {
            enable_tcp_bound: false,
            enable_slow_start: false,
            enable_large_msg_penalty: false,
            per_message_overhead_bytes: 0,
            ..TransportConfig::default()
        }
    }
}

/// The planned timing of one message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTiming {
    /// When the sender's uplink actually started serializing the message.
    pub tx_start: SimTime,
    /// When the last byte is available at the receiving host (before any
    /// application service delay).
    pub deliver: SimTime,
}

impl TransferTiming {
    /// End-to-end latency from the plan request to delivery.
    #[inline]
    pub fn total_from(&self, sent_at: SimTime) -> SimDuration {
        self.deliver.duration_since(sent_at)
    }
}

/// The sender-side half of a cross-shard transfer plan (steps 1–4 of
/// [`TransferPlanner::plan`]): everything decided on the sending shard.
/// The receiving shard turns it into a delivery time with
/// [`TransferPlanner::admit_remote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSendPlan {
    /// When the sender's uplink started serializing the message.
    pub tx_start: SimTime,
    /// When the first byte reaches the destination host.
    pub first_byte: SimTime,
    /// Bottleneck service time (incl. slow-start penalty) still to be
    /// applied under the receiver's queueing discipline.
    pub service: SimDuration,
}

/// Stateful planner: owns per-node uplink/downlink busy horizons.
#[derive(Debug, Clone)]
pub struct TransferPlanner {
    config: TransportConfig,
    up_busy_until: Vec<SimTime>,
    down_busy_until: Vec<SimTime>,
    /// Completion times of in-flight transfers per receiver
    /// (processor-sharing mode only; pruned lazily).
    down_inflight: Vec<Vec<SimTime>>,
}

impl TransferPlanner {
    /// Creates a planner for a topology of `n` nodes.
    pub fn new(config: TransportConfig, n: usize) -> Self {
        TransferPlanner {
            config,
            up_busy_until: vec![SimTime::ZERO; n],
            down_busy_until: vec![SimTime::ZERO; n],
            down_inflight: vec![Vec::new(); n],
        }
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Grows internal state when nodes are added after construction.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.up_busy_until.len() < n {
            self.up_busy_until.resize(n, SimTime::ZERO);
            self.down_busy_until.resize(n, SimTime::ZERO);
            self.down_inflight.resize(n, Vec::new());
        }
    }

    /// Combined loss probability of two access links in series.
    #[inline]
    fn path_loss(a: &AccessLink, b: &AccessLink) -> f64 {
        1.0 - (1.0 - a.loss) * (1.0 - b.loss)
    }

    /// The Mathis TCP throughput bound in bytes/second, or `+inf` when loss
    /// is zero or the bound is disabled.
    #[inline]
    fn tcp_bound(&self, rtt_secs: f64, loss: f64) -> f64 {
        if !self.config.enable_tcp_bound || loss <= 0.0 || rtt_secs <= 0.0 {
            return f64::INFINITY;
        }
        self.config.mss_bytes * self.config.mathis_c / (rtt_secs * loss.sqrt())
    }

    /// Effective path throughput for a message of `size` bytes.
    #[inline]
    pub fn effective_throughput(
        &self,
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        size: f64,
    ) -> f64 {
        let up = topo.access(from).up_bytes_per_sec;
        let down = topo.access(to).down_bytes_per_sec;
        let loss = Self::path_loss(topo.access(from), topo.access(to));
        let rtt = topo.path(from, to).rtt().as_secs_f64();
        let mut thr = up.min(down).min(self.tcp_bound(rtt, loss));
        if self.config.enable_large_msg_penalty && size > self.config.large_msg_threshold_bytes {
            let ratio = size / self.config.large_msg_threshold_bytes;
            thr /= 1.0 + (ratio - 1.0).powf(self.config.large_msg_alpha);
        }
        thr.max(1.0) // never fully stall
    }

    /// Extra time short transfers spend in TCP slow start.
    #[inline]
    fn slow_start_penalty(&self, rtt: SimDuration, size: f64) -> SimDuration {
        if !self.config.enable_slow_start || size <= 0.0 {
            return SimDuration::ZERO;
        }
        let rounds = (1.0 + size / self.config.initial_window_bytes)
            .log2()
            .ceil();
        rtt.mul_f64(rounds.clamp(0.0, 12.0))
    }

    /// Plans a transfer of `payload_bytes` from `from` to `to`, mutating the
    /// uplink/downlink busy horizons. `now` must be monotone per sender.
    pub fn plan(
        &mut self,
        topo: &Topology,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        rng: &mut SimRng,
    ) -> TransferTiming {
        if from == to {
            let deliver = now + self.config.loopback_delay;
            return TransferTiming {
                tx_start: now,
                deliver,
            };
        }
        let size = (payload_bytes + self.config.per_message_overhead_bytes) as f64;

        // 1. Uplink FIFO at the sender.
        let up_bw = topo.access(from).up_bytes_per_sec.max(1.0);
        let tx_start = now.max(self.up_busy_until[from.index()]);
        let serialize = SimDuration::from_secs_f64(size / up_bw);
        self.up_busy_until[from.index()] = tx_start + serialize;

        // 2. Propagation with jitter.
        let path = topo.path(from, to);
        let latency = path.sample_latency(rng);
        let first_byte = tx_start + latency;

        // 3. Bottleneck service at the receiver (FIFO).
        let thr = self.effective_throughput(topo, from, to, size);
        let mut service = SimDuration::from_secs_f64(size / thr);

        // 4. Slow-start penalty.
        service += self.slow_start_penalty(path.rtt(), size);

        let deliver = match self.config.receiver_discipline {
            ReceiverDiscipline::Fifo => {
                let service_start = first_byte.max(self.down_busy_until[to.index()]);
                let deliver = service_start + service;
                self.down_busy_until[to.index()] = deliver;
                deliver
            }
            ReceiverDiscipline::ProcessorSharing => {
                let inflight = &mut self.down_inflight[to.index()];
                inflight.retain(|&done| done > first_byte);
                let concurrency = inflight.len() as f64;
                let deliver = first_byte + service.mul_f64(1.0 + concurrency);
                inflight.push(deliver);
                deliver
            }
        };

        TransferTiming { tx_start, deliver }
    }

    /// Sender-side half of [`TransferPlanner::plan`] for a message that
    /// crosses a shard boundary: uplink FIFO, propagation sample, and
    /// bottleneck/slow-start service — everything that depends only on
    /// sender-shard state and the sender's RNG stream. The receiver-side
    /// queueing (step 5 of `plan`) is applied later by
    /// [`TransferPlanner::admit_remote`] on the destination shard's
    /// planner, with identical arithmetic, so a cross-shard transfer sees
    /// exactly the same contention model as a local one.
    pub fn plan_remote_send(
        &mut self,
        topo: &Topology,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        rng: &mut SimRng,
    ) -> RemoteSendPlan {
        debug_assert_ne!(from, to, "loopback messages never cross shards");
        let size = (payload_bytes + self.config.per_message_overhead_bytes) as f64;

        // 1. Uplink FIFO at the sender (sender-shard state).
        let up_bw = topo.access(from).up_bytes_per_sec.max(1.0);
        let tx_start = now.max(self.up_busy_until[from.index()]);
        let serialize = SimDuration::from_secs_f64(size / up_bw);
        self.up_busy_until[from.index()] = tx_start + serialize;

        // 2. Propagation with jitter (sender-shard RNG; the draw order
        //    matches `plan` exactly).
        let path = topo.path(from, to);
        let latency = path.sample_latency(rng);
        let first_byte = tx_start + latency;

        // 3. Bottleneck service.
        let thr = self.effective_throughput(topo, from, to, size);
        let mut service = SimDuration::from_secs_f64(size / thr);

        // 4. Slow-start penalty.
        service += self.slow_start_penalty(path.rtt(), size);

        RemoteSendPlan {
            tx_start,
            first_byte,
            service,
        }
    }

    /// Receiver-side half of a cross-shard transfer: applies the
    /// destination's queueing discipline (step 5 of
    /// [`TransferPlanner::plan`], same arithmetic) to a sender-side plan
    /// and returns the delivery time of the last byte.
    pub fn admit_remote(
        &mut self,
        to: NodeId,
        first_byte: SimTime,
        service: SimDuration,
    ) -> SimTime {
        match self.config.receiver_discipline {
            ReceiverDiscipline::Fifo => {
                let service_start = first_byte.max(self.down_busy_until[to.index()]);
                let deliver = service_start + service;
                self.down_busy_until[to.index()] = deliver;
                deliver
            }
            ReceiverDiscipline::ProcessorSharing => {
                let inflight = &mut self.down_inflight[to.index()];
                inflight.retain(|&done| done > first_byte);
                let concurrency = inflight.len() as f64;
                let deliver = first_byte + service.mul_f64(1.0 + concurrency);
                inflight.push(deliver);
                deliver
            }
        }
    }

    /// Non-mutating estimate of an uncontended transfer's duration
    /// (no queueing, expected jitter). Used by planners/schedulers.
    pub fn estimate_uncontended(
        &self,
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
    ) -> SimDuration {
        if from == to {
            return self.config.loopback_delay;
        }
        let size = (payload_bytes + self.config.per_message_overhead_bytes) as f64;
        let path = topo.path(from, to);
        let latency = path.one_way_delay + path.jitter.mul_f64(0.5);
        let thr = self.effective_throughput(topo, from, to, size);
        latency + SimDuration::from_secs_f64(size / thr) + self.slow_start_penalty(path.rtt(), size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PathSpec;
    use crate::node::NodeSpec;

    fn two_node_topo(mbps: f64, owd_ms: f64, loss: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(
            NodeSpec::responsive("a"),
            AccessLink::symmetric_mbps(mbps, loss),
        );
        let b = t.add_node(
            NodeSpec::responsive("b"),
            AccessLink::symmetric_mbps(mbps, loss),
        );
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(owd_ms, 0.0));
        (t, a, b)
    }

    #[test]
    fn ideal_transfer_is_latency_plus_serialization() {
        let (t, a, b) = two_node_topo(8.0, 100.0, 0.0); // 1 MB/s, 100 ms OWD
        let mut p = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let mut rng = SimRng::new(1);
        let timing = p.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        let total = timing.total_from(SimTime::ZERO).as_secs_f64();
        // 0.1 s latency + 1.0 s transfer
        assert!((total - 1.1).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn loopback_is_constant() {
        let (t, a, _) = two_node_topo(8.0, 100.0, 0.0);
        let mut p = TransferPlanner::new(TransportConfig::default(), t.len());
        let mut rng = SimRng::new(2);
        let timing = p.plan(&t, SimTime::ZERO, a, a, 1 << 30, &mut rng);
        assert_eq!(
            timing.deliver,
            SimTime::ZERO + TransportConfig::default().loopback_delay
        );
    }

    #[test]
    fn transfer_time_monotone_in_size() {
        let (t, a, b) = two_node_topo(100.0, 20.0, 0.001);
        let p = TransferPlanner::new(TransportConfig::default(), t.len());
        let mut last = SimDuration::ZERO;
        for size in [1_000u64, 100_000, 10_000_000, 100_000_000] {
            let est = p.estimate_uncontended(&t, a, b, size);
            assert!(est >= last, "estimate must grow with size");
            last = est;
        }
    }

    #[test]
    fn tcp_bound_limits_long_fat_lossy_paths() {
        // 100 Mbit/s links but 200 ms RTT and 1% loss → Mathis ≈ 89 KB/s.
        let (t, a, b) = two_node_topo(100.0, 100.0, 0.005);
        let p = TransferPlanner::new(TransportConfig::default(), t.len());
        let thr = p.effective_throughput(&t, a, b, 1000.0);
        assert!(thr < 200_000.0, "thr {thr} should be Mathis-limited");
        let ideal = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let thr_ideal = ideal.effective_throughput(&t, a, b, 1000.0);
        assert!(thr_ideal > 10_000_000.0);
    }

    #[test]
    fn large_message_penalty_degrades_throughput_superlinearly() {
        let (t, a, b) = two_node_topo(100.0, 10.0, 0.0);
        let p = TransferPlanner::new(TransportConfig::default(), t.len());
        let small = p.effective_throughput(&t, a, b, 1024.0 * 1024.0);
        let big = p.effective_throughput(&t, a, b, 100.0 * 1024.0 * 1024.0);
        assert!(
            small / big > 5.0,
            "100 MB messages should be much slower per byte: {small} vs {big}"
        );
        // Per-byte cost: time(100MB)/time(4×25MB) should exceed 1.
        let t_whole = 100.0 * 1024.0 * 1024.0 / big;
        let t_quarter =
            25.0 * 1024.0 * 1024.0 / p.effective_throughput(&t, a, b, 25.0 * 1024.0 * 1024.0);
        assert!(t_whole > 4.0 * t_quarter);
    }

    #[test]
    fn uplink_fifo_serializes_concurrent_sends() {
        let (t, a, b) = two_node_topo(8.0, 10.0, 0.0); // 1 MB/s
        let mut p = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let mut rng = SimRng::new(3);
        let t1 = p.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        let t2 = p.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        // Second message can't start serializing until the first is done.
        assert!(t2.tx_start >= t1.tx_start + SimDuration::from_secs_f64(0.999));
        assert!(t2.deliver > t1.deliver);
    }

    #[test]
    fn receiver_fifo_queues_concurrent_arrivals() {
        let mut t = Topology::new();
        let a = t.add_node(
            NodeSpec::responsive("a"),
            AccessLink::symmetric_mbps(8.0, 0.0),
        );
        let b = t.add_node(
            NodeSpec::responsive("b"),
            AccessLink::symmetric_mbps(8.0, 0.0),
        );
        let c = t.add_node(
            NodeSpec::responsive("c"),
            AccessLink::symmetric_mbps(8.0, 0.0),
        );
        t.set_path_symmetric(a, c, PathSpec::from_owd_ms(10.0, 0.0));
        t.set_path_symmetric(b, c, PathSpec::from_owd_ms(10.0, 0.0));
        let mut p = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let mut rng = SimRng::new(4);
        let t1 = p.plan(&t, SimTime::ZERO, a, c, 1_000_000, &mut rng);
        let t2 = p.plan(&t, SimTime::ZERO, b, c, 1_000_000, &mut rng);
        // Both take ~1 s alone; the second queues behind the first at c.
        assert!(t2.deliver.duration_since(t1.deliver).as_secs_f64() > 0.9);
    }

    #[test]
    fn slow_start_charges_small_transfers() {
        let (t, a, b) = two_node_topo(1000.0, 50.0, 0.0);
        let cfg = TransportConfig {
            enable_tcp_bound: false,
            enable_large_msg_penalty: false,
            enable_slow_start: true,
            per_message_overhead_bytes: 0,
            ..TransportConfig::default()
        };
        let p = TransferPlanner::new(cfg, t.len());
        let est = p.estimate_uncontended(&t, a, b, 100_000).as_secs_f64();
        // ≥ latency + several RTT rounds of slow start.
        assert!(est > 0.3, "estimate {est}");
    }

    #[test]
    fn estimates_match_plan_without_contention() {
        let (t, a, b) = two_node_topo(100.0, 30.0, 0.001);
        let mut p = TransferPlanner::new(TransportConfig::default(), t.len());
        let est = p.estimate_uncontended(&t, a, b, 5_000_000);
        let mut rng = SimRng::new(5);
        let timing = p.plan(&t, SimTime::ZERO, a, b, 5_000_000, &mut rng);
        let actual = timing.total_from(SimTime::ZERO);
        let ratio = actual.as_secs_f64() / est.as_secs_f64();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut p = TransferPlanner::new(TransportConfig::default(), 2);
        p.ensure_capacity(5);
        let mut t = Topology::new();
        for i in 0..5 {
            t.add_node(NodeSpec::responsive(format!("n{i}")), AccessLink::default());
        }
        let mut rng = SimRng::new(6);
        // Planning on node 4 must not panic.
        p.plan(&t, SimTime::ZERO, NodeId(0), NodeId(4), 100, &mut rng);
    }

    #[test]
    fn processor_sharing_starts_immediately_but_stretches() {
        let (t, a, b) = two_node_topo(8.0, 10.0, 0.0); // 1 MB/s
        let mut fifo = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let ps_cfg = TransportConfig {
            receiver_discipline: ReceiverDiscipline::ProcessorSharing,
            ..TransportConfig::ideal()
        };
        let mut ps = TransferPlanner::new(ps_cfg, t.len());
        let mut rng = SimRng::new(10);
        // Two concurrent 1 MB transfers to the same receiver.
        let f1 = fifo.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        let f2 = fifo.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        let mut rng = SimRng::new(10);
        let p1 = ps.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        let p2 = ps.plan(&t, SimTime::ZERO, a, b, 1_000_000, &mut rng);
        // FIFO: second completes ~2 s after start; first after ~1 s.
        assert!(f2.deliver > f1.deliver);
        // PS: the second is stretched 2×; the first unaffected (planned first).
        assert!(p1.deliver <= f1.deliver + SimDuration::from_millis(1));
        assert!(p2.deliver >= p1.deliver);
        // Sequential (non-overlapping) transfers behave identically in both.
        let mut fifo2 = TransferPlanner::new(TransportConfig::ideal(), t.len());
        let ps_cfg2 = TransportConfig {
            receiver_discipline: ReceiverDiscipline::ProcessorSharing,
            ..TransportConfig::ideal()
        };
        let mut ps2 = TransferPlanner::new(ps_cfg2, t.len());
        let mut rng = SimRng::new(11);
        let fa = fifo2.plan(&t, SimTime::ZERO, a, b, 100_000, &mut rng);
        let fb = fifo2.plan(
            &t,
            fa.deliver + SimDuration::from_secs(5),
            a,
            b,
            100_000,
            &mut rng,
        );
        let mut rng = SimRng::new(11);
        let pa = ps2.plan(&t, SimTime::ZERO, a, b, 100_000, &mut rng);
        let pb = ps2.plan(
            &t,
            pa.deliver + SimDuration::from_secs(5),
            a,
            b,
            100_000,
            &mut rng,
        );
        assert_eq!(fa.deliver, pa.deliver);
        assert_eq!(fb.deliver, pb.deliver);
    }

    #[test]
    fn remote_split_reproduces_plan_bit_for_bit() {
        // The sharded engine times a cross-shard message in two halves:
        // plan_remote_send on the sender's planner, admit_remote on the
        // receiver's. Against a single planner fed the same RNG stream the
        // composed result must equal `plan` exactly — including under
        // uplink FIFO pressure, receiver contention, and jitter draws.
        for discipline in [
            ReceiverDiscipline::Fifo,
            ReceiverDiscipline::ProcessorSharing,
        ] {
            let mut t = Topology::new();
            let a = t.add_node(
                NodeSpec::responsive("a"),
                AccessLink::symmetric_mbps(50.0, 0.001),
            );
            let b = t.add_node(
                NodeSpec::responsive("b"),
                AccessLink::symmetric_mbps(20.0, 0.0),
            );
            t.set_path_symmetric(a, b, PathSpec::from_owd_ms(30.0, 0.4));
            let cfg = TransportConfig {
                receiver_discipline: discipline,
                ..TransportConfig::default()
            };
            let mut whole = TransferPlanner::new(cfg.clone(), t.len());
            let mut split = TransferPlanner::new(cfg, t.len());
            let mut rng_whole = SimRng::new(99);
            let mut rng_split = SimRng::new(99);
            let mut now = SimTime::ZERO;
            for i in 0..20u64 {
                let bytes = 10_000 + i * 700_000;
                let reference = whole.plan(&t, now, a, b, bytes, &mut rng_whole);
                let half = split.plan_remote_send(&t, now, a, b, bytes, &mut rng_split);
                let deliver = split.admit_remote(b, half.first_byte, half.service);
                assert_eq!(half.tx_start, reference.tx_start, "msg {i}");
                assert_eq!(deliver, reference.deliver, "msg {i}");
                now += SimDuration::from_millis(17);
            }
        }
    }

    #[test]
    fn throughput_never_zero() {
        let (t, a, b) = two_node_topo(0.000001, 500.0, 0.9);
        let p = TransferPlanner::new(TransportConfig::default(), t.len());
        assert!(p.effective_throughput(&t, a, b, 1e12) >= 1.0);
    }
}
