//! Simulated hosts: identity, CPU model, and per-node service behaviour.

use std::fmt;

use crate::rng::{DelayDistribution, SimRng};
use crate::time::{SimDuration, SimTime};

/// Dense index identifying a node within one simulation. Assigned by the
/// topology builder in insertion order; stable for the life of the sim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// CPU capability and contention model for one host.
///
/// PlanetLab nodes run up to ~100 concurrent slivers, so the effective
/// compute rate seen by any one sliver is the base rate scaled down by a
/// time-varying background load. We sample the load per execution from a
/// distribution — the right granularity for minutes-long tasks, where load
/// is roughly stationary within one task but varies between tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Nominal compute rate in giga-operations per second when idle.
    pub base_gops: f64,
    /// Distribution of the background-load fraction in `[0, 1)`; the sliver
    /// gets `1 - load` of the CPU. Sampled once per execution.
    pub load: LoadModel,
}

/// Background-load fraction model.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Always this fraction of the CPU is stolen by other slivers.
    Constant(f64),
    /// Diurnal pattern: load oscillates around `mean` with amplitude
    /// `swing` over a 24-hour period (PlanetLab load follows its users'
    /// working hours), plus uniform noise of ±`noise`.
    Diurnal {
        /// Mean load fraction over the day.
        mean: f64,
        /// Peak-to-mean amplitude of the daily cycle.
        swing: f64,
        /// Uniform jitter added on top.
        noise: f64,
        /// Hour of peak load (0–24).
        peak_hour: f64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound of the load fraction.
        lo: f64,
        /// Upper bound of the load fraction.
        hi: f64,
    },
    /// Beta-like shape via clamped normal; convenient for "usually busy"
    /// nodes: mean load with some spread.
    Normal {
        /// Mean load fraction.
        mean: f64,
        /// Standard deviation of the load fraction.
        std_dev: f64,
    },
}

impl LoadModel {
    /// Samples a load fraction at virtual time `now`, clamped into
    /// `[0, 0.99]` so progress is always possible.
    pub fn sample_at(&self, now: SimTime, rng: &mut SimRng) -> f64 {
        let raw = match *self {
            LoadModel::Constant(l) => l,
            LoadModel::Diurnal {
                mean,
                swing,
                noise,
                peak_hour,
            } => {
                let hour = (now.as_secs_f64() / 3600.0) % 24.0;
                let phase = (hour - peak_hour) / 24.0 * std::f64::consts::TAU;
                mean + swing * phase.cos() + rng.uniform_range(-noise, noise)
            }
            LoadModel::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            LoadModel::Normal { mean, std_dev } => rng.normal(mean, std_dev),
        };
        raw.clamp(0.0, 0.99)
    }

    /// Samples a load fraction with no time context (diurnal models sample
    /// at the epoch).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_at(SimTime::ZERO, rng)
    }

    /// The model's mean load (clamped like samples are).
    pub fn mean(&self) -> f64 {
        match *self {
            LoadModel::Constant(l) => l.clamp(0.0, 0.99),
            LoadModel::Diurnal { mean, .. } => mean.clamp(0.0, 0.99),
            LoadModel::Uniform { lo, hi } => ((lo + hi) / 2.0).clamp(0.0, 0.99),
            LoadModel::Normal { mean, .. } => mean.clamp(0.0, 0.99),
        }
    }
}

impl CpuModel {
    /// A CPU with the given idle rate and no background load.
    pub fn idle(base_gops: f64) -> Self {
        CpuModel {
            base_gops,
            load: LoadModel::Constant(0.0),
        }
    }

    /// Time to execute `work_gops` giga-operations, with the background load
    /// sampled once for the whole execution.
    pub fn execution_time(&self, work_gops: f64, rng: &mut SimRng) -> SimDuration {
        self.execution_time_at(work_gops, SimTime::ZERO, rng)
    }

    /// Like [`CpuModel::execution_time`], with time context so diurnal load
    /// models see the clock.
    pub fn execution_time_at(&self, work_gops: f64, now: SimTime, rng: &mut SimRng) -> SimDuration {
        if work_gops <= 0.0 || self.base_gops <= 0.0 {
            return SimDuration::ZERO;
        }
        let load = self.load.sample_at(now, rng);
        let effective = self.base_gops * (1.0 - load);
        SimDuration::from_secs_f64(work_gops / effective)
    }

    /// Expected execution time at the mean load (no sampling); used by
    /// schedulers that plan ahead, mirroring the paper's broker estimates.
    pub fn expected_execution_time(&self, work_gops: f64) -> SimDuration {
        if work_gops <= 0.0 || self.base_gops <= 0.0 {
            return SimDuration::ZERO;
        }
        let effective = self.base_gops * (1.0 - self.load.mean());
        SimDuration::from_secs_f64(work_gops / effective)
    }
}

/// Full specification of one simulated host.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable hostname (e.g. `planetlab1.ssvl.kth.se`).
    pub name: String,
    /// Compute model.
    pub cpu: CpuModel,
    /// Delay between a message arriving at the host and the application
    /// actually handling it: OS/sliver scheduling plus middleware overhead.
    /// This is the dominant term in the paper's Fig 2 "petition time".
    pub service_delay: DelayDistribution,
}

impl NodeSpec {
    /// A well-behaved host: 1 GHz-class CPU, prompt service, no load.
    pub fn responsive(name: impl Into<String>) -> Self {
        NodeSpec {
            name: name.into(),
            cpu: CpuModel::idle(1.0),
            service_delay: DelayDistribution::Constant(0.001),
        }
    }

    /// Builder-style CPU override.
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Builder-style service-delay override.
    pub fn with_service_delay(mut self, d: DelayDistribution) -> Self {
        self.service_delay = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn idle_cpu_time_is_work_over_rate() {
        let cpu = CpuModel::idle(2.0);
        let mut rng = SimRng::new(1);
        let t = cpu.execution_time(10.0, &mut rng);
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
        assert_eq!(cpu.execution_time(0.0, &mut rng), SimDuration::ZERO);
        assert_eq!(cpu.execution_time(-3.0, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn loaded_cpu_is_slower() {
        let idle = CpuModel::idle(1.0);
        let busy = CpuModel {
            base_gops: 1.0,
            load: LoadModel::Constant(0.5),
        };
        let mut rng = SimRng::new(2);
        let ti = idle.execution_time(4.0, &mut rng);
        let tb = busy.execution_time(4.0, &mut rng);
        assert!((tb.as_secs_f64() / ti.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn load_samples_clamped() {
        let mut rng = SimRng::new(3);
        let m = LoadModel::Normal {
            mean: 0.9,
            std_dev: 0.5,
        };
        for _ in 0..2000 {
            let l = m.sample(&mut rng);
            assert!((0.0..=0.99).contains(&l));
        }
        assert_eq!(LoadModel::Constant(2.0).mean(), 0.99);
    }

    #[test]
    fn expected_time_uses_mean_load() {
        let cpu = CpuModel {
            base_gops: 1.0,
            load: LoadModel::Uniform { lo: 0.2, hi: 0.6 },
        };
        let t = cpu.expected_execution_time(6.0);
        // mean load 0.4 → effective 0.6 gops → 10 s
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_load_peaks_at_peak_hour() {
        let m = LoadModel::Diurnal {
            mean: 0.5,
            swing: 0.3,
            noise: 0.0,
            peak_hour: 14.0,
        };
        let mut rng = SimRng::new(7);
        let mut at = |h: f64| m.sample_at(SimTime::from_secs_f64(h * 3600.0), &mut rng);
        let peak = at(14.0);
        let trough = at(2.0);
        assert!((peak - 0.8).abs() < 1e-9, "peak {peak}");
        assert!(trough < 0.3, "trough {trough}");
        // The cycle repeats daily.
        assert!((at(14.0 + 24.0) - peak).abs() < 1e-9);
        assert_eq!(m.mean(), 0.5);
    }

    #[test]
    fn diurnal_noise_stays_clamped() {
        let m = LoadModel::Diurnal {
            mean: 0.9,
            swing: 0.3,
            noise: 0.2,
            peak_hour: 12.0,
        };
        let mut rng = SimRng::new(8);
        for h in 0..100 {
            let l = m.sample_at(SimTime::from_secs_f64(h as f64 * 977.0), &mut rng);
            assert!((0.0..=0.99).contains(&l));
        }
    }

    #[test]
    fn execution_time_at_uses_clock_for_diurnal() {
        let cpu = CpuModel {
            base_gops: 1.0,
            load: LoadModel::Diurnal {
                mean: 0.5,
                swing: 0.4,
                noise: 0.0,
                peak_hour: 12.0,
            },
        };
        let mut rng = SimRng::new(9);
        let busy = cpu.execution_time_at(10.0, SimTime::from_secs_f64(12.0 * 3600.0), &mut rng);
        let quiet = cpu.execution_time_at(10.0, SimTime::from_secs_f64(0.0), &mut rng);
        assert!(busy > quiet, "noon must be slower than midnight");
    }

    #[test]
    fn zero_rate_cpu_yields_zero_not_panic() {
        let cpu = CpuModel::idle(0.0);
        let mut rng = SimRng::new(4);
        assert_eq!(cpu.execution_time(5.0, &mut rng), SimDuration::ZERO);
        assert_eq!(cpu.expected_execution_time(5.0), SimDuration::ZERO);
    }

    #[test]
    fn node_spec_builders() {
        let spec = NodeSpec::responsive("host.example")
            .with_cpu(CpuModel::idle(3.0))
            .with_service_delay(DelayDistribution::Constant(0.5));
        assert_eq!(spec.name, "host.example");
        assert_eq!(spec.cpu.base_gops, 3.0);
        assert_eq!(spec.service_delay, DelayDistribution::Constant(0.5));
    }
}
