//! Lightweight measurement plumbing: counters, running statistics, and
//! histograms, collected per simulation run.

use std::collections::BTreeMap;
use std::fmt;

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs, O(1) memory, and exact for the moments
/// the experiment reports need (mean and standard deviation of 5 reps, per
/// the paper's methodology).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// An empty statistic.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (non-finite values are ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another statistic into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl fmt::Display for RunningStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Fixed-layout log₂ histogram over positive values.
///
/// Bucket `i` covers `[base·2^i, base·2^(i+1))`; values below `base` land in
/// bucket 0, values off the top in the last bucket. Good enough for latency
/// tails without unbounded memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    base: f64,
    buckets: Vec<u64>,
    stat: RunningStat,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` doubling buckets starting at `base`.
    pub fn new(base: f64, num_buckets: usize) -> Self {
        assert!(base > 0.0 && num_buckets > 0);
        Histogram {
            base,
            buckets: vec![0; num_buckets],
            stat: RunningStat::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.stat.record(x);
        let idx = if x < self.base {
            0
        } else {
            ((x / self.base).log2().floor() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.stat.count()
    }

    /// The underlying running statistic.
    pub fn stat(&self) -> &RunningStat {
        &self.stat
    }

    /// Approximate quantile from the bucket layout (upper bound of the
    /// bucket containing the q-th observation).
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return self.base * 2f64.powi(i as i32 + 1);
            }
        }
        self.base * 2f64.powi(self.buckets.len() as i32)
    }
}

/// Per-run metrics registry: named counters and named statistics.
///
/// Keys are plain strings; the registry is deliberately simple — experiments
/// read it once at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    stats: BTreeMap<String, RunningStat>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation under statistic `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.stats
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Reads a statistic (empty stat when absent).
    pub fn stat(&self, name: &str) -> RunningStat {
        self.stats.get(name).cloned().unwrap_or_default()
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// All statistic names, sorted.
    pub fn stat_names(&self) -> impl Iterator<Item = &str> {
        self.stats.keys().map(|s| s.as_str())
    }

    /// Merges another registry into this one (sums counters, merges stats).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, s) in &other.stats {
            self.stats.entry(k.clone()).or_default().merge(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stat_basic_moments() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stat_ignores_non_finite() {
        let mut s = RunningStat::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = RunningStat::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(1.0, 8);
        h.record(0.5); // below base → bucket 0
        h.record(1.5); // [1,2) → bucket 0
        h.record(3.0); // [2,4) → bucket 1
        h.record(1000.0); // off the top → last bucket
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[7], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new(0.001, 24);
        let mut rng = crate::rng::SimRng::new(99);
        for _ in 0..10_000 {
            h.record(rng.exponential(0.1));
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!(p50 > 0.01 && p50 < 0.5, "p50 {p50}");
    }

    #[test]
    fn histogram_rejects_bad_values() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0.0);
    }

    #[test]
    fn metrics_counters_and_stats() {
        let mut m = Metrics::new();
        m.incr("sent", 3);
        m.incr("sent", 2);
        m.observe("latency", 0.5);
        m.observe("latency", 1.5);
        assert_eq!(m.counter("sent"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.stat("latency").count(), 2);
        assert!((m.stat("latency").mean() - 1.0).abs() < 1e-12);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["sent"]);
        assert_eq!(m.stat_names().collect::<Vec<_>>(), vec!["latency"]);
    }

    #[test]
    fn metrics_merge() {
        let mut a = Metrics::new();
        a.incr("x", 1);
        a.observe("s", 1.0);
        let mut b = Metrics::new();
        b.incr("x", 2);
        b.incr("y", 7);
        b.observe("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.stat("s").count(), 2);
        assert!((a.stat("s").mean() - 2.0).abs() < 1e-12);
    }
}
