//! Lightweight measurement plumbing: counters, running statistics, and
//! histograms, collected per simulation run.

use std::collections::BTreeMap;
use std::fmt;

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs, O(1) memory, and exact for the moments
/// the experiment reports need (mean and standard deviation of 5 reps, per
/// the paper's methodology).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// An empty statistic.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (non-finite values are ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another statistic into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl fmt::Display for RunningStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Fixed-layout log₂ histogram over positive values.
///
/// Bucket `i` covers `[base·2^i, base·2^(i+1))`; values below `base` land in
/// bucket 0, values off the top in the last bucket. Good enough for latency
/// tails without unbounded memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    base: f64,
    buckets: Vec<u64>,
    stat: RunningStat,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` doubling buckets starting at `base`.
    pub fn new(base: f64, num_buckets: usize) -> Self {
        assert!(base > 0.0 && num_buckets > 0);
        Histogram {
            base,
            buckets: vec![0; num_buckets],
            stat: RunningStat::new(),
            rejected: 0,
        }
    }

    /// Records one observation. Non-finite and negative samples are not
    /// silently discarded: they are tallied in [`Histogram::rejected`] so a
    /// data-quality problem upstream stays visible in reports.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            self.rejected += 1;
            return;
        }
        self.stat.record(x);
        let idx = if x < self.base {
            0
        } else {
            ((x / self.base).log2().floor() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// First value the histogram resolves (lower edge of bucket 0's nominal
    /// range; smaller values still land in bucket 0).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Upper bound of bucket `i` (`[base·2^i, base·2^(i+1))`); the last
    /// bucket is a catch-all whose nominal bound this still reports.
    pub fn bucket_upper_bound(&self, i: usize) -> f64 {
        self.base * 2f64.powi(i as i32 + 1)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.stat.count()
    }

    /// Number of samples refused by [`Histogram::record`] (NaN, ±∞, or
    /// negative). A nonzero count means some instrumentation point produced
    /// garbage; [`Metrics::render`] surfaces it.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The underlying running statistic.
    pub fn stat(&self) -> &RunningStat {
        &self.stat
    }

    /// Merges another histogram into this one (parallel-reduction
    /// friendly). Panics when the bucket layouts differ — merging
    /// incompatible layouts would silently misplace mass.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.base, other.base, "histogram base mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.stat.merge(&other.stat);
        self.rejected += other.rejected;
    }

    /// Approximate quantile from the bucket layout (upper bound of the
    /// bucket containing the q-th observation).
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return self.base * 2f64.powi(i as i32 + 1);
            }
        }
        self.base * 2f64.powi(self.buckets.len() as i32)
    }
}

/// Interned handle to a named counter (see [`Metrics::counter_id`]).
///
/// Resolving a name costs one `BTreeMap` walk; every [`Metrics::incr_id`]
/// through the handle afterwards is a single indexed add with no hashing,
/// no tree traversal, and no allocation. Handles are only meaningful for
/// the [`Metrics`] registry that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

/// Interned handle to a named statistic (see [`Metrics::stat_id`]).
///
/// Same contract as [`MetricId`], for [`RunningStat`] observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatId(u32);

/// Interned handle to a named histogram (see [`Metrics::histogram_id`]).
///
/// Same contract as [`MetricId`]: resolve once (paying the `BTreeMap` walk
/// and the bucket allocation), then every [`Metrics::record_id`] is an O(1)
/// indexed update with no hashing and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// Interned handle to a named gauge (see [`Metrics::gauge_id`]).
///
/// Same contract as [`MetricId`], for last-value-wins f64 gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// Per-run metrics registry: named counters and named statistics.
///
/// Names are interned: the name→slot maps are consulted only when a name is
/// first resolved (or through the string-keyed compatibility API); values
/// live in flat vectors indexed by [`MetricId`]/[`StatId`]. Hot paths
/// resolve their handles once at construction and then update in O(1)
/// without touching the heap. Iteration order (and therefore any rendered
/// report) is by name, so interning order never leaks into output.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counter_index: BTreeMap<String, u32>,
    counter_values: Vec<u64>,
    stat_index: BTreeMap<String, u32>,
    stat_values: Vec<RunningStat>,
    histogram_index: BTreeMap<String, u32>,
    histogram_values: Vec<Histogram>,
    gauge_index: BTreeMap<String, u32>,
    gauge_values: Vec<f64>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Resolves (interning if new) the handle for counter `name`.
    ///
    /// The counter is created at zero on first resolution, so a resolved
    /// name always appears in [`Metrics::counter_names`] even if never
    /// incremented.
    pub fn counter_id(&mut self, name: &str) -> MetricId {
        if let Some(&slot) = self.counter_index.get(name) {
            return MetricId(slot);
        }
        let slot = u32::try_from(self.counter_values.len()).expect("too many counters");
        self.counter_values.push(0);
        self.counter_index.insert(name.to_string(), slot);
        MetricId(slot)
    }

    /// Resolves (interning if new) the handle for statistic `name`.
    ///
    /// The statistic is created empty on first resolution, so a resolved
    /// name always appears in [`Metrics::stat_names`] even if never
    /// observed.
    pub fn stat_id(&mut self, name: &str) -> StatId {
        if let Some(&slot) = self.stat_index.get(name) {
            return StatId(slot);
        }
        let slot = u32::try_from(self.stat_values.len()).expect("too many stats");
        self.stat_values.push(RunningStat::new());
        self.stat_index.insert(name.to_string(), slot);
        StatId(slot)
    }

    /// Resolves (interning if new) the handle for histogram `name`,
    /// creating it with the given bucket layout on first resolution.
    ///
    /// On later resolutions the layout arguments must match the existing
    /// histogram — two call sites disagreeing on the layout of the same
    /// name is a bug worth failing loudly on, not averaging over.
    pub fn histogram_id(&mut self, name: &str, base: f64, num_buckets: usize) -> HistogramId {
        if let Some(&slot) = self.histogram_index.get(name) {
            let existing = &self.histogram_values[slot as usize];
            assert_eq!(
                existing.base(),
                base,
                "histogram {name:?} re-registered with a different base"
            );
            assert_eq!(
                existing.buckets().len(),
                num_buckets,
                "histogram {name:?} re-registered with a different bucket count"
            );
            return HistogramId(slot);
        }
        let slot = u32::try_from(self.histogram_values.len()).expect("too many histograms");
        self.histogram_values
            .push(Histogram::new(base, num_buckets));
        self.histogram_index.insert(name.to_string(), slot);
        HistogramId(slot)
    }

    /// Resolves (interning if new) the handle for gauge `name`.
    ///
    /// The gauge is created at zero on first resolution, so a resolved name
    /// always appears in [`Metrics::gauges_sorted`] even if never set.
    /// Gauges hold a *last-set* f64 value (instantaneous state like resident
    /// bytes), unlike counters which only accumulate.
    pub fn gauge_id(&mut self, name: &str) -> GaugeId {
        if let Some(&slot) = self.gauge_index.get(name) {
            return GaugeId(slot);
        }
        let slot = u32::try_from(self.gauge_values.len()).expect("too many gauges");
        self.gauge_values.push(0.0);
        self.gauge_index.insert(name.to_string(), slot);
        GaugeId(slot)
    }

    /// Sets the gauge behind `id` (last value wins). O(1), allocation-free.
    #[inline]
    pub fn set_gauge_id(&mut self, id: GaugeId, value: f64) {
        self.gauge_values[id.0 as usize] = value;
    }

    /// Current value of the gauge behind `id`. O(1).
    #[inline]
    pub fn gauge_by_id(&self, id: GaugeId) -> f64 {
        self.gauge_values[id.0 as usize]
    }

    /// Sets gauge `name`, creating it if absent.
    ///
    /// String-keyed compatibility wrapper: resolves then delegates to
    /// [`Metrics::set_gauge_id`]. Fine for cold paths (periodic sampling);
    /// per-event code should hold a [`GaugeId`] instead.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let id = self.gauge_id(name);
        self.set_gauge_id(id, value);
    }

    /// Current gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauge_index
            .get(name)
            .map(|&slot| self.gauge_values[slot as usize])
            .unwrap_or(0.0)
    }

    /// `(name, value)` pairs for all gauges, sorted by name.
    pub fn gauges_sorted(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_index
            .iter()
            .map(|(name, &slot)| (name.as_str(), self.gauge_values[slot as usize]))
    }

    /// Records an observation on the histogram behind `id`. O(1),
    /// allocation-free.
    #[inline]
    pub fn record_id(&mut self, id: HistogramId, value: f64) {
        self.histogram_values[id.0 as usize].record(value);
    }

    /// Reads the histogram behind `id`. O(1).
    #[inline]
    pub fn histogram_by_id(&self, id: HistogramId) -> &Histogram {
        &self.histogram_values[id.0 as usize]
    }

    /// Adds `delta` to the counter behind `id`. O(1), allocation-free.
    #[inline]
    pub fn incr_id(&mut self, id: MetricId, delta: u64) {
        self.counter_values[id.0 as usize] += delta;
    }

    /// Raises the counter behind `id` to `value` if it is currently lower
    /// (for high-water-mark style counters). O(1), allocation-free.
    #[inline]
    pub fn set_max_id(&mut self, id: MetricId, value: u64) {
        let slot = &mut self.counter_values[id.0 as usize];
        if value > *slot {
            *slot = value;
        }
    }

    /// Current value of the counter behind `id`. O(1).
    #[inline]
    pub fn counter_by_id(&self, id: MetricId) -> u64 {
        self.counter_values[id.0 as usize]
    }

    /// Records an observation on the statistic behind `id`. O(1),
    /// allocation-free.
    #[inline]
    pub fn observe_id(&mut self, id: StatId, value: f64) {
        self.stat_values[id.0 as usize].record(value);
    }

    /// Reads the statistic behind `id`. O(1).
    #[inline]
    pub fn stat_by_id(&self, id: StatId) -> &RunningStat {
        &self.stat_values[id.0 as usize]
    }

    /// Mutable access to the statistic behind `id`, e.g. to
    /// [`RunningStat::merge`] externally accumulated observations in. O(1).
    #[inline]
    pub fn stat_by_id_mut(&mut self, id: StatId) -> &mut RunningStat {
        &mut self.stat_values[id.0 as usize]
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    ///
    /// String-keyed compatibility wrapper: resolves then delegates to
    /// [`Metrics::incr_id`]. Fine for cold paths; per-event code should
    /// hold a [`MetricId`] instead.
    pub fn incr(&mut self, name: &str, delta: u64) {
        let id = self.counter_id(name);
        self.incr_id(id, delta);
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map(|&slot| self.counter_values[slot as usize])
            .unwrap_or(0)
    }

    /// Records an observation under statistic `name`.
    ///
    /// String-keyed compatibility wrapper: resolves then delegates to
    /// [`Metrics::observe_id`]. Fine for cold paths; per-event code should
    /// hold a [`StatId`] instead.
    pub fn observe(&mut self, name: &str, value: f64) {
        let id = self.stat_id(name);
        self.observe_id(id, value);
    }

    /// Reads a statistic (empty stat when absent).
    pub fn stat(&self, name: &str) -> RunningStat {
        self.stat_index
            .get(name)
            .map(|&slot| self.stat_values[slot as usize].clone())
            .unwrap_or_default()
    }

    /// Reads a histogram by name (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_index
            .get(name)
            .map(|&slot| &self.histogram_values[slot as usize])
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counter_index.keys().map(|s| s.as_str())
    }

    /// All statistic names, sorted.
    pub fn stat_names(&self) -> impl Iterator<Item = &str> {
        self.stats_sorted().map(|(name, _)| name)
    }

    /// `(name, value)` pairs for all counters, sorted by name.
    pub fn counters_sorted(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_index
            .iter()
            .map(|(name, &slot)| (name.as_str(), self.counter_values[slot as usize]))
    }

    /// `(name, stat)` pairs for all statistics, sorted by name.
    pub fn stats_sorted(&self) -> impl Iterator<Item = (&str, &RunningStat)> {
        self.stat_index
            .iter()
            .map(|(name, &slot)| (name.as_str(), &self.stat_values[slot as usize]))
    }

    /// `(name, histogram)` pairs for all histograms, sorted by name.
    pub fn histograms_sorted(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_index
            .iter()
            .map(|(name, &slot)| (name.as_str(), &self.histogram_values[slot as usize]))
    }

    /// Merges another registry into this one: counters are summed, stats
    /// are merged via [`RunningStat::merge`]. Names absent on either side
    /// are treated as zero/empty. Merging is keyed by name (never by
    /// handle), so registries with different interning orders combine
    /// correctly; iteration stays name-sorted afterwards.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in other.counters_sorted() {
            let id = self.counter_id(name);
            self.incr_id(id, value);
        }
        for (name, &slot) in &other.stat_index {
            let id = self.stat_id(name);
            self.stat_values[id.0 as usize].merge(&other.stat_values[slot as usize]);
        }
        for (name, hist) in other.histograms_sorted() {
            let id = self.histogram_id(name, hist.base(), hist.buckets().len());
            self.histogram_values[id.0 as usize].merge(hist);
        }
        // Gauges sum by name: each sampling site owns a unique name (e.g.
        // `registry.bytes.<node>`), so the cross-shard sum reconstructs every
        // site's last-set value, and prefix sums aggregate across sites.
        for (name, value) in other.gauges_sorted() {
            let id = self.gauge_id(name);
            self.gauge_values[id.0 as usize] += value;
        }
    }

    /// Merges another registry in under a `tag` namespace: every one of
    /// `other`'s names lands here as `{tag}.{name}`. A campaign folding many
    /// per-cell registries into one uses a distinct tag per cell so cells
    /// never collide (plain [`Metrics::merge`] would sum them together).
    /// Like `merge`, keyed by name and name-sorted afterwards.
    pub fn merge_tagged(&mut self, other: &Metrics, tag: &str) {
        for (name, value) in other.counters_sorted() {
            let id = self.counter_id(&format!("{tag}.{name}"));
            self.incr_id(id, value);
        }
        for (name, &slot) in &other.stat_index {
            let id = self.stat_id(&format!("{tag}.{name}"));
            self.stat_values[id.0 as usize].merge(&other.stat_values[slot as usize]);
        }
        for (name, hist) in other.histograms_sorted() {
            let id = self.histogram_id(&format!("{tag}.{name}"), hist.base(), hist.buckets().len());
            self.histogram_values[id.0 as usize].merge(hist);
        }
        for (name, value) in other.gauges_sorted() {
            let id = self.gauge_id(&format!("{tag}.{name}"));
            self.gauge_values[id.0 as usize] += value;
        }
    }

    /// Deterministic text rendering of the whole registry, sorted by name.
    /// Two registries with equal contents render byte-identically
    /// regardless of interning or insertion order — the basis of the
    /// golden-metrics determinism tests.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.counters_sorted() {
            writeln!(out, "counter {name} = {value}").expect("string write");
        }
        for (name, value) in self.gauges_sorted() {
            writeln!(out, "gauge {name} = {value}").expect("string write");
        }
        for (name, stat) in self.stats_sorted() {
            writeln!(out, "stat {name}: {stat}").expect("string write");
        }
        for (name, hist) in self.histograms_sorted() {
            write!(
                out,
                "hist {name}: n={} p50={} p95={} p99={} max={:.4}",
                hist.count(),
                hist.quantile_upper_bound(0.50),
                hist.quantile_upper_bound(0.95),
                hist.quantile_upper_bound(0.99),
                hist.stat().max(),
            )
            .expect("string write");
            if hist.rejected() > 0 {
                write!(out, " rejected={}", hist.rejected()).expect("string write");
            }
            writeln!(out).expect("string write");
        }
        out
    }

    /// Deterministic Prometheus text exposition (version 0.0.4) of the
    /// whole registry, sorted by name within each tier.
    ///
    /// Counters become `<prefix>_<name>_total` counters, statistics become
    /// summaries with min/max as the 0/1 quantiles, histograms become
    /// cumulative-bucket histograms plus a `<...>_rejected_total` counter.
    /// Metric names are sanitized (`.` and other invalid characters map to
    /// `_`). All numbers render via Rust's shortest-roundtrip `Display`, so
    /// two equal registries expose byte-identical text — the basis of the
    /// exposition-determinism CI job.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        use fmt::Write as _;
        fn sanitize(prefix: &str, name: &str) -> String {
            let mut out = String::with_capacity(prefix.len() + 1 + name.len());
            out.push_str(prefix);
            out.push('_');
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, value) in self.counters_sorted() {
            let m = sanitize(prefix, name);
            writeln!(out, "# TYPE {m}_total counter").expect("string write");
            writeln!(out, "{m}_total {value}").expect("string write");
        }
        for (name, value) in self.gauges_sorted() {
            let m = sanitize(prefix, name);
            writeln!(out, "# TYPE {m} gauge").expect("string write");
            writeln!(out, "{m} {value}").expect("string write");
        }
        for (name, stat) in self.stats_sorted() {
            let m = sanitize(prefix, name);
            writeln!(out, "# TYPE {m} summary").expect("string write");
            writeln!(out, "{m}{{quantile=\"0\"}} {}", stat.min()).expect("string write");
            writeln!(out, "{m}{{quantile=\"1\"}} {}", stat.max()).expect("string write");
            writeln!(out, "{m}_sum {}", stat.sum()).expect("string write");
            writeln!(out, "{m}_count {}", stat.count()).expect("string write");
        }
        for (name, hist) in self.histograms_sorted() {
            let m = sanitize(prefix, name);
            writeln!(out, "# TYPE {m} histogram").expect("string write");
            let mut cumulative = 0u64;
            for (i, &c) in hist.buckets().iter().enumerate() {
                cumulative += c;
                // The last bucket is the catch-all: Prometheus spells that +Inf.
                if i + 1 == hist.buckets().len() {
                    writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {cumulative}").expect("string write");
                } else {
                    writeln!(
                        out,
                        "{m}_bucket{{le=\"{}\"}} {cumulative}",
                        hist.bucket_upper_bound(i)
                    )
                    .expect("string write");
                }
            }
            writeln!(out, "{m}_sum {}", hist.stat().sum()).expect("string write");
            writeln!(out, "{m}_count {}", hist.count()).expect("string write");
            writeln!(out, "# TYPE {m}_rejected_total counter").expect("string write");
            writeln!(out, "{m}_rejected_total {}", hist.rejected()).expect("string write");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stat_basic_moments() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stat_ignores_non_finite() {
        let mut s = RunningStat::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = RunningStat::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn merge_tagged_namespaces_instead_of_summing() {
        let mut cell = Metrics::new();
        cell.incr("events", 3);
        cell.observe("latency", 2.0);
        let hid = cell.histogram_id("owd", 1.0, 4);
        cell.record_id(hid, 1.5);

        let mut campaign = Metrics::new();
        campaign.merge_tagged(&cell, "cell0");
        campaign.merge_tagged(&cell, "cell1");
        // Distinct tags keep cells apart where plain merge would sum them.
        assert_eq!(campaign.counter("cell0.events"), 3);
        assert_eq!(campaign.counter("cell1.events"), 3);
        assert_eq!(campaign.counter("events"), 0);
        assert_eq!(campaign.stat("cell0.latency").count(), 1);
        assert_eq!(campaign.histogram("cell1.owd").unwrap().count(), 1);
        // Re-merging the same tag accumulates, like merge does.
        campaign.merge_tagged(&cell, "cell0");
        assert_eq!(campaign.counter("cell0.events"), 6);
        assert_eq!(campaign.stat("cell0.latency").count(), 2);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(1.0, 8);
        h.record(0.5); // below base → bucket 0
        h.record(1.5); // [1,2) → bucket 0
        h.record(3.0); // [2,4) → bucket 1
        h.record(1000.0); // off the top → last bucket
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[7], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new(0.001, 24);
        let mut rng = crate::rng::SimRng::new(99);
        for _ in 0..10_000 {
            h.record(rng.exponential(0.1));
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!(p50 > 0.01 && p50 < 0.5, "p50 {p50}");
    }

    #[test]
    fn histogram_rejects_bad_values() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.rejected(), 4);
        assert_eq!(h.quantile_upper_bound(0.5), 0.0);
        h.record(2.0);
        assert_eq!(h.count(), 1, "good samples still recorded");
        assert_eq!(h.rejected(), 4);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(1.0, 8);
        assert_eq!(h.quantile_upper_bound(0.0), 0.0);
        assert_eq!(h.quantile_upper_bound(0.5), 0.0);
        assert_eq!(h.quantile_upper_bound(1.0), 0.0);
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_occupied_bucket() {
        let mut h = Histogram::new(1.0, 8);
        h.record(1.5); // bucket 0, upper bound 2
        h.record(5.0); // bucket 2, upper bound 8
        h.record(40.0); // bucket 5, upper bound 64
                        // q=0 clamps to the first observation: the first occupied bucket.
        assert_eq!(h.quantile_upper_bound(0.0), 2.0);
        // q=1 must cover every observation: the last occupied bucket.
        assert_eq!(h.quantile_upper_bound(1.0), 64.0);
        // Out-of-range q is clamped, not propagated.
        assert_eq!(h.quantile_upper_bound(-3.0), 2.0);
        assert_eq!(h.quantile_upper_bound(7.0), 64.0);
    }

    #[test]
    fn quantile_with_all_mass_in_overflow_bucket() {
        let mut h = Histogram::new(1.0, 4);
        for _ in 0..10 {
            h.record(1e9); // far off the top → last (catch-all) bucket
        }
        let top = h.bucket_upper_bound(3); // base·2^4 = 16
        assert_eq!(h.quantile_upper_bound(0.0), top);
        assert_eq!(h.quantile_upper_bound(0.5), top);
        assert_eq!(h.quantile_upper_bound(1.0), top);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new(0.001, 24);
        let mut rng = crate::rng::SimRng::new(7);
        for _ in 0..5_000 {
            h.record(rng.exponential(0.25));
        }
        let p50 = h.quantile_upper_bound(0.50);
        let p95 = h.quantile_upper_bound(0.95);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
    }

    #[test]
    fn histogram_merge_sums_buckets_and_rejections() {
        let mut a = Histogram::new(1.0, 8);
        let mut b = Histogram::new(1.0, 8);
        a.record(1.5);
        a.record(-1.0);
        b.record(3.0);
        b.record(f64::NAN);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.rejected(), 2);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[7], 1);
        assert_eq!(a.stat().max(), 1000.0);
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn histogram_merge_rejects_layout_mismatch() {
        let mut a = Histogram::new(1.0, 8);
        let b = Histogram::new(1.0, 4);
        a.merge(&b);
    }

    #[test]
    fn metrics_counters_and_stats() {
        let mut m = Metrics::new();
        m.incr("sent", 3);
        m.incr("sent", 2);
        m.observe("latency", 0.5);
        m.observe("latency", 1.5);
        assert_eq!(m.counter("sent"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.stat("latency").count(), 2);
        assert!((m.stat("latency").mean() - 1.0).abs() < 1e-12);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["sent"]);
        assert_eq!(m.stat_names().collect::<Vec<_>>(), vec!["latency"]);
    }

    #[test]
    fn interned_and_string_paths_share_storage() {
        let mut m = Metrics::new();
        let id = m.counter_id("net.messages_sent");
        m.incr_id(id, 3);
        m.incr("net.messages_sent", 2);
        assert_eq!(m.counter("net.messages_sent"), 5);
        assert_eq!(m.counter_by_id(id), 5);
        assert_eq!(
            m.counter_id("net.messages_sent"),
            id,
            "resolution is stable"
        );

        let sid = m.stat_id("lat");
        m.observe_id(sid, 1.0);
        m.observe("lat", 3.0);
        assert_eq!(m.stat("lat").count(), 2);
        assert!((m.stat_by_id(sid).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resolution_creates_zeroed_entries() {
        let mut m = Metrics::new();
        let id = m.counter_id("never_bumped");
        m.stat_id("never_observed");
        assert_eq!(m.counter_by_id(id), 0);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["never_bumped"]);
        assert_eq!(m.stat_names().collect::<Vec<_>>(), vec!["never_observed"]);
    }

    #[test]
    fn set_max_only_raises() {
        let mut m = Metrics::new();
        let id = m.counter_id("hwm");
        m.set_max_id(id, 5);
        m.set_max_id(id, 3);
        assert_eq!(m.counter_by_id(id), 5);
        m.set_max_id(id, 9);
        assert_eq!(m.counter_by_id(id), 9);
    }

    #[test]
    fn render_is_independent_of_interning_order() {
        let mut a = Metrics::new();
        a.counter_id("zeta");
        a.counter_id("alpha");
        a.incr("zeta", 1);
        a.observe("s2", 4.0);
        a.observe("s1", 2.0);

        let mut b = Metrics::new();
        b.incr("alpha", 0);
        b.observe("s1", 2.0);
        b.incr("zeta", 1);
        b.observe("s2", 4.0);

        assert_eq!(a.render(), b.render(), "name-sorted output, not slot order");
        assert!(a
            .render()
            .starts_with("counter alpha = 0\ncounter zeta = 1\n"));
    }

    #[test]
    fn merge_is_id_order_agnostic() {
        // Registries interned in different orders must merge by name.
        let mut a = Metrics::new();
        a.counter_id("x");
        a.counter_id("y");
        a.incr("x", 1);

        let mut b = Metrics::new();
        b.counter_id("y"); // y gets slot 0 here, x had slot 0 in `a`
        b.counter_id("x");
        b.incr("y", 10);
        b.incr("x", 2);

        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 10);
    }

    #[test]
    fn histogram_tier_interned_and_rendered() {
        let mut m = Metrics::new();
        let id = m.histogram_id("attr.wakeup_seconds", 0.001, 24);
        m.record_id(id, 27.0);
        m.record_id(id, 27.5);
        m.record_id(id, -1.0);
        assert_eq!(
            m.histogram_id("attr.wakeup_seconds", 0.001, 24),
            id,
            "resolution is stable"
        );
        let h = m.histogram("attr.wakeup_seconds").expect("registered");
        assert_eq!(h.count(), 2);
        assert_eq!(h.rejected(), 1);
        assert!(m.histogram("missing").is_none());

        let rendered = m.render();
        assert!(
            rendered.contains("hist attr.wakeup_seconds: n=2"),
            "{rendered}"
        );
        assert!(rendered.contains("rejected=1"), "{rendered}");

        // Zero rejections stay out of the human-readable render.
        let mut clean = Metrics::new();
        let cid = clean.histogram_id("h", 1.0, 4);
        clean.record_id(cid, 1.0);
        assert!(!clean.render().contains("rejected"), "{}", clean.render());
    }

    #[test]
    #[should_panic(expected = "different base")]
    fn histogram_reregistration_layout_must_match() {
        let mut m = Metrics::new();
        m.histogram_id("h", 1.0, 8);
        m.histogram_id("h", 2.0, 8);
    }

    #[test]
    fn metrics_merge_includes_histograms() {
        let mut a = Metrics::new();
        let ida = a.histogram_id("lat", 1.0, 8);
        a.record_id(ida, 1.5);
        let mut b = Metrics::new();
        // Different interning order on purpose: merge is keyed by name.
        b.histogram_id("other", 1.0, 4);
        let idb = b.histogram_id("lat", 1.0, 8);
        b.record_id(idb, 3.0);
        a.merge(&b);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = Metrics::new();
        m.incr("net.messages_sent", 5);
        m.observe("broker.owd_seconds", 0.25);
        m.observe("broker.owd_seconds", 0.75);
        let id = m.histogram_id("attr.phase_seconds", 1.0, 3);
        m.record_id(id, 1.5);
        m.record_id(id, 100.0);
        m.record_id(id, f64::NAN);
        let text = m.render_prometheus("psim");
        let expected = "\
# TYPE psim_net_messages_sent_total counter
psim_net_messages_sent_total 5
# TYPE psim_broker_owd_seconds summary
psim_broker_owd_seconds{quantile=\"0\"} 0.25
psim_broker_owd_seconds{quantile=\"1\"} 0.75
psim_broker_owd_seconds_sum 1
psim_broker_owd_seconds_count 2
# TYPE psim_attr_phase_seconds histogram
psim_attr_phase_seconds_bucket{le=\"2\"} 1
psim_attr_phase_seconds_bucket{le=\"4\"} 1
psim_attr_phase_seconds_bucket{le=\"+Inf\"} 2
psim_attr_phase_seconds_sum 101.5
psim_attr_phase_seconds_count 2
# TYPE psim_attr_phase_seconds_rejected_total counter
psim_attr_phase_seconds_rejected_total 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn gauge_tier_sets_merges_and_renders() {
        let mut m = Metrics::new();
        let id = m.gauge_id("registry.bytes.3");
        m.set_gauge_id(id, 1024.0);
        m.set_gauge_id(id, 2048.0);
        assert_eq!(m.gauge_by_id(id), 2048.0, "last set wins");
        m.set_gauge("registry.bytes.7", 512.0);
        assert_eq!(m.gauge("registry.bytes.7"), 512.0);
        assert_eq!(m.gauge("missing"), 0.0);
        assert_eq!(m.gauge_id("registry.bytes.3"), id, "resolution is stable");

        // Disjoint names merge by summation: the shard-merge reconstruction.
        let mut other = Metrics::new();
        other.set_gauge("registry.bytes.5", 256.0);
        other.set_gauge("registry.bytes.3", 2.0);
        m.merge(&other);
        assert_eq!(m.gauge("registry.bytes.5"), 256.0);
        assert_eq!(m.gauge("registry.bytes.3"), 2050.0, "same name sums");

        let rendered = m.render();
        assert!(
            rendered.contains("gauge registry.bytes.3 = 2050\n"),
            "{rendered}"
        );
        let prom = m.render_prometheus("psim");
        assert!(
            prom.contains("# TYPE psim_registry_bytes_3 gauge\npsim_registry_bytes_3 2050\n"),
            "{prom}"
        );

        let mut tagged = Metrics::new();
        tagged.merge_tagged(&m, "cell0");
        assert_eq!(tagged.gauge("cell0.registry.bytes.5"), 256.0);
        assert_eq!(tagged.gauge("registry.bytes.5"), 0.0);
    }

    #[test]
    fn metrics_merge() {
        let mut a = Metrics::new();
        a.incr("x", 1);
        a.observe("s", 1.0);
        let mut b = Metrics::new();
        b.incr("x", 2);
        b.incr("y", 7);
        b.observe("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.stat("s").count(), 2);
        assert!((a.stat("s").mean() - 2.0).abs() < 1e-12);
    }
}
