//! Deterministic, splittable random numbers for the simulator.
//!
//! Reproducibility is a hard requirement: the same seed must produce the same
//! event trace on every platform and every run, forever. We therefore ship
//! our own tiny, well-specified generator (xoshiro256** seeded via SplitMix64)
//! instead of depending on the stability of any external generator's stream.
//!
//! [`SimRng`] also implements [`rand::RngCore`], so it composes with the
//! wider `rand` ecosystem when callers want that.
//!
//! Streams are **splittable**: [`SimRng::split`] derives an independent child
//! generator from a label, so each simulated node gets its own stream and
//! adding RNG draws in one component never perturbs another (a classic
//! simulation-variance pitfall).

use rand::RngCore;

/// SplitMix64 step; used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator with distribution helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for belt and braces.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        SimRng { s }
    }

    /// Derives an independent child stream from this generator's seed and a
    /// label. Children with different labels are statistically independent;
    /// the parent is not advanced.
    pub fn split(&self, label: u64) -> SimRng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty or inverted.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping (Lemire); tiny bias is
        // irrelevant at simulation scale but the mapping stays deterministic.
        ((self.next_u64_raw() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// Exponentially distributed value with the given mean (`mean <= 0` → 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; `1 - uniform()` avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal via Box–Muller (one value per call; deterministic
    /// draw count matters more here than squeezing both outputs).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Lognormal parameterised by the **median** and a shape factor `sigma`
    /// (σ of the underlying normal). Medians are more intuitive to calibrate
    /// against measured latencies than the distribution mean.
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        if median <= 0.0 {
            return 0.0;
        }
        (median.ln() + sigma.max(0.0) * self.standard_normal()).exp()
    }

    /// Pareto (heavy-tailed) with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        if xm <= 0.0 || alpha <= 0.0 {
            return 0.0;
        }
        xm / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of a slice; `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A distribution of non-negative delays, used for node responsiveness,
/// jitter, and service times. All variants are parameterised in **seconds**.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayDistribution {
    /// Always exactly this many seconds.
    Constant(f64),
    /// `base + Exp(mean_extra)`: a floor plus an exponential tail.
    ShiftedExponential {
        /// The deterministic floor, seconds.
        base: f64,
        /// Mean of the exponential tail, seconds.
        mean_extra: f64,
    },
    /// Lognormal around a median with shape `sigma`; models the long-tailed
    /// scheduling delays seen on contended PlanetLab slivers.
    Lognormal {
        /// Median of the distribution, seconds.
        median: f64,
        /// σ of the underlying normal (shape).
        sigma: f64,
    },
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound, seconds.
        lo: f64,
        /// Exclusive upper bound, seconds.
        hi: f64,
    },
}

impl DelayDistribution {
    /// Samples a delay in seconds (always finite and `>= 0`).
    pub fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        let v = match *self {
            DelayDistribution::Constant(s) => s,
            DelayDistribution::ShiftedExponential { base, mean_extra } => {
                base + rng.exponential(mean_extra)
            }
            DelayDistribution::Lognormal { median, sigma } => rng.lognormal_median(median, sigma),
            DelayDistribution::Uniform { lo, hi } => rng.uniform_range(lo, hi),
        };
        if v.is_finite() {
            v.max(0.0)
        } else {
            0.0
        }
    }

    /// The distribution's mean, in seconds (exact, not sampled).
    pub fn mean_secs(&self) -> f64 {
        match *self {
            DelayDistribution::Constant(s) => s.max(0.0),
            DelayDistribution::ShiftedExponential { base, mean_extra } => {
                base.max(0.0) + mean_extra.max(0.0)
            }
            DelayDistribution::Lognormal { median, sigma } => {
                median.max(0.0) * (sigma * sigma / 2.0).exp()
            }
            DelayDistribution::Uniform { lo, hi } => ((lo + hi) / 2.0).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_use() {
        let parent = SimRng::new(7);
        let mut child1 = parent.split(3);
        // Splitting again with the same label yields the same child stream.
        let mut child2 = parent.split(3);
        for _ in 0..100 {
            assert_eq!(child1.next_u64_raw(), child2.next_u64_raw());
        }
        // Different labels give different streams.
        let mut other = parent.split(4);
        let mut child3 = parent.split(3);
        let matches = (0..64)
            .filter(|_| other.next_u64_raw() == child3.next_u64_raw())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = SimRng::new(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::new(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SimRng::new(19);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "var was {var}");
    }

    #[test]
    fn lognormal_median_matches() {
        let mut rng = SimRng::new(23);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(0.5, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 0.5).abs() < 0.03, "median was {median}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::new(29);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SimRng::new(31);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(37);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::new(41);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42u8]), Some(&42));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::new(43);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn delay_distribution_samples_nonnegative() {
        let mut rng = SimRng::new(47);
        let dists = [
            DelayDistribution::Constant(0.25),
            DelayDistribution::ShiftedExponential {
                base: 0.01,
                mean_extra: 0.05,
            },
            DelayDistribution::Lognormal {
                median: 0.1,
                sigma: 1.2,
            },
            DelayDistribution::Uniform { lo: 0.0, hi: 2.0 },
        ];
        for d in &dists {
            for _ in 0..1000 {
                let s = d.sample_secs(&mut rng);
                assert!(s >= 0.0 && s.is_finite());
            }
        }
    }

    #[test]
    fn delay_distribution_means() {
        assert_eq!(DelayDistribution::Constant(2.0).mean_secs(), 2.0);
        assert_eq!(
            DelayDistribution::ShiftedExponential {
                base: 1.0,
                mean_extra: 0.5
            }
            .mean_secs(),
            1.5
        );
        assert_eq!(
            DelayDistribution::Uniform { lo: 1.0, hi: 3.0 }.mean_secs(),
            2.0
        );
        let ln = DelayDistribution::Lognormal {
            median: 1.0,
            sigma: 0.0,
        };
        assert!((ln.mean_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_empirical_mean_tracks_formula() {
        let mut rng = SimRng::new(53);
        let d = DelayDistribution::Lognormal {
            median: 0.2,
            sigma: 0.6,
        };
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - d.mean_secs()).abs() / d.mean_secs() < 0.03);
    }
}
