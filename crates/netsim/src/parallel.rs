//! Deterministic parallel-in-run simulation: the sharded engine.
//!
//! [`ShardedEngine`] partitions the topology into shard domains (a fixed
//! [`ShardMap`]), gives each shard its own [`Engine`] — local event queue,
//! clock, and RNG streams seeded per shard via [`shard_seed`] — and
//! advances all shards in bounded conservative-lookahead windows. Within a
//! window a shard runs events below its safe horizon
//! `min over other shards s of (clock(s) + min_owd(s → me))`; at the
//! barrier between windows, boundary-crossing messages are handed off as
//! [`RemoteEnvelope`]s and incorporated into their destination shards in a
//! fixed total order.
//!
//! # Determinism
//!
//! The headline guarantee: with a fixed shard map and fixed seeds, the
//! merged trace, metrics, and outcome are **byte-identical at any worker
//! count**. The argument:
//!
//! 1. The window schedule is a pure function of shard clocks and the
//!    lookahead table — worker threads never influence *which* events fall
//!    into a window, only who executes them.
//! 2. Within a window each shard is sequential and touches only its own
//!    state (queue, clock, RNGs, metrics, trace).
//! 3. All cross-shard effects flow through envelopes that are collected,
//!    sorted by `(first_byte, source shard, source index)`, and
//!    incorporated by the coordinator alone at the barrier — identical
//!    regardless of which thread produced them or in what real-time order.
//!
//! Note that a sharded run is its own model, not a bit-replay of the
//! serial engine: shards draw from per-shard RNG streams and receiver-side
//! queueing for cross-shard messages is applied at the barrier. What is
//! invariant is the run given `(topology, config, seed, map)` — the same
//! contract the sweep layer offers at the cell level, pushed inside one
//! run.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::{Actor, Engine, Payload, RemoteEnvelope, RunOutcome};
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::profile::{ExecutionProfile, ShardRound};
use crate::shard::{shard_seed, LookaheadTable, ShardMap};
use crate::time::{SimDuration, SimTime};
use crate::timeseries::TimeSeriesRecorder;
use crate::topology::Topology;
use crate::trace::Trace;
use crate::transport::TransportConfig;

/// Why a [`ShardedEngine`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// The shard map covers a different number of nodes than the topology.
    MapSizeMismatch {
        /// Nodes covered by the map.
        map: usize,
        /// Nodes in the topology.
        topology: usize,
    },
    /// Some cross-shard link has zero one-way delay, so no positive
    /// lookahead window exists: shards could exchange messages
    /// instantaneously and conservative windows would never advance.
    ZeroLookahead,
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::MapSizeMismatch { map, topology } => write!(
                f,
                "shard map covers {map} nodes but the topology has {topology}"
            ),
            ParallelError::ZeroLookahead => write!(
                f,
                "minimum cross-shard one-way delay is zero: conservative \
                 lookahead needs every cross-shard link to carry positive delay"
            ),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Wall-clock accounting of a sharded run, for the parallel bench.
///
/// Workers time the span they spend executing each window
/// (`std::time::Instant`, outside the simulation's virtual clock). Per
/// barrier round the coordinator folds those spans into two sums:
///
/// * `busy` — total execution time across all shards (what one worker
///   would do alone),
/// * `critical_path` — the per-round maximum over workers, summed across
///   rounds: the time the round structure *needs* even with unlimited
///   cores, excluding synchronization overhead.
///
/// `critical_path(W=1) / critical_path(W)` is therefore a measured upper
/// bound on the speedup the window schedule admits at `W` workers —
/// computable honestly even on a single-core host, where measured
/// wall-clock speedup is pinned at ~1x.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelProfile {
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Sum of per-window execution spans across all shards.
    pub busy: Duration,
    /// Sum over rounds of the slowest worker's busy span in that round.
    pub critical_path: Duration,
}

/// One window of work for one shard, shipped to a worker thread.
struct RoundJob<M: Payload> {
    shard: usize,
    engine: Engine<M>,
    end: SimTime,
    exclusive: bool,
}

/// The worker's answer: the engine comes back with its outcome and the
/// wall-clock span the window took to execute.
struct RoundResult<M: Payload> {
    shard: usize,
    engine: Engine<M>,
    outcome: RunOutcome,
    busy: Duration,
}

/// The parallel discrete-event engine: a fixed shard map over one
/// topology, one [`Engine`] per shard, conservative-lookahead windows.
///
/// Mirrors the serial [`Engine`] surface (`register`, `enable_trace`,
/// `run_until`, `metrics`, `trace`, …); results are merged across shards
/// in shard order, deterministically.
pub struct ShardedEngine<M: Payload + Send> {
    engines: Vec<Option<Engine<M>>>,
    map: ShardMap,
    table: LookaheadTable,
    workers: usize,
    profile: ParallelProfile,
    profiler: Option<ExecutionProfile>,
    recorder: Option<TimeSeriesRecorder>,
}

impl<M: Payload + Send> ShardedEngine<M> {
    /// Creates a sharded engine over `topo` with `map.num_shards()` shard
    /// domains run by up to `workers` threads (clamped to the shard
    /// count; 0 means 1). Shard `s` is seeded with `shard_seed(seed, s)`.
    pub fn new(
        topo: Topology,
        config: TransportConfig,
        seed: u64,
        map: ShardMap,
        workers: usize,
    ) -> Result<Self, ParallelError> {
        if map.len() != topo.len() {
            return Err(ParallelError::MapSizeMismatch {
                map: map.len(),
                topology: topo.len(),
            });
        }
        let table = map.lookahead(&topo);
        if map.num_shards() > 1 {
            let min = table.min_cross_delay().expect("multi-shard table");
            if min <= SimDuration::ZERO {
                return Err(ParallelError::ZeroLookahead);
            }
        }
        let assignment = Arc::new(map.assignment().to_vec());
        let topo = Arc::new(topo);
        let mut engines = Vec::with_capacity(map.num_shards());
        for s in 0..map.num_shards() {
            let mut e =
                Engine::new_shared(topo.clone(), config.clone(), shard_seed(seed, s as u64));
            e.set_shard(assignment.clone(), s);
            e.set_timer_base((s as u64) << 48);
            engines.push(Some(e));
        }
        Ok(ShardedEngine {
            workers: workers.clamp(1, engines.len()),
            engines,
            map,
            table,
            profile: ParallelProfile::default(),
            profiler: None,
            recorder: None,
        })
    }

    /// Enables per-shard, per-barrier-round execution profiling (see
    /// [`ExecutionProfile`]).
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(ExecutionProfile::new(self.engines.len()));
    }

    /// The execution profile of the run, if profiling was enabled.
    pub fn execution_profile(&self) -> Option<&ExecutionProfile> {
        self.profiler.as_ref()
    }

    /// Installs a windowed time-series recorder. The sharded run samples
    /// at barrier rounds: a boundary is emitted at the first barrier whose
    /// minimum shard clock passes it, from metrics merged in shard order —
    /// deterministic at any worker count because the barrier schedule is.
    pub fn install_recorder(&mut self, recorder: TimeSeriesRecorder) {
        self.recorder = Some(recorder);
    }

    /// Removes and returns the installed recorder, if any.
    pub fn take_recorder(&mut self) -> Option<TimeSeriesRecorder> {
        self.recorder.take()
    }

    /// The shard map this engine runs over.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of worker threads a run will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn engine(&self, shard: usize) -> &Engine<M> {
        self.engines[shard].as_ref().expect("engine at rest")
    }

    fn engine_mut(&mut self, shard: usize) -> &mut Engine<M> {
        self.engines[shard].as_mut().expect("engine at rest")
    }

    /// Installs the actor for `node` on the shard that owns it.
    pub fn register(&mut self, node: NodeId, actor: Box<dyn Actor<M> + Send>) {
        let shard = self.map.shard_of(node);
        self.engine_mut(shard).register(node, actor);
    }

    /// Enables tracing on every shard with the given per-shard capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        for s in 0..self.engines.len() {
            self.engine_mut(s).enable_trace(capacity);
        }
    }

    /// Caps processed events *per shard* (runaway protection).
    pub fn set_event_limit(&mut self, limit: u64) {
        for s in 0..self.engines.len() {
            self.engine_mut(s).set_event_limit(limit);
        }
    }

    /// The most advanced shard clock (all clocks coincide at the horizon
    /// after a completed run).
    pub fn now(&self) -> SimTime {
        (0..self.engines.len())
            .map(|s| self.engine(s).now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        (0..self.engines.len())
            .map(|s| self.engine(s).events_processed())
            .sum()
    }

    /// Largest per-shard queue occupancy ever reached.
    pub fn peak_queue_len(&self) -> usize {
        (0..self.engines.len())
            .map(|s| self.engine(s).peak_queue_len())
            .max()
            .unwrap_or(0)
    }

    /// Wall-clock accounting of the last run (see [`ParallelProfile`]).
    pub fn profile(&self) -> ParallelProfile {
        self.profile
    }

    /// Merged metrics across shards, in shard order.
    pub fn metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for s in 0..self.engines.len() {
            merged.merge(self.engine(s).metrics());
        }
        merged
    }

    /// Per-shard metrics (shard index = position).
    pub fn shard_metrics(&self, shard: usize) -> &Metrics {
        self.engine(shard).metrics()
    }

    /// Merged trace: per-shard histories stably sorted by timestamp, shard
    /// order breaking ties.
    pub fn trace(&self) -> Trace {
        let parts: Vec<&Trace> = (0..self.engines.len())
            .map(|s| self.engine(s).trace())
            .collect();
        Trace::merged(&parts)
    }

    /// Applies `f` to the actor installed for `node`, if any.
    pub fn with_actor<R>(&self, node: NodeId, f: impl FnOnce(&dyn Actor<M>) -> R) -> Option<R> {
        let shard = self.map.shard_of(node);
        self.engine(shard).with_actor(node, f)
    }

    /// Runs all shards until every clock reaches `horizon`, all queues
    /// drain, an actor stops the run, or a per-shard event limit trips.
    /// Precedence at the barrier mirrors the serial engine: stop, then
    /// event limit, then queue-empty, then horizon.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let workers = self.workers;
        let outcome = if workers == 1 {
            self.window_loop(horizon, &mut |jobs: Vec<RoundJob<M>>| {
                jobs.into_iter()
                    .map(|mut job| {
                        let t0 = Instant::now();
                        let outcome = job.engine.run_window(job.end, job.exclusive);
                        RoundResult {
                            shard: job.shard,
                            engine: job.engine,
                            outcome,
                            busy: t0.elapsed(),
                        }
                    })
                    .collect()
            })
        } else {
            std::thread::scope(|scope| {
                let (result_tx, result_rx) = mpsc::channel::<RoundResult<M>>();
                let mut job_txs: Vec<mpsc::Sender<RoundJob<M>>> = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<RoundJob<M>>();
                    let result_tx = result_tx.clone();
                    scope.spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            let t0 = Instant::now();
                            let outcome = job.engine.run_window(job.end, job.exclusive);
                            let done = RoundResult {
                                shard: job.shard,
                                engine: job.engine,
                                outcome,
                                busy: t0.elapsed(),
                            };
                            if result_tx.send(done).is_err() {
                                break;
                            }
                        }
                    });
                    job_txs.push(tx);
                }
                drop(result_tx);
                self.window_loop(horizon, &mut |jobs: Vec<RoundJob<M>>| {
                    let n = jobs.len();
                    for job in jobs {
                        // Static shard→worker routing: irrelevant for
                        // determinism (the coordinator reorders results),
                        // it only balances load.
                        let w = job.shard % workers;
                        job_txs[w].send(job).expect("worker alive");
                    }
                    (0..n)
                        .map(|_| result_rx.recv().expect("worker alive"))
                        .collect()
                })
                // job_txs drop here; workers see a closed channel and exit,
                // then the scope joins them.
            })
        };
        for s in 0..self.engines.len() {
            self.engine_mut(s).flush_run_metrics();
        }
        if self.recorder.is_some() {
            // The run is over: every event at or before the final clock has
            // been processed, so boundaries up to it (inclusive) are done.
            let end = self.now().min(horizon);
            let merged = self.metrics();
            if let Some(rec) = &mut self.recorder {
                rec.sample_up_to(end, &merged);
            }
        }
        outcome
    }

    /// Barrier-time series sampling: boundaries strictly below the minimum
    /// shard clock are complete (a shard parked by an exclusive window may
    /// still hold an unprocessed event exactly at its clock). Merging the
    /// per-shard metrics is paid only when a boundary is actually due.
    fn sample_at_barrier(&mut self) {
        let min = (0..self.engines.len())
            .map(|s| self.engine(s).now())
            .min()
            .unwrap_or(SimTime::ZERO);
        if self.recorder.as_ref().is_some_and(|r| r.due(min)) {
            let merged = self.metrics();
            if let Some(rec) = &mut self.recorder {
                rec.sample_before(min, &merged);
            }
        }
    }

    /// The barrier loop: computes each shard's safe window, executes the
    /// round through `exec` (inline or on worker threads), then drains,
    /// sorts, and incorporates cross-shard envelopes — all coordinator-side
    /// and in a fixed order, which is what makes the run worker-count
    /// invariant.
    fn window_loop(
        &mut self,
        horizon: SimTime,
        exec: &mut dyn FnMut(Vec<RoundJob<M>>) -> Vec<RoundResult<M>>,
    ) -> RunOutcome {
        let k = self.engines.len();
        // Start hooks run once, in shard order, before the first window so
        // the initial envelope exchange (sends at t = 0) is on the books.
        for s in 0..k {
            self.engine_mut(s).start();
        }
        let init_counts = self.exchange_envelopes();
        if let Some(p) = &mut self.profiler {
            p.note_initial_exchange(&init_counts);
        }
        self.sample_at_barrier();
        loop {
            if (0..k).any(|s| self.engine(s).stop_requested()) {
                return RunOutcome::Stopped;
            }
            if (0..k).all(|s| self.engine(s).next_event_time().is_none()) {
                return RunOutcome::QueueEmpty;
            }
            let clocks: Vec<SimTime> = (0..k).map(|s| self.engine(s).now()).collect();
            // Done only when every clock sits at the horizon AND nothing at
            // or below it is still pending — the final envelope exchange
            // can land deliveries exactly at the horizon, and the serial
            // engine's horizon is inclusive.
            let done = clocks.iter().all(|&c| c >= horizon)
                && (0..k).all(|s| self.engine(s).next_event_time().is_none_or(|t| t > horizon));
            if done {
                return RunOutcome::HorizonReached;
            }
            // Each shard's *promise*: the earliest instant it could still
            // produce a cross-shard send. At a barrier every envelope is
            // already incorporated, so a shard cannot send before its next
            // pending event — promising `max(clock, next_event)` instead of
            // the bare clock lets neighbours leap over idle stretches in
            // one window rather than marching through them in lookahead
            // increments. An empty queue promises FAR_FUTURE: with nothing
            // pending, the shard cannot initiate anything until an envelope
            // (exchanged at a barrier) wakes it. Promises are pure barrier
            // state, so the window schedule — and with it the whole run —
            // stays a deterministic function of shard states, independent
            // of the worker count.
            let promises: Vec<SimTime> = (0..k)
                .map(|s| {
                    let e = self.engine(s);
                    match e.next_event_time() {
                        Some(t) => t.max(e.now()),
                        None => SimTime::FAR_FUTURE,
                    }
                })
                .collect();
            // Pre-window observations the profiler needs (clock, queue
            // occupancy, event count); skipped entirely when disabled.
            let pre: Vec<(SimTime, bool, u64)> = if self.profiler.is_some() {
                (0..k)
                    .map(|s| {
                        let e = self.engine(s);
                        (e.now(), e.next_event_time().is_some(), e.events_processed())
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut ends = Vec::new();
            let mut jobs = Vec::with_capacity(k);
            for (s, engine) in self.engines.iter_mut().enumerate() {
                let bound = self.table.horizon_for(s, &promises);
                // Final window: the run horizon is within this shard's safe
                // bound, so events *at* the horizon are safe too (any
                // envelope produced this round lands at ≥ bound ≥ horizon).
                // Intermediate windows stop strictly below the bound:
                // events exactly at it could race the envelopes.
                let (end, exclusive) = if horizon <= bound {
                    (horizon, false)
                } else {
                    (bound, true)
                };
                if self.profiler.is_some() {
                    ends.push((end, exclusive));
                }
                jobs.push(RoundJob {
                    shard: s,
                    engine: engine.take().expect("engine at rest"),
                    end,
                    exclusive,
                });
            }
            let mut results = exec(jobs);
            results.sort_by_key(|r| r.shard);
            let mut worker_busy = vec![Duration::ZERO; self.workers];
            let mut shard_busy = vec![Duration::ZERO; k];
            let mut round_outcome = None;
            for r in results {
                worker_busy[r.shard % self.workers] += r.busy;
                shard_busy[r.shard] = r.busy;
                if matches!(r.outcome, RunOutcome::Stopped | RunOutcome::EventLimit) {
                    round_outcome = Some(r.outcome);
                }
                self.engines[r.shard] = Some(r.engine);
            }
            self.profile.rounds += 1;
            self.profile.busy += worker_busy.iter().sum::<Duration>();
            self.profile.critical_path += worker_busy.iter().max().copied().unwrap_or_default();
            let env_counts = self.exchange_envelopes();
            if let Some(profiler) = &mut self.profiler {
                let round = self.profile.rounds - 1;
                let max_busy = shard_busy.iter().max().copied().unwrap_or_default();
                let records = (0..k)
                    .map(|s| {
                        let e = self.engines[s].as_ref().expect("engine at rest");
                        ShardRound {
                            round,
                            shard: s as u32,
                            start: pre[s].0,
                            end: ends[s].0,
                            exclusive: ends[s].1,
                            events: e.events_processed() - pre[s].2,
                            envelopes_out: env_counts[s],
                            pending: pre[s].1,
                            busy: shard_busy[s],
                            barrier_wait: max_busy - shard_busy[s],
                        }
                    })
                    .collect();
                profiler.push_round(records);
            }
            self.sample_at_barrier();
            if let Some(outcome) = round_outcome {
                return outcome;
            }
        }
    }

    /// Drains every shard's outbox, sorts the envelopes into a fixed total
    /// order, and incorporates each into its destination shard. Called
    /// only between windows, from the coordinator. Returns the number of
    /// envelopes each source shard contributed (profiler fodder).
    fn exchange_envelopes(&mut self) -> Vec<u64> {
        let k = self.engines.len();
        let mut envelopes: Vec<RemoteEnvelope<M>> = Vec::new();
        for s in 0..k {
            envelopes.append(&mut self.engine_mut(s).take_outbox());
        }
        let mut counts = vec![0u64; k];
        for env in &envelopes {
            counts[env.src_shard] += 1;
        }
        envelopes.sort_by_key(|e| (e.first_byte, e.src_shard, e.src_index));
        for env in envelopes {
            let dest = self.map.shard_of(env.to);
            self.engine_mut(dest).incorporate_remote(env);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, ServiceClass};
    use crate::link::{AccessLink, PathSpec};
    use crate::node::NodeSpec;

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Payload for Token {
        fn wire_size(&self) -> u64 {
            128
        }
        fn kind(&self) -> &'static str {
            "token"
        }
        fn service_class(&self) -> ServiceClass {
            ServiceClass::Fast
        }
    }

    /// Bounces a token around a fixed itinerary of nodes.
    struct Bouncer {
        itinerary: Vec<NodeId>,
        hops: u32,
        kick_off: bool,
    }

    impl Actor<Token> for Bouncer {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if self.kick_off {
                ctx.send(self.itinerary[0], Token(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
            if msg.0 < self.hops {
                let next = self.itinerary[(msg.0 as usize) % self.itinerary.len()];
                ctx.send(next, Token(msg.0 + 1));
            }
        }
    }

    /// Two regions of three nodes: 2 ms inside a region, 40 ms across.
    fn two_region_topo() -> Topology {
        let mut t = Topology::new();
        for i in 0..6 {
            t.add_node(NodeSpec::responsive(format!("n{i}")), AccessLink::default());
        }
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a == b {
                    continue;
                }
                let ms = if (a < 3) == (b < 3) { 2.0 } else { 40.0 };
                t.set_path(NodeId(a), NodeId(b), PathSpec::from_owd_ms(ms, 0.0));
            }
        }
        t
    }

    fn build(workers: usize) -> ShardedEngine<Token> {
        let map = ShardMap::from_assignment(vec![0, 0, 0, 1, 1, 1]).unwrap();
        let mut e = ShardedEngine::new(
            two_region_topo(),
            TransportConfig::default(),
            42,
            map,
            workers,
        )
        .unwrap();
        let all: Vec<NodeId> = (0..6).map(NodeId).collect();
        for (i, &node) in all.iter().enumerate() {
            // Every token hop moves to a pseudo-random next node, with
            // plenty of cross-region (= cross-shard) traffic.
            let itinerary: Vec<NodeId> = (0..6).map(|j| NodeId((j * 5 + 1) % 6)).collect();
            e.register(
                node,
                Box::new(Bouncer {
                    itinerary,
                    hops: 40,
                    kick_off: i < 2,
                }),
            );
        }
        e.enable_trace(4096);
        e
    }

    #[test]
    fn sharded_run_is_worker_count_invariant() {
        let horizon = SimTime::from_secs_f64(30.0);
        let mut runs = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut e = build(workers);
            let outcome = e.run_until(horizon);
            runs.push((
                workers,
                outcome,
                e.trace().digest(),
                e.trace().to_jsonl(),
                e.metrics().render(),
                e.now(),
                e.events_processed(),
            ));
        }
        let (_, o1, d1, j1, m1, t1, n1) = &runs[0];
        for (w, o, d, j, m, t, n) in &runs[1..] {
            assert_eq!(o, o1, "outcome differs at {w} workers");
            assert_eq!(d, d1, "trace digest differs at {w} workers");
            assert_eq!(j, j1, "trace JSONL differs at {w} workers");
            assert_eq!(m, m1, "metrics differ at {w} workers");
            assert_eq!(t, t1, "final clock differs at {w} workers");
            assert_eq!(n, n1, "event count differs at {w} workers");
        }
        assert!(*n1 > 0, "the workload must actually run");
    }

    #[test]
    fn cross_shard_messages_are_delivered_and_counted() {
        let mut e = build(1);
        e.run_until(SimTime::from_secs_f64(30.0));
        let m = e.metrics();
        assert!(m.counter("net.messages_sent") > 0);
        assert_eq!(
            m.counter("net.messages_delivered") + m.counter("net.messages_dropped_no_actor"),
            m.counter("net.messages_sent"),
            "every sent message is accounted for across shards"
        );
    }

    #[test]
    fn zero_cross_shard_traffic_still_terminates() {
        // Tokens bounce strictly inside each region: outboxes stay empty,
        // windows are pure clock advancement.
        let map = ShardMap::from_assignment(vec![0, 0, 0, 1, 1, 1]).unwrap();
        let mut e =
            ShardedEngine::new(two_region_topo(), TransportConfig::default(), 7, map, 2).unwrap();
        for region in 0..2u32 {
            let local: Vec<NodeId> = (0..3).map(|j| NodeId(region * 3 + j)).collect();
            for (i, &node) in local.iter().enumerate() {
                e.register(
                    node,
                    Box::new(Bouncer {
                        itinerary: local.clone(),
                        hops: 10,
                        kick_off: i == 0,
                    }),
                );
            }
        }
        // Both regions finish their 10 hops, outboxes stay empty, and the
        // barrier loop notices the drained queues instead of spinning on
        // clock-advance windows forever.
        let outcome = e.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        assert!(e.events_processed() > 0);
        // 1 kick-off + 10 forwarded hops per region, two regions.
        assert_eq!(e.metrics().counter("net.messages_delivered"), 22);
    }

    #[test]
    fn single_shard_degenerate_matches_serial_engine() {
        // One shard runs the serial code path inside the window loop; the
        // history must match a plain Engine with the shard-0 seed.
        let topo = two_region_topo();
        let map = ShardMap::single(topo.len());
        let mut sharded =
            ShardedEngine::new(topo.clone(), TransportConfig::default(), 9, map, 1).unwrap();
        let mut serial = Engine::new(topo, TransportConfig::default(), shard_seed(9, 0));
        let itinerary: Vec<NodeId> = (0..6).map(|j| NodeId((j * 5 + 1) % 6)).collect();
        for (i, node) in (0..6).map(NodeId).enumerate() {
            let make = || Bouncer {
                itinerary: itinerary.clone(),
                hops: 25,
                kick_off: i == 0,
            };
            sharded.register(node, Box::new(make()));
            serial.register(node, Box::new(make()));
        }
        sharded.enable_trace(4096);
        serial.enable_trace(4096);
        let horizon = SimTime::from_secs_f64(20.0);
        let a = sharded.run_until(horizon);
        let b = serial.run_until(horizon);
        assert_eq!(a, b);
        assert_eq!(sharded.trace().digest(), serial.trace().digest());
        assert_eq!(sharded.metrics().render(), serial.metrics().render());
    }

    #[test]
    fn zero_lookahead_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(0.0, 0.0));
        let map = ShardMap::from_assignment(vec![0, 1]).unwrap();
        let err = ShardedEngine::<Token>::new(t, TransportConfig::default(), 1, map, 2)
            .err()
            .expect("zero-delay cross links must be rejected");
        assert_eq!(err, ParallelError::ZeroLookahead);
    }

    #[test]
    fn map_size_mismatch_is_rejected() {
        let t = two_region_topo();
        let map = ShardMap::from_assignment(vec![0, 1]).unwrap();
        let err = ShardedEngine::<Token>::new(t, TransportConfig::default(), 1, map, 2)
            .err()
            .expect("undersized shard map must be rejected");
        assert_eq!(
            err,
            ParallelError::MapSizeMismatch {
                map: 2,
                topology: 6
            }
        );
    }

    #[test]
    fn profile_accounts_busy_and_critical_path() {
        let mut e = build(2);
        e.run_until(SimTime::from_secs_f64(30.0));
        let p = e.profile();
        assert!(p.rounds > 0, "multi-shard run must take barrier rounds");
        assert!(p.busy >= p.critical_path);
        assert!(p.critical_path > Duration::ZERO);
    }
}
